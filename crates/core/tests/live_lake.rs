//! Crash-safety and equivalence tests for the live lake (DESIGN.md §13).
//!
//! * **Kill-point fuzz** — a mutation workload runs over
//!   [`KillPointIo`], once per injected crash point (every write, torn
//!   append prefix, rename, and unlink boundary). After each crash the
//!   surviving bytes are recovered into a fresh lake, which must serve
//!   exactly the committed prefix of acknowledged mutations — plus at most
//!   the single in-flight mutation whose journal append became durable
//!   before its ack was lost.
//! * **Random-interleaving property** — a lake mutated by a seeded random
//!   interleaving of adds / drops / flushes / compactions must answer
//!   searches byte-identically to a from-scratch flat index over the
//!   surviving columns as tracked by the embedding-free
//!   [`MutationOracle`].
//! * **Tombstoned base columns** — `drop-table` on a base-indexed table
//!   takes effect on the next filtered search and never resurfaces after
//!   crash recovery or compaction.
//! * **Corrupt tombstone bitmap** — degrades to serving-without-deletes
//!   with a warning, never a load failure.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use deepjoin::live::LiveLake;
use deepjoin::model::{DeepJoin, DeepJoinConfig};
use deepjoin::train::{FineTuneConfig, JoinType};
use deepjoin_ann::index::TopK;
use deepjoin_ann::{Budget, FlatIndex, VectorIndex};
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::{Column, ColumnMeta, MutationOracle, Repository};
use deepjoin_store::{ArtifactIo, KillPointIo, MemIo, SharedIo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_model(indexed: bool) -> (DeepJoin, Repository) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
    let (repo, _) = corpus.to_repository();
    let config = DeepJoinConfig {
        fine_tune: FineTuneConfig {
            epochs: 1,
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, config);
    if indexed {
        model.index_repository(&repo);
    }
    (model, repo)
}

fn live_dir() -> PathBuf {
    PathBuf::from("/live")
}

/// Copy every artifact under `dir` from one store into a fresh `MemIo` —
/// the "disk image" that survives a crash.
fn copy_dir(from: &dyn ArtifactIo, dir: &Path) -> MemIo {
    let to = MemIo::new();
    for f in from.list(dir).unwrap_or_default() {
        let p = dir.join(&f);
        if let Ok(bytes) = from.read(&p) {
            to.write_atomic(&p, &bytes).unwrap();
        }
    }
    to
}

fn embed(model: &DeepJoin, table: &str, name: &str, cells: &[String]) -> Vec<f32> {
    let col = Column::new(
        cells.to_vec(),
        ColumnMeta {
            table_title: table.to_string(),
            column_name: name.to_string(),
            ..ColumnMeta::default()
        },
    );
    model.embed_column(&col)
}

// ---------------------------------------------------------------------
// Kill-point fuzz
// ---------------------------------------------------------------------

/// The oracle-visible mutation ops of the fuzz workload, in order.
#[derive(Clone)]
enum FuzzOp {
    Add(&'static str, Vec<(String, Vec<String>)>),
    Drop(&'static str),
}

fn fuzz_ops() -> Vec<FuzzOp> {
    let cols = |names: &[&str]| -> Vec<(String, Vec<String>)> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                (
                    n.to_string(),
                    (0..3).map(|j| format!("{n}-cell-{i}-{j}")).collect(),
                )
            })
            .collect()
    };
    vec![
        FuzzOp::Add("t1", cols(&["a", "b"])),
        FuzzOp::Add("t2", cols(&["c"])),
        FuzzOp::Drop("t1"),
        FuzzOp::Add("t3", cols(&["d", "e"])),
        FuzzOp::Add("t4", cols(&["f"])),
    ]
}

fn oracle_prefix(n: usize) -> Vec<String> {
    let mut o = MutationOracle::new();
    for op in fuzz_ops().into_iter().take(n) {
        match op {
            FuzzOp::Add(title, cols) => o.add_table(title, &cols),
            FuzzOp::Drop(title) => {
                o.drop_table(title);
            }
        }
    }
    o.surviving_labels()
}

/// Run the full workload (open, mutations with interleaved flushes and a
/// compaction, final add) over `io`. Returns how many oracle-visible
/// mutations were acknowledged (returned `Ok`) before the first failure.
fn run_workload(io: SharedIo, model: &DeepJoin) -> usize {
    // flush_rows is high: flushes happen only where the workload says so,
    // keeping the set of kill points deterministic and interpretable.
    let opened = match LiveLake::open_with_flush_rows(io, live_dir(), model, 1_000) {
        Ok(o) => o,
        Err(_) => return 0, // crashed during open: nothing acknowledged
    };
    let lake = opened.lake;
    let ops = fuzz_ops();
    let mut acked = 0;
    for (i, op) in ops.iter().enumerate() {
        let result = match op {
            FuzzOp::Add(title, cols) => lake.add_table(model, title, cols).map(|_| ()),
            FuzzOp::Drop(title) => lake.drop_table(title, &[]).map(|_| ()),
        };
        if result.is_err() {
            return acked;
        }
        acked += 1;
        // Flush after the second mutation, compact after the fourth: the
        // workload crosses every state transition (journal-only, flushed,
        // flushed+tombstoned, compacted, journal-tail-on-top-of-segments).
        let maintenance = match i {
            1 => lake.flush().map(|_| ()),
            3 => lake.flush().and_then(|_| lake.compact()).map(|_| ()),
            _ => Ok(()),
        };
        if maintenance.is_err() {
            return acked;
        }
    }
    acked
}

fn recovered_labels(image: MemIo, model: &DeepJoin) -> Vec<String> {
    let opened = LiveLake::open(Arc::new(image), live_dir(), model).expect("recovery must load");
    let view = opened.lake.view();
    let surviving = view.surviving();
    // Stable global ids, never duplicated: ascending strictly.
    for w in surviving.windows(2) {
        assert!(w[0].0 < w[1].0, "duplicate or unsorted ids: {surviving:?}");
    }
    surviving
        .into_iter()
        .map(|(_, t, c)| format!("{t}.{c}"))
        .collect()
}

#[test]
fn sigkill_at_every_byte_boundary_recovers_the_committed_prefix() {
    let (model, _repo) = tiny_model(true);

    // Count the kill points with a clean run.
    let counter = Arc::new(KillPointIo::new(MemIo::new(), None));
    let clean_acked = run_workload(counter.clone(), &model);
    let total_ops = fuzz_ops().len();
    assert_eq!(clean_acked, total_ops, "clean run must ack everything");
    let points = counter.points_used();
    assert!(points > 20, "expected a rich kill surface, got {points}");

    // The clean image recovers to the full prefix.
    let clean = recovered_labels(copy_dir(counter.inner(), &live_dir()), &model);
    assert_eq!(clean, oracle_prefix(total_ops));

    for kp in 0..points {
        let io = Arc::new(KillPointIo::new(MemIo::new(), Some(kp)));
        let acked = run_workload(io.clone(), &model);
        assert!(io.crashed(), "kill point {kp} never fired");

        let labels = recovered_labels(copy_dir(io.inner(), &live_dir()), &model);
        // Exactly the committed prefix: everything acknowledged survives;
        // at most the one in-flight mutation (journal append durable, ack
        // lost) may additionally appear.
        let exact = oracle_prefix(acked);
        let plus_one = oracle_prefix((acked + 1).min(total_ops));
        assert!(
            labels == exact || labels == plus_one,
            "kill point {kp}: recovered {labels:?}, wanted {exact:?} (acked {acked}) \
             or {plus_one:?} (in-flight committed)"
        );

        // Recovery is idempotent: recovering the recovered image again
        // (which may have swept orphans / rewritten the journal header)
        // yields the same state, with no duplicated rows.
        let image = Arc::new(copy_dir(io.inner(), &live_dir()));
        {
            let opened =
                LiveLake::open(image.clone(), live_dir(), &model).expect("first recovery");
            // Flush so the second open exercises the manifest path too.
            opened.lake.flush().expect("flush recovered state");
        }
        let relabels = recovered_labels(copy_dir(&*image, &live_dir()), &model);
        assert_eq!(relabels, labels, "kill point {kp}: recovery not idempotent");
    }
}

// ---------------------------------------------------------------------
// Random-interleaving equivalence property
// ---------------------------------------------------------------------

#[test]
fn random_mutation_interleavings_match_a_from_scratch_rebuild() {
    // No base index: every searchable column lives in the lake, so both
    // sides are exact flat scans and the comparison is byte-strict.
    let (model, _repo) = tiny_model(false);
    let dim = model.config().dim;
    let metric = model.config().hnsw.metric;

    for seed in [11u64, 47, 90] {
        let mut rng = StdRng::seed_from_u64(seed);
        let io: SharedIo = Arc::new(MemIo::new());
        let lake = LiveLake::open_with_flush_rows(io.clone(), live_dir(), &model, 1_000)
            .expect("open")
            .lake;
        let mut oracle = MutationOracle::new();
        let titles = ["alpha", "beta", "gamma", "delta"];

        for step in 0..40 {
            match rng.gen_range(0..10) {
                // Adds dominate so the lake actually grows.
                0..=5 => {
                    let title = titles[rng.gen_range(0..titles.len())];
                    let ncols = rng.gen_range(1..=3);
                    let columns: Vec<(String, Vec<String>)> = (0..ncols)
                        .map(|c| {
                            let name = format!("col{}-{}", step, c);
                            let cells = (0..rng.gen_range(1..=4))
                                .map(|j| format!("{seed}-{step}-{c}-{j}"))
                                .collect();
                            (name, cells)
                        })
                        .collect();
                    lake.add_table(&model, title, &columns).expect("add");
                    oracle.add_table(title, &columns);
                }
                6..=7 => {
                    let title = titles[rng.gen_range(0..titles.len())];
                    let lake_result = lake.drop_table(title, &[]);
                    let oracle_dropped = oracle.drop_table(title);
                    assert_eq!(
                        lake_result.is_ok(),
                        oracle_dropped > 0,
                        "seed {seed} step {step}: drop '{title}' disagreement"
                    );
                }
                8 => {
                    lake.flush().expect("flush");
                }
                _ => {
                    lake.compact().expect("compact");
                }
            }
        }
        // The multi-slab view (segments + memtable, tombstones applied at
        // scan time) must already agree with the oracle on what survives.
        {
            let view = lake.view();
            let labels: Vec<String> = view
                .surviving()
                .into_iter()
                .map(|(_, t, c)| format!("{t}.{c}"))
                .collect();
            assert_eq!(labels, oracle.surviving_labels(), "seed {seed}: survivors");
        }

        // Canonicalize to a single clean segment: rows land at the same
        // offsets as a from-scratch index, so the block-kernel reduction
        // order matches and search results must be *byte*-identical (a
        // multi-slab lake can differ by an ULP since each slab scans from
        // its own row 0).
        lake.flush().expect("final flush");
        lake.compact().expect("final compact");

        // Rebuild from scratch over the oracle's surviving columns.
        let surviving = oracle.surviving();
        let mut rebuilt = FlatIndex::new(dim, metric).with_unit_norm(true);
        let mut rebuilt_labels = Vec::new();
        for col in &surviving {
            rebuilt.add(&embed(&model, &col.table, &col.name, &col.cells));
            rebuilt_labels.push(format!("{}.{}", col.table, col.name));
        }

        // Reopen the lake from its own bytes (exercising recovery) and
        // compare full-ranking searches.
        let recovered = LiveLake::open(io.clone(), live_dir(), &model)
            .expect("reopen")
            .lake;
        let view = recovered.view();
        assert_eq!(view.live_rows(), surviving.len(), "seed {seed}: row count");

        let k = surviving.len().max(1);
        for probe in 0..4 {
            let query = embed(
                &model,
                "probe",
                "q",
                &[format!("{seed}-probe-{probe}"), "shared".to_string()],
            );
            let live = view.search(&query, k, &Budget::unlimited());
            let mut merged = TopK::new(k);
            for n in &live.hits {
                merged.push(n.id, n.distance);
            }
            let got: Vec<(String, u32)> = merged
                .into_sorted()
                .into_iter()
                .map(|n| {
                    let (t, c) = view.label(n.id).expect("hit label");
                    (format!("{t}.{c}"), n.distance.to_bits())
                })
                .collect();
            let want: Vec<(String, u32)> = rebuilt
                .search(&query, k)
                .into_iter()
                .map(|n| (rebuilt_labels[n.id as usize].clone(), n.distance.to_bits()))
                .collect();
            assert_eq!(
                got, want,
                "seed {seed} probe {probe}: lake ranking diverged from rebuild"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Base-table drops
// ---------------------------------------------------------------------

#[test]
fn dropped_base_tables_vanish_immediately_and_never_reappear() {
    let (model, repo) = tiny_model(true);
    let io: SharedIo = Arc::new(MemIo::new());
    let lake = LiveLake::open(io.clone(), live_dir(), &model).expect("open").lake;

    // Pick the base table owning column 0 and resolve its base ids.
    let victim = repo.columns()[0].meta.table_title.clone();
    let victim_ids: Vec<u32> = repo
        .iter()
        .filter(|(_, c)| c.meta.table_title == victim)
        .map(|(id, _)| id.0)
        .collect();
    assert!(!victim_ids.is_empty());

    let query = model.embed_column(&repo.columns()[0].clone());
    let k = model.indexed_len();
    let before = model.search_embedded_budgeted_filtered(
        &query,
        k,
        &Budget::unlimited(),
        Some(lake.view().tombs()),
    );
    assert!(
        before.hits.iter().any(|h| victim_ids.contains(&h.id.0)),
        "victim must be findable before the drop"
    );

    lake.drop_table(&victim, &victim_ids).expect("drop");

    // Effective on the very next filtered search — no flush, no restart.
    let after = model.search_embedded_budgeted_filtered(
        &query,
        k,
        &Budget::unlimited(),
        Some(lake.view().tombs()),
    );
    assert!(
        after.hits.iter().all(|h| !victim_ids.contains(&h.id.0)),
        "tombstoned base ids leaked into HNSW results"
    );

    // Never reappears: after flush, compaction, and crash recovery.
    lake.flush().expect("flush");
    lake.add_table(&model, "fresh", &[("x".into(), vec!["1".into()])])
        .expect("add");
    lake.flush().expect("flush");
    lake.compact().expect("compact");
    let recovered = LiveLake::open(io, live_dir(), &model).expect("reopen").lake;
    let view = recovered.view();
    for id in &victim_ids {
        assert!(view.tombs().contains(*id), "tombstone for {id} lost");
    }
    let final_hits = model.search_embedded_budgeted_filtered(
        &query,
        k,
        &Budget::unlimited(),
        Some(view.tombs()),
    );
    assert!(
        final_hits.hits.iter().all(|h| !victim_ids.contains(&h.id.0)),
        "dropped base ids reappeared after compaction + recovery"
    );
}

// ---------------------------------------------------------------------
// Corrupt tombstone bitmap
// ---------------------------------------------------------------------

#[test]
fn corrupt_tombstone_bitmap_degrades_to_serving_without_deletes() {
    let (model, _repo) = tiny_model(true);
    let io: SharedIo = Arc::new(MemIo::new());
    {
        let lake = LiveLake::open(io.clone(), live_dir(), &model).expect("open").lake;
        lake.add_table(&model, "t", &[("a".into(), vec!["1".into()])])
            .expect("add");
        lake.drop_table("t", &[]).expect("drop");
        lake.flush().expect("flush");
    }

    // Flip one byte inside the TOMB section payload of the manifest. The
    // section CRC now fails while the container structure stays intact.
    let manifest_path = live_dir().join(deepjoin::live::MANIFEST_FILE);
    let mut bytes = io.read(&manifest_path).expect("manifest");
    let tombs_magic = b"DJT1";
    let pos = bytes
        .windows(tombs_magic.len())
        .rposition(|w| w == tombs_magic)
        .expect("TOMB payload present");
    bytes[pos + 8] ^= 0x40;
    io.write_atomic(&manifest_path, &bytes).expect("rewrite");

    let opened = LiveLake::open(io, live_dir(), &model).expect("must still load");
    assert!(
        opened
            .warnings
            .iter()
            .any(|w| w.contains("serving without deletes")),
        "expected a serving-without-deletes warning, got {:?}",
        opened.warnings
    );
    // The deletes are gone (the dropped row serves again) but nothing else
    // was lost and the lake still accepts work.
    let view = opened.lake.view();
    assert_eq!(view.live_rows(), 1, "the flushed row must still serve");
    assert!(view.tombs().is_empty(), "tombstones degraded to empty");
    opened
        .lake
        .add_table(&model, "u", &[("b".into(), vec!["2".into()])])
        .expect("lake stays writable after degradation");
}

// ---------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------

/// An io that counts journal appends and holds each one for `delay`, so
/// mutations racing the in-flight fsync pile up in the commit queue and
/// must coalesce into batched appends.
struct SlowCountingIo {
    inner: MemIo,
    appends: std::sync::atomic::AtomicUsize,
    delay: std::time::Duration,
}

impl ArtifactIo for SlowCountingIo {
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_atomic(path, bytes)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn append(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.appends
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        std::thread::sleep(self.delay);
        self.inner.append(path, bytes)
    }
    fn remove(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove(path)
    }
    fn list(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        self.inner.list(dir)
    }
}

#[test]
fn concurrent_mutations_group_commit_into_fewer_fsyncs_than_ops() {
    const N: usize = 8;
    let (model, _repo) = tiny_model(false);
    let slow = Arc::new(SlowCountingIo {
        inner: MemIo::new(),
        appends: std::sync::atomic::AtomicUsize::new(0),
        delay: std::time::Duration::from_millis(100),
    });
    let io: SharedIo = slow.clone();
    let lake = LiveLake::open(io.clone(), live_dir(), &model)
        .expect("open")
        .lake;

    // N threads release together; each journals one single-column table.
    let barrier = std::sync::Barrier::new(N);
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let (lake, model, barrier) = (&lake, &model, &barrier);
                s.spawn(move || {
                    barrier.wait();
                    lake.add_table(
                        model,
                        &format!("gc{i}"),
                        &[("col".into(), vec![format!("cell-{i}")])],
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every mutation was acknowledged with its own journal seq…
    let mut seqs: Vec<u64> = outcomes
        .into_iter()
        .map(|o| o.expect("every concurrent add must commit").seq)
        .collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), N, "acks must carry {N} distinct seqs");
    assert_eq!(
        seqs[N - 1] - seqs[0],
        (N - 1) as u64,
        "batched records must take consecutive seqs"
    );

    // …but the journal saw far fewer durable appends than mutations.
    let appends = slow.appends.load(std::sync::atomic::Ordering::SeqCst);
    assert!(appends >= 1, "something must have hit the journal");
    assert!(
        appends <= N / 2,
        "expected {N} concurrent mutations to coalesce into at most {} \
         journal appends, saw {appends}",
        N / 2
    );

    // Recovery replays the full committed batch: every add survives.
    drop(lake);
    let recovered = LiveLake::open(io, live_dir(), &model)
        .expect("reopen")
        .lake;
    let view = recovered.view();
    assert_eq!(
        view.live_rows(),
        N,
        "replay must recover every group-committed row"
    );
}
