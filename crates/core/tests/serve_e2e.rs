//! End-to-end server lifecycle tests against the real `dj` binary:
//! burst a saturated server and demand structured sheds, hot reload, drain
//! cleanly on SIGTERM (exit 0), and leave artifacts readable after SIGKILL.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use deepjoin_serve::{Client, ClientError, ErrorCode};

fn dj() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_dj"));
    c.stdout(Stdio::null()).stderr(Stdio::null());
    c
}

fn run_dj(args: &[&str]) {
    let status = dj().args(args).status().expect("spawn dj");
    assert!(status.success(), "dj {args:?} failed: {status}");
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-serve-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// Generate a small lake and train a one-epoch model for it.
fn make_lake_and_model(tmp: &TempDir) -> (PathBuf, PathBuf) {
    let lake = tmp.path("lake");
    let model = tmp.path("m.model");
    run_dj(&["generate", s(&lake), "--tables", "20", "--seed", "3"]);
    run_dj(&[
        "train", s(&lake), s(&model),
        "--epochs", "1", "--threads", "1",
    ]);
    (lake, model)
}

/// Spawn `dj serve` on an OS-assigned port and block until it prints its
/// listening line; returns the child and the bound address.
fn spawn_serve(lake: &Path, model: &Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dj"));
    cmd.args(["serve", s(lake), s(model), "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn dj serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("serve must print its listening line")
        .expect("read listening line");
    let addr = line
        .strip_prefix("dj-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line}"))
        .to_string();
    (child, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            start.elapsed() < timeout,
            "server did not exit within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn query_cells() -> Vec<String> {
    (0..120).map(|i| format!("value-{i}")).collect()
}

#[test]
fn saturated_server_sheds_structurally_reloads_and_drains_on_sigterm() {
    let tmp = TempDir::new("smoke");
    let (lake, model) = make_lake_and_model(&tmp);
    // One worker, one queue slot: a 16-way burst must overload.
    let (mut child, addr) = spawn_serve(
        &lake,
        &model,
        &["--threads", "1", "--max-inflight", "1", "--deadline-ms", "5000"],
    );

    let mut probe = Client::connect(&addr).expect("connect");
    probe.ping().expect("ping");

    // Burst until we have seen both outcomes: at least one served answer
    // and at least one structured Overloaded shed. Connection resets or
    // other error shapes fail the test.
    let served = Arc::new(AtomicU32::new(0));
    let shed = Arc::new(AtomicU32::new(0));
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut rounds = 0;
    while (served.load(Ordering::SeqCst) == 0 || shed.load(Ordering::SeqCst) == 0)
        && Instant::now() < deadline
    {
        rounds += 1;
        let mut threads = Vec::new();
        for _ in 0..16 {
            let addr = addr.clone();
            let served = served.clone();
            let shed = shed.clone();
            threads.push(std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                match c.query("burst", &query_cells(), 5) {
                    Ok(reply) => {
                        assert!(!reply.hits.is_empty());
                        served.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ClientError::Server(e)) => {
                        assert_eq!(
                            e.code,
                            ErrorCode::Overloaded,
                            "under burst, the only acceptable failure is a shed: {e}"
                        );
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(other) => panic!("non-structured failure under burst: {other}"),
                }
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
    }
    assert!(
        served.load(Ordering::SeqCst) > 0,
        "no query was ever served in {rounds} burst rounds"
    );
    assert!(
        shed.load(Ordering::SeqCst) > 0,
        "16-way bursts against --max-inflight 1 never shed in {rounds} rounds"
    );

    // The shed counter is visible to operators.
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.shed as u32, shed.load(Ordering::SeqCst));
    assert_eq!(stats.generation, 1);

    // Hot reload via the ctl subcommand (exercises the real client path).
    let out = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(["ctl", &addr, "reload"])
        .output()
        .expect("dj ctl reload");
    assert!(out.status.success(), "ctl reload failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("generation 2"),
        "reload must bump the generation: {stdout}"
    );

    // The query subcommand sees the new generation.
    let out = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(["query", &addr, "--cells", "alpha,beta,gamma", "--k", "3"])
        .output()
        .expect("dj query");
    assert!(out.status.success(), "dj query failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("generation 2"), "{stdout}");

    // SIGTERM: graceful drain, exit code 0.
    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(30));
    assert!(
        status.success(),
        "SIGTERM must drain and exit 0, got {status}"
    );
}

#[test]
fn sigkill_leaves_artifacts_readable_and_server_restartable() {
    let tmp = TempDir::new("sigkill");
    let (lake, model) = make_lake_and_model(&tmp);
    let (mut child, addr) = spawn_serve(&lake, &model, &["--threads", "1"]);

    // Put at least one query through so the server has touched everything.
    let mut c = Client::connect(&addr).expect("connect");
    c.query("probe", &["a".to_string(), "b".to_string()], 3)
        .expect("query before kill");

    // SIGKILL: no cleanup of any kind.
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // The artifacts the server was reading must be intact (the server
    // never writes them), provable by the ordinary tools...
    run_dj(&["info", s(&model)]);
    run_dj(&["search", s(&lake), s(&model), "--k", "3"]);

    // ...and a fresh server starts over the same files.
    let (mut child2, addr2) = spawn_serve(&lake, &model, &["--threads", "1"]);
    let mut c2 = Client::connect(&addr2).expect("reconnect");
    c2.ping().expect("ping after restart");
    sigterm(&child2);
    let status = wait_exit(&mut child2, Duration::from_secs(30));
    assert!(status.success());
}

#[test]
fn deadline_saturation_answers_every_request_promptly() {
    let tmp = TempDir::new("deadline");
    let (lake, model) = make_lake_and_model(&tmp);
    let (mut child, addr) = spawn_serve(
        &lake,
        &model,
        &["--threads", "1", "--max-inflight", "2", "--deadline-ms", "50"],
    );

    // Saturate from 8 threads; every single request must resolve quickly —
    // served (complete or partial), shed, or deadline-expired — and no
    // request may hang past a generous multiple of the deadline.
    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for _ in 0..5 {
                let start = Instant::now();
                let result = c.query("saturate", &query_cells(), 5);
                let took = start.elapsed();
                assert!(
                    took < Duration::from_secs(10),
                    "request took {took:?} under a 50 ms deadline"
                );
                match result {
                    Ok(_) => {}
                    Err(ClientError::Server(e)) => assert!(
                        matches!(
                            e.code,
                            ErrorCode::Overloaded | ErrorCode::DeadlineExceeded
                        ),
                        "unexpected structured error under saturation: {e}"
                    ),
                    Err(other) => panic!("non-structured failure: {other}"),
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }

    sigterm(&child);
    let status = wait_exit(&mut child, Duration::from_secs(30));
    assert!(status.success());
}
