//! Stamp-sidecar × snapshot-sync interaction (DESIGN.md §14 + §15).
//!
//! The validation-stamp sidecar (`<artifact>.stamp`) lets an unchanged
//! artifact skip its payload CRC sweep across process restarts. Replica
//! sync installs *new* artifact content under the same path — so these
//! tests pin the two safety properties at the seam:
//!
//! * installing a synced generation **voids** the previous stamp: the
//!   sidecar left behind by the old generation must not let damaged new
//!   content skip verification;
//! * a **degraded** (warning-bearing) synced load never earns a stamp,
//!   while a clean synced load does.
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use deepjoin::model::{DeepJoin, DeepJoinConfig, IndexHealth};
use deepjoin::persist::{load_model_path, save_model};
use deepjoin::train::{FineTuneConfig, JoinType};
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_serve::sync::LocalSyncSource;
use deepjoin_serve::{SyncExport, Syncer};
use deepjoin_store::{SharedIo, StdIo};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-stamp-sync-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn trained_artifact(seed: u64) -> Vec<u8> {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, seed));
    let (repo, _) = corpus.to_repository();
    let config = DeepJoinConfig {
        fine_tune: FineTuneConfig {
            epochs: 1,
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, config);
    model.index_repository(&repo);
    save_model(&model, true)
}

fn stamp_path(artifact: &Path) -> PathBuf {
    let mut s = artifact.as_os_str().to_os_string();
    s.push(".stamp");
    PathBuf::from(s)
}

/// Flip one byte deep inside the artifact's HNSW graph payload: the load
/// then degrades to exact flat search with a warning — but only if the
/// payload CRC sweep actually runs.
fn corrupt_graph_section(bytes: &mut [u8]) {
    let magic = b"HNSW";
    let pos = bytes
        .windows(magic.len())
        .rposition(|w| w == magic)
        .expect("artifact has an HNSW section");
    bytes[pos + 64] ^= 0x20;
}

/// Install the primary's current artifact into `replica_model` through the
/// real chunked sync engine (poll → fetch → CRC gate → atomic rename).
fn sync_install(io: &SharedIo, primary_model: &Path, replica_model: &Path, generation: u32) {
    let export = SyncExport::new(io.clone(), primary_model.to_path_buf(), None);
    let mut source = LocalSyncSource {
        export: &export,
        generation,
    };
    let mut syncer = Syncer::new(io.clone(), replica_model.to_path_buf(), None, 1024);
    let report = syncer.sync_once(&mut source).expect("sync must install");
    assert_eq!(report.installed, 1, "the model artifact must transfer");
}

#[test]
fn installing_a_synced_generation_voids_the_previous_stamp() {
    let tmp = TempDir::new("voids");
    let io: SharedIo = Arc::new(StdIo);
    let replica_model = tmp.path("replica.djar");
    let primary_model = tmp.path("primary.djar");

    // Generation 1 serves cleanly and earns a stamp: the next restart
    // would skip the payload sweep for this exact file content.
    std::fs::write(&replica_model, trained_artifact(7)).unwrap();
    let loaded = load_model_path(&replica_model).expect("clean load");
    assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
    assert!(
        stamp_path(&replica_model).exists(),
        "a clean verified load must leave a stamp sidecar"
    );

    // Generation 2 arrives by sync — damaged at the source, so every
    // transfer CRC matches the (corrupt) source bytes and the install
    // succeeds. The stale generation-1 sidecar is still on disk.
    let mut v2 = trained_artifact(8);
    corrupt_graph_section(&mut v2);
    std::fs::write(&primary_model, &v2).unwrap();
    sync_install(&io, &primary_model, &replica_model, 2);
    assert!(
        stamp_path(&replica_model).exists(),
        "the old sidecar survives the install; it must simply stop matching"
    );

    // If the loader trusted the stale sidecar it would skip the sweep and
    // silently serve a corrupt graph. It must instead re-verify (the
    // rename gave the file a new inode) and degrade loudly.
    let loaded = load_model_path(&replica_model).expect("degraded, not failed");
    assert!(
        !loaded.warnings.is_empty(),
        "the synced generation's damage must be re-detected despite the stale stamp"
    );
    assert!(
        matches!(loaded.model.index_health(), IndexHealth::DegradedFlat { .. }),
        "corrupt graph must degrade to exact flat search"
    );
}

#[test]
fn a_degraded_synced_load_never_earns_a_stamp_but_a_clean_one_does() {
    let tmp = TempDir::new("earns");
    let io: SharedIo = Arc::new(StdIo);
    let replica_model = tmp.path("replica.djar");
    let primary_model = tmp.path("primary.djar");

    // A degraded synced generation: loads with warnings, and must NOT
    // leave a sidecar — a damaged artifact re-verifies (and re-warns) on
    // every start.
    let mut damaged = trained_artifact(11);
    corrupt_graph_section(&mut damaged);
    std::fs::write(&primary_model, &damaged).unwrap();
    sync_install(&io, &primary_model, &replica_model, 1);
    assert!(!stamp_path(&replica_model).exists());
    let loaded = load_model_path(&replica_model).expect("degraded load");
    assert!(!loaded.warnings.is_empty(), "damage must warn");
    assert!(
        !stamp_path(&replica_model).exists(),
        "a warning-bearing load must not earn a validation stamp"
    );

    // The primary repairs (re-trains); the next sync round installs the
    // clean generation, which loads silently and earns its stamp.
    std::fs::write(&primary_model, trained_artifact(11)).unwrap();
    sync_install(&io, &primary_model, &replica_model, 2);
    let loaded = load_model_path(&replica_model).expect("clean load");
    assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
    assert!(
        stamp_path(&replica_model).exists(),
        "a clean verified synced load must earn a stamp for the next restart"
    );
}
