//! Kill-and-resume end-to-end test against the real `dj` binary: SIGKILL
//! the process mid-fine-tuning, resume from the on-disk checkpoints, and
//! assert the final model file is byte-identical to an uninterrupted
//! oracle run (DESIGN.md §10).
#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn dj() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_dj"));
    c.stdout(Stdio::null()).stderr(Stdio::null());
    c
}

fn run_dj(args: &[&str]) {
    let status = dj().args(args).status().expect("spawn dj");
    assert!(status.success(), "dj {args:?} failed: {status}");
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-kill-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// Wait until both checkpoint slots exist (fine-tuning is underway and has
/// committed at least two step checkpoints), or the child exits on its own.
/// Returns true if the child is still running.
fn wait_for_checkpoints(child: &mut std::process::Child, dir: &Path, timeout: Duration) -> bool {
    let start = Instant::now();
    loop {
        if child.try_wait().expect("try_wait").is_some() {
            return false;
        }
        if dir.join("ckpt-0.djar").exists() && dir.join("ckpt-1.djar").exists() {
            return true;
        }
        assert!(
            start.elapsed() < timeout,
            "no checkpoints appeared in {dir:?} within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_mid_training_then_resume_reproduces_oracle_model() {
    let tmp = TempDir::new("e2e");
    let lake = tmp.path("lake");
    run_dj(&["generate", s(&lake), "--tables", "60", "--seed", "7"]);

    let train_args = |model: &Path, ckpt_flag: &str, ckpt_dir: &Path| {
        vec![
            "train".to_string(),
            s(&lake).to_string(),
            s(model).to_string(),
            "--epochs".to_string(),
            "2".to_string(),
            "--threads".to_string(),
            "1".to_string(),
            "--checkpoint-every".to_string(),
            "3".to_string(),
            ckpt_flag.to_string(),
            s(ckpt_dir).to_string(),
        ]
    };

    // Oracle: uninterrupted run.
    let oracle_model = tmp.path("oracle.model");
    let oracle_ckpt = tmp.path("oracle.ckpt");
    let status = dj()
        .args(train_args(&oracle_model, "--checkpoint-dir", &oracle_ckpt))
        .status()
        .expect("spawn oracle dj train");
    assert!(status.success());

    // Victim: SIGKILL once fine-tuning has written checkpoints into both
    // slots. (`Child::kill` is SIGKILL on unix — no chance to clean up.)
    let victim_model = tmp.path("victim.model");
    let victim_ckpt = tmp.path("victim.ckpt");
    let mut child = dj()
        .args(train_args(&victim_model, "--checkpoint-dir", &victim_ckpt))
        .spawn()
        .expect("spawn victim dj train");
    let killed = if wait_for_checkpoints(&mut child, &victim_ckpt, Duration::from_secs(300)) {
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");
        true
    } else {
        // The child finished before we could kill it (very fast machine);
        // the resume below then just reloads the final checkpoint. The
        // test still verifies the byte-identity contract.
        false
    };
    if killed {
        assert!(
            !victim_model.exists(),
            "killed run must not have produced a model file"
        );
    }

    // Resume from the surviving checkpoints and finish.
    let status = dj()
        .args(train_args(&victim_model, "--resume", &victim_ckpt))
        .status()
        .expect("spawn resume dj train");
    assert!(status.success(), "resume run failed");

    let oracle = std::fs::read(&oracle_model).expect("oracle model written");
    let resumed = std::fs::read(&victim_model).expect("resumed model written");
    assert_eq!(
        oracle.len(),
        resumed.len(),
        "resumed model must match the oracle byte-for-byte (killed={killed})"
    );
    assert!(
        oracle == resumed,
        "resumed model must match the oracle byte-for-byte (killed={killed})"
    );
}

/// A kill before any checkpoint exists (or a wiped checkpoint directory)
/// must not brick the pipeline: training from an empty resume directory
/// starts fresh and still reproduces the oracle.
#[test]
fn resume_from_empty_checkpoint_dir_starts_fresh() {
    let tmp = TempDir::new("fresh");
    let lake = tmp.path("lake");
    run_dj(&["generate", s(&lake), "--tables", "40", "--seed", "9"]);

    let oracle_model = tmp.path("oracle.model");
    let oracle_ckpt = tmp.path("oracle.ckpt");
    run_dj(&[
        "train", s(&lake), s(&oracle_model),
        "--epochs", "1", "--threads", "1",
        "--checkpoint-every", "4", "--checkpoint-dir", s(&oracle_ckpt),
    ]);

    let fresh_model = tmp.path("fresh.model");
    let empty_ckpt = tmp.path("empty.ckpt");
    run_dj(&[
        "train", s(&lake), s(&fresh_model),
        "--epochs", "1", "--threads", "1",
        "--checkpoint-every", "4", "--resume", s(&empty_ckpt),
    ]);

    let a = std::fs::read(&oracle_model).unwrap();
    let b = std::fs::read(&fresh_model).unwrap();
    assert!(a == b, "fresh-start resume must reproduce the oracle");
}

/// Invalid numeric arguments fail fast with actionable messages, before
/// any expensive work happens.
#[test]
fn invalid_numeric_args_fail_with_actionable_errors() {
    let tmp = TempDir::new("args");
    let lake = tmp.path("lake");
    run_dj(&["generate", s(&lake), "--tables", "10", "--seed", "1"]);
    let model = tmp.path("m.model");

    for (flag, value, needle) in [
        ("--threads", "0", "--threads must be at least 1"),
        ("--epochs", "0", "--epochs must be at least 1"),
        ("--checkpoint-every", "0", "--checkpoint-every must be at least 1"),
        ("--epochs", "abc", "whole number"),
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_dj"))
            .args(["train", s(&lake), s(&model), flag, value])
            .output()
            .expect("spawn dj");
        assert!(!out.status.success(), "dj train {flag} {value} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(needle),
            "stderr for {flag}={value} must contain '{needle}', got: {stderr}"
        );
        assert!(!model.exists(), "no model may be written on argument errors");
    }
}
