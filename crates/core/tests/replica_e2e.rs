//! Replicated serving against real `dj` binaries (DESIGN.md §15): a
//! primary plus replicas pulling snapshot generations over the query
//! port. The chaos here is process-level — SIGKILL the primary mid-serve
//! and mid-sync, demand that replicas keep answering (flagged stale past
//! the threshold), that a multi-endpoint client fails over, that a
//! restarted primary re-converges the fleet, and that hedged queries cap
//! the tail latency a stalled replica would otherwise impose.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use deepjoin_serve::{Client, ClusterConfig, MultiClient, ROLE_REPLICA};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-replica-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

fn run_dj(args: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn dj");
    assert!(status.success(), "dj {args:?} failed: {status}");
}

fn make_lake_and_model(tmp: &TempDir) -> (PathBuf, PathBuf) {
    let lake = tmp.path("lake");
    let model = tmp.path("primary.djar");
    run_dj(&["generate", s(&lake), "--tables", "20", "--seed", "3"]);
    run_dj(&["train", s(&lake), s(&model), "--epochs", "1", "--threads", "1"]);
    (lake, model)
}

/// A serving `dj` process whose listening address was parsed from stdout.
struct Serve {
    child: Child,
    addr: String,
}

impl Serve {
    fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.sigkill();
    }
}

/// Spawn `dj serve` with `args`/`envs` and block until it prints its
/// listening line (replicas print it only after bootstrap completes).
fn spawn_serve(args: &[String], envs: &[(&str, &str)]) -> Serve {
    try_spawn_serve(args, envs, Duration::from_secs(120)).expect("dj serve must come up")
}

fn try_spawn_serve(
    args: &[String],
    envs: &[(&str, &str)],
    timeout: Duration,
) -> Result<Serve, String> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dj"));
    cmd.arg("serve").args(args).stdout(Stdio::piped()).stderr(Stdio::inherit());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().map_err(|e| format!("spawn: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { return };
            if let Some(rest) = line.strip_prefix("dj-serve listening on ") {
                let addr = rest.split_whitespace().next().unwrap_or("").to_string();
                let _ = tx.send(addr);
                return;
            }
        }
    });
    match rx.recv_timeout(timeout) {
        Ok(addr) => Ok(Serve { child, addr }),
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err("no listening line before timeout".to_string())
        }
    }
}

/// Restart a primary on its previous (now released) address; retried
/// because lingering sockets from the killed process may hold the port
/// for a moment.
fn respawn_primary_at(addr: &str, mut args: Vec<String>) -> Serve {
    args.extend(["--addr".to_string(), addr.to_string()]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match try_spawn_serve(&args, &[], Duration::from_secs(20)) {
            Ok(serve) => return serve,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "primary did not come back on {addr}: {e}"
                );
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

fn primary_args(lake: &Path, model: &Path, live: &Path) -> Vec<String> {
    vec![
        s(lake).to_string(),
        s(model).to_string(),
        "--threads".into(),
        "1".into(),
        "--live".into(),
        s(live).to_string(),
        "--flush-rows".into(),
        "2".into(),
    ]
}

fn replica_args(lake: &Path, model: &Path, live: &Path, primary: &str) -> Vec<String> {
    vec![
        s(lake).to_string(),
        s(model).to_string(),
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--threads".into(),
        "1".into(),
        "--replica-of".into(),
        primary.to_string(),
        "--live".into(),
        s(live).to_string(),
        "--sync-interval-ms".into(),
        "100".into(),
        // Loose enough that a debug-build sync round (segment install +
        // model reload) under load never trips it; the post-kill stale
        // waits below allow 10s, so detection still has ample headroom.
        "--stale-after-ms".into(),
        "3000".into(),
    ]
}

fn add_table(addr: &str, title: &str) {
    let columns = format!("x:{title}-a|{title}-b|{title}-c;y:{title}-other");
    let out = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(["ctl", addr, "add-table", title, "--columns", &columns])
        .output()
        .expect("dj ctl add-table");
    assert!(out.status.success(), "add-table {title} failed: {out:?}");
}

fn labels(addr: &str, probe: &str) -> Vec<String> {
    let mut client = Client::connect(addr).expect("connect");
    let cells: Vec<String> = (0..4).map(|i| format!("{probe}-{i}")).collect();
    let reply = client.query(probe, &cells, 500).expect("query");
    reply.hits.into_iter().map(|h| h.label).collect()
}

/// Poll until `cond` holds or `timeout` elapses.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

#[test]
fn replicas_survive_a_sigkilled_primary_flag_staleness_and_reconverge() {
    let tmp = TempDir::new("failover");
    let (lake, model) = make_lake_and_model(&tmp);
    let live_p = tmp.path("live-p");

    let args_p = primary_args(&lake, &model, &live_p);
    let mut primary = spawn_serve(
        &[args_p.clone(), vec!["--addr".into(), "127.0.0.1:0".into()]].concat(),
        &[],
    );
    let paddr = primary.addr.clone();

    // Two replicas bootstrap their first generation from the primary
    // (their model paths start empty) and ship live deltas thereafter.
    let r1 = spawn_serve(
        &replica_args(&lake, &tmp.path("r1.djar"), &tmp.path("live-r1"), &paddr),
        &[],
    );
    let r2 = spawn_serve(
        &replica_args(&lake, &tmp.path("r2.djar"), &tmp.path("live-r2"), &paddr),
        &[],
    );

    // A mutation on the primary reaches both replicas without restarts or
    // re-embedding: the sealed segment + manifest ship on the next poll.
    add_table(&paddr, "fleet");
    for addr in [&r1.addr, &r2.addr] {
        wait_for("replica convergence", Duration::from_secs(15), || {
            labels(addr, "conv").iter().any(|l| l == "fleet.x")
        });
    }

    // Replicas identify themselves, are in sync, and refuse writes.
    {
        let mut c = Client::connect(&r1.addr).expect("connect r1");
        let stats = c.stats().expect("stats");
        let rep = stats.replication.expect("replica must report gauges");
        assert_eq!(rep.role, ROLE_REPLICA);
        assert!(!rep.stale, "freshly synced replica must not be stale");
        assert!(rep.syncs > 0, "bootstrap counts as a sync");
        let denied = c.add_table("nope", &[("a".into(), vec!["1".into()])]);
        let err = denied.expect_err("replica must refuse mutations");
        assert!(
            err.to_string().contains("read-only"),
            "refusal should say read-only: {err}"
        );
    }

    // SIGKILL the primary mid-serve. Replicas keep answering, and once
    // the staleness threshold passes, answers say so.
    primary.sigkill();
    for addr in [&r1.addr, &r2.addr] {
        wait_for("stale flag", Duration::from_secs(10), || {
            Client::connect(addr)
                .and_then(|mut c| c.stats())
                .map(|s| s.replication.is_some_and(|r| r.stale))
                .unwrap_or(false)
        });
        let mut c = Client::connect(addr).expect("connect stale replica");
        let reply = c.query("probe", &["probe-0".into()], 3).expect("stale query");
        assert!(
            reply.health_label.contains("(stale)"),
            "stale answers must be flagged: {}",
            reply.health_label
        );
        assert!(reply.degraded, "stale answers report degraded");
    }

    // A multi-endpoint client fails over to the replicas: the dead
    // primary is probed down and never blocks the answer.
    let cluster = MultiClient::new(ClusterConfig {
        endpoints: vec![paddr.clone(), r1.addr.clone(), r2.addr.clone()],
        ..ClusterConfig::default()
    })
    .expect("cluster client");
    let started = Instant::now();
    let routed = cluster
        .query("failover", &["failover-0".into()], 3)
        .expect("failover query");
    let took = started.elapsed();
    assert_ne!(routed.endpoint, paddr, "dead primary cannot answer");
    eprintln!("failover query answered by {} in {took:?}", routed.endpoint);

    // The primary returns on the same address: replicas re-converge, the
    // stale flag clears, and new mutations flow again.
    let primary2 = respawn_primary_at(&paddr, args_p);
    assert_eq!(primary2.addr, paddr, "primary must rebind its address");
    add_table(&paddr, "after-heal");
    for addr in [&r1.addr, &r2.addr] {
        wait_for("re-convergence", Duration::from_secs(20), || {
            labels(addr, "heal").iter().any(|l| l == "after-heal.x")
        });
        let mut c = Client::connect(addr).expect("reconnect");
        let stats = c.stats().expect("stats");
        assert!(
            !stats.replication.expect("gauges").stale,
            "re-synced replica must drop the stale flag"
        );
    }
    drop(cluster);
    drop((r1, r2, primary2));
}

#[test]
fn a_primary_killed_mid_sync_is_survived_by_a_resumed_bootstrap() {
    let tmp = TempDir::new("midsync");
    let (lake, model) = make_lake_and_model(&tmp);

    let mut primary = spawn_serve(
        &[
            s(&lake).to_string(),
            s(&model).to_string(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--threads".into(),
            "1".into(),
        ],
        &[],
    );
    let paddr = primary.addr.clone();

    // Start a replica bootstrapping in tiny chunks (thousands of fetch
    // round-trips), then SIGKILL the primary while the transfer is most
    // likely in flight. The replica's bootstrap keeps retrying.
    let replica_model = tmp.path("replica.djar");
    let mut args = replica_args(&lake, &replica_model, &tmp.path("live-r"), &paddr);
    args.extend(["--sync-chunk-bytes".into(), "1024".into()]);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dj"));
    cmd.arg("serve").args(&args).stdout(Stdio::piped()).stderr(Stdio::null());
    let mut replica = cmd.spawn().expect("spawn replica");
    let replica_stdout = replica.stdout.take().expect("piped stdout");

    std::thread::sleep(Duration::from_millis(150));
    primary.sigkill();
    std::thread::sleep(Duration::from_millis(300));

    // The primary returns; the replica finishes bootstrapping (resuming
    // or restarting its partial — either way it converges) and serves.
    let primary2 = respawn_primary_at(
        &paddr,
        vec![
            s(&lake).to_string(),
            s(&model).to_string(),
            "--threads".into(),
            "1".into(),
        ],
    );
    assert_eq!(primary2.addr, paddr);

    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(replica_stdout).lines() {
            let Ok(line) = line else { return };
            if let Some(rest) = line.strip_prefix("dj-serve listening on ") {
                let _ = tx.send(rest.split_whitespace().next().unwrap_or("").to_string());
                return;
            }
        }
    });
    let raddr = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("replica must finish bootstrapping after the primary returns");

    let mut c = Client::connect(&raddr).expect("connect replica");
    let reply = c.query("probe", &["probe-0".into()], 3).expect("replica query");
    assert!(!reply.hits.is_empty(), "bootstrapped replica must answer");
    // The install was atomic: the served artifact is complete and no
    // partial-transfer files linger next to it.
    let mut partial = replica_model.as_os_str().to_os_string();
    partial.push(".sync");
    assert!(
        !PathBuf::from(&partial).exists(),
        "a finished install must clean up its partial"
    );

    let _ = replica.kill();
    let _ = replica.wait();
    drop(primary2);
}

#[test]
fn hedged_queries_cap_the_tail_latency_of_a_stalled_replica() {
    let tmp = TempDir::new("hedge");
    let (lake, model) = make_lake_and_model(&tmp);

    let primary = spawn_serve(
        &[
            s(&lake).to_string(),
            s(&model).to_string(),
            "--addr".into(),
            "127.0.0.1:0".into(),
            "--threads".into(),
            "1".into(),
        ],
        &[],
    );
    let paddr = primary.addr.clone();

    // Two replicas of the same primary; one stalls every query 250 ms
    // (the debug hook models a slow peer, not a dead one: probes and
    // syncs stay fast, so the breaker never opens).
    let slow = spawn_serve(
        &replica_args(&lake, &tmp.path("slow.djar"), &tmp.path("live-slow"), &paddr),
        &[("DEEPJOIN_DEBUG_STALL_MS", "250")],
    );
    let fast = spawn_serve(
        &replica_args(&lake, &tmp.path("fast.djar"), &tmp.path("live-fast"), &paddr),
        &[],
    );

    // The stalled replica ranks first (equal freshness, listed first), so
    // every query would eat the 250 ms stall — unless the hedge fires a
    // second attempt at the adaptive delay and the fast replica answers.
    let cluster = MultiClient::new(ClusterConfig {
        endpoints: vec![slow.addr.clone(), fast.addr.clone()],
        ..ClusterConfig::default()
    })
    .expect("cluster client");

    let mut under_stall = 0usize;
    let rounds = 12usize;
    for i in 0..rounds {
        let started = Instant::now();
        let routed = cluster
            .query("hedge", &[format!("hedge-{i}")], 3)
            .expect("hedged query");
        let took = started.elapsed();
        if took < Duration::from_millis(250) {
            under_stall += 1;
        }
        assert!(!routed.reply.hits.is_empty());
    }
    let (fired, won) = cluster.hedge_counters();
    eprintln!("hedges fired {fired}, won {won}, {under_stall}/{rounds} under the stall");
    assert!(fired > 0, "the stalled first choice must trigger hedges");
    assert!(
        under_stall >= rounds - 2,
        "hedging must cap the tail below the 250 ms stall ({under_stall}/{rounds})"
    );
    drop((slow, fast, primary));
}
