//! Fault-injection pass over the optional `SQ8V` quantized-plane section.
//!
//! The quantized plane is an accelerator, never a dependency: any damage to
//! it — a checksum-detected bit flip, a checksum-*valid* truncation (a torn
//! write that was re-framed), or arbitrary torn prefixes — must cost exactly
//! one load warning and silently fall back to exact f32 serving. A damaged
//! `SQ8V` section must never fail the load or perturb search results.

use deepjoin::model::{DeepJoin, DeepJoinConfig, IndexHealth};
use deepjoin::persist::SECTION_SQ8;
use deepjoin::train::{FineTuneConfig, JoinType};
use deepjoin::{load_model, save_model};
use deepjoin_ann::Budget;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::Repository;
use deepjoin_store::{Container, ContainerBuilder};

fn tiny_indexed_model() -> (DeepJoin, Repository) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 12, 7));
    let (repo, _) = corpus.to_repository();
    let config = DeepJoinConfig {
        fine_tune: FineTuneConfig {
            epochs: 1,
            ..Default::default()
        },
        ..DeepJoinConfig::default()
    };
    let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, config);
    model.index_repository(&repo);
    (model, repo)
}

/// Top-k over every indexed column, as exact (id, score-bits) pairs.
fn rankings(model: &DeepJoin, repo: &Repository, k: usize) -> Vec<Vec<(u32, u64)>> {
    repo.columns()
        .iter()
        .take(6)
        .map(|col| {
            let q = model.embed_column(col);
            model
                .search_embedded_budgeted_filtered(&q, k, &Budget::unlimited(), None)
                .hits
                .into_iter()
                .map(|h| (h.id.0, h.score.to_bits()))
                .collect()
        })
        .collect()
}

/// Rebuild the artifact with the `SQ8V` payload replaced. The builder
/// recomputes section checksums, so the damage arrives with a *valid* CRC —
/// the decoder itself has to reject it.
fn rebuild_with_sq8(bytes: &[u8], sq8_payload: Vec<u8>) -> Vec<u8> {
    let container = Container::parse(bytes).expect("artifact parses");
    let mut builder = ContainerBuilder::new();
    for name in container.section_names() {
        let payload = container
            .section(name, "rebuild")
            .expect("present")
            .expect("intact")
            .to_vec();
        if name == SECTION_SQ8 {
            builder = builder.section(name, sq8_payload.clone());
        } else {
            builder = builder.section(name, payload);
        }
    }
    builder.build()
}

fn sq8_payload(bytes: &[u8]) -> (usize, Vec<u8>) {
    let container = Container::parse(bytes).expect("artifact parses");
    let payload = container
        .section(SECTION_SQ8, "SQ8V")
        .expect("SQV8 section present")
        .expect("intact payload");
    let offset = payload.as_ptr() as usize - bytes.as_ptr() as usize;
    (offset, payload.to_vec())
}

/// The shared postcondition: the damaged artifact loads with exactly one
/// SQ8 warning, serves from the full-fidelity graph without the quantized
/// plane, and ranks bit-identically to the never-quantized model.
fn assert_degrades_to_exact(
    label: &str,
    damaged: &[u8],
    repo: &Repository,
    reference: &[Vec<(u32, u64)>],
) {
    let loaded = load_model(damaged).unwrap_or_else(|e| panic!("{label}: load failed: {e}"));
    assert_eq!(
        loaded.warnings.len(),
        1,
        "{label}: want exactly one warning, got {:?}",
        loaded.warnings
    );
    assert!(
        loaded.warnings[0].contains("SQ8"),
        "{label}: warning must name the section: {}",
        loaded.warnings[0]
    );
    assert_eq!(
        loaded.model.index_health(),
        IndexHealth::Hnsw,
        "{label}: graph fidelity must be untouched"
    );
    assert_eq!(
        loaded.model.sq8_resident_bytes(),
        None,
        "{label}: damaged plane must be dropped, not half-attached"
    );
    assert_eq!(
        &rankings(&loaded.model, repo, 5),
        reference,
        "{label}: exact-f32 serving must rank like the unquantized model"
    );
}

#[test]
fn damaged_sq8_sections_cost_one_warning_and_serve_exact() {
    let (mut model, repo) = tiny_indexed_model();

    // Reference rankings from the model that never quantized.
    let plain = save_model(&model, true);
    let reference = {
        let loaded = load_model(&plain).expect("plain load");
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        rankings(&loaded.model, &repo, 5)
    };

    assert!(model.quantize_sq8(), "quantization must engage");
    let quantized = save_model(&model, true);
    {
        let loaded = load_model(&quantized).expect("quantized load");
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        assert!(loaded.model.sq8_resident_bytes().is_some());
    }

    let (offset, payload) = sq8_payload(&quantized);
    assert!(payload.len() > 16, "plane payload should be non-trivial");

    // 1. Bit flip on disk: the section checksum catches it.
    let mut flipped = quantized.clone();
    flipped[offset + payload.len() / 2] ^= 0x10;
    assert_degrades_to_exact("crc-detected bit flip", &flipped, &repo, &reference);

    // 2. Checksum-valid truncation: a torn payload re-framed with a correct
    // CRC, so only the decoder's own length accounting can reject it.
    let truncated = rebuild_with_sq8(&quantized, payload[..payload.len() / 2].to_vec());
    assert_degrades_to_exact("valid-crc truncation", &truncated, &repo, &reference);

    // 3. Torn prefixes of several lengths, including a cut inside the
    // header and a one-byte-short tail.
    for cut in [1, 7, payload.len() / 3, payload.len() - 1] {
        let torn = rebuild_with_sq8(&quantized, payload[..cut].to_vec());
        assert_degrades_to_exact(&format!("torn prefix of {cut} bytes"), &torn, &repo, &reference);
    }

    // 4. Garbage of the right length: every byte overwritten.
    let garbage = rebuild_with_sq8(&quantized, vec![0xA5; payload.len()]);
    assert_degrades_to_exact("same-length garbage", &garbage, &repo, &reference);
}
