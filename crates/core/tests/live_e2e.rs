//! End-to-end crash-safety of live ingest against the real `dj` binary:
//! mutate a served lake over the wire, SIGKILL the server mid-flight,
//! restart it over the same `--live` directory, and demand exactly the
//! acknowledged mutations back — no lost adds, no duplicate rows, no
//! resurrected drops.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use deepjoin_serve::Client;

fn dj() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_dj"));
    c.stdout(Stdio::null()).stderr(Stdio::null());
    c
}

fn run_dj(args: &[&str]) {
    let status = dj().args(args).status().expect("spawn dj");
    assert!(status.success(), "dj {args:?} failed: {status}");
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dj-live-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(p: &Path) -> &str {
    p.to_str().unwrap()
}

fn make_lake_and_model(tmp: &TempDir) -> (PathBuf, PathBuf) {
    let lake = tmp.path("lake");
    let model = tmp.path("m.model");
    run_dj(&["generate", s(&lake), "--tables", "20", "--seed", "3"]);
    run_dj(&["train", s(&lake), s(&model), "--epochs", "1", "--threads", "1"]);
    (lake, model)
}

/// Spawn `dj serve --live` on an OS-assigned port with an aggressive flush
/// threshold and compactor, so mutations constantly cross the
/// memtable → segment → compacted lifecycle while we operate.
fn spawn_live_serve(lake: &Path, model: &Path, live: &Path) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dj"));
    cmd.args([
        "serve", s(lake), s(model),
        "--addr", "127.0.0.1:0",
        "--threads", "1",
        "--live", s(live),
        "--flush-rows", "2",
        "--compact-secs", "1",
        "--compact-min-segs", "2",
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn dj serve --live");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    // The live-lake recovery summary precedes the listening line.
    let addr = loop {
        let line = lines
            .next()
            .expect("serve must print its listening line")
            .expect("read startup line");
        if let Some(addr) = line.strip_prefix("dj-serve listening on ") {
            break addr.to_string();
        }
    };
    (child, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill");
    assert!(status.success(), "kill -TERM failed");
}

fn wait_exit(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            start.elapsed() < timeout,
            "server did not exit within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Every hit label for a full-lake query, so label multiplicity is visible.
fn all_labels(client: &mut Client, probe: &str) -> Vec<String> {
    let cells: Vec<String> = (0..8).map(|i| format!("{probe}-{i}")).collect();
    let reply = client.query(probe, &cells, 500).expect("query");
    reply.hits.into_iter().map(|h| h.label).collect()
}

fn count_of(labels: &[String], needle: &str) -> usize {
    labels.iter().filter(|l| l.as_str() == needle).count()
}

fn live_columns(i: usize) -> String {
    format!("x:cell-{i}-a|cell-{i}-b|cell-{i}-c;y:other-{i}")
}

#[test]
fn sigkill_mid_ingest_recovers_acknowledged_mutations_exactly_once() {
    let tmp = TempDir::new("killsafe");
    let (lake, model) = make_lake_and_model(&tmp);
    let live = tmp.path("live");

    let (mut child, addr) = spawn_live_serve(&lake, &model, &live);
    let mut client = Client::connect(&addr).expect("connect");

    // Acknowledged adds: with --flush-rows 2, every table crosses a flush,
    // and the 1-second compactor keeps folding segments underneath us.
    for i in 0..6 {
        let out = Command::new(env!("CARGO_BIN_EXE_dj"))
            .args(["ctl", &addr, "add-table", &format!("live-{i}"), "--columns", &live_columns(i)])
            .output()
            .expect("dj ctl add-table");
        assert!(out.status.success(), "add-table {i} failed: {out:?}");
    }

    // Visible without restart: both columns of each table serve, once.
    let labels = all_labels(&mut client, "warm");
    for i in 0..6 {
        assert_eq!(count_of(&labels, &format!("live-{i}.x")), 1, "{labels:?}");
        assert_eq!(count_of(&labels, &format!("live-{i}.y")), 1);
    }

    // A drop is effective on the next query — no flush, no restart.
    let out = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(["ctl", &addr, "drop-table", "live-2"])
        .output()
        .expect("dj ctl drop-table");
    assert!(out.status.success(), "drop-table failed: {out:?}");
    let labels = all_labels(&mut client, "after-drop");
    assert_eq!(count_of(&labels, "live-2.x"), 0, "dropped column still serves");
    assert_eq!(count_of(&labels, "live-2.y"), 0);
    assert_eq!(count_of(&labels, "live-3.x"), 1, "unrelated column lost");

    // SIGKILL: no drain, no flush, the compactor dies mid-interval.
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");

    // Restart over the same live directory: recovery must replay the WAL
    // tail over the flushed manifest and serve every acknowledged mutation
    // exactly once.
    let (mut child2, addr2) = spawn_live_serve(&lake, &model, &live);
    let mut client2 = Client::connect(&addr2).expect("reconnect");

    let stats = client2.stats().expect("stats");
    let gauges = stats.live.expect("--live server must report live gauges");
    assert_eq!(
        gauges.live_rows, 10,
        "6 tables x 2 columns added, 1 table x 2 columns dropped"
    );

    let labels = all_labels(&mut client2, "recovered");
    for i in 0..6 {
        let want = usize::from(i != 2);
        assert_eq!(
            count_of(&labels, &format!("live-{i}.x")),
            want,
            "live-{i}.x after crash recovery: {labels:?}"
        );
        assert_eq!(count_of(&labels, &format!("live-{i}.y")), want);
    }

    // The lake is still writable after recovery, and new mutations land on
    // top of the recovered state.
    let out = Command::new(env!("CARGO_BIN_EXE_dj"))
        .args(["ctl", &addr2, "add-table", "post-crash", "--columns", "z:p|q"])
        .output()
        .expect("post-crash add");
    assert!(out.status.success(), "post-crash add failed: {out:?}");
    let labels = all_labels(&mut client2, "post-crash");
    assert_eq!(count_of(&labels, "post-crash.z"), 1);
    assert_eq!(count_of(&labels, "live-2.x"), 0, "drop resurrected by recovery");

    // Second SIGKILL + restart: the drop and the post-crash add both stick.
    child2.kill().expect("SIGKILL 2");
    child2.wait().expect("reap 2");
    let (mut child3, addr3) = spawn_live_serve(&lake, &model, &live);
    let mut client3 = Client::connect(&addr3).expect("reconnect 2");
    let labels = all_labels(&mut client3, "recovered-2");
    assert_eq!(count_of(&labels, "post-crash.z"), 1, "{labels:?}");
    assert_eq!(count_of(&labels, "live-2.x"), 0);
    assert_eq!(count_of(&labels, "live-4.y"), 1);

    // Graceful shutdown still drains cleanly (flushing the memtable).
    sigterm(&child3);
    let status = wait_exit(&mut child3, Duration::from_secs(30));
    assert!(status.success(), "SIGTERM must drain and exit 0: {status}");
}
