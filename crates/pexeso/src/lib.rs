//! # deepjoin-pexeso
//!
//! PEXESO (Dong et al., ICDE'21): exact semantic-joinable column search —
//! the exact semantic-join baseline of the DeepJoin evaluation, and the
//! labeler for DeepJoin's semantic-join training data (§4.1).
//!
//! Every cell of every column is embedded into the metric space 𝒱
//! (`deepjoin-embed`'s fastText stand-in). A query vector `q` *matches* a
//! target vector `x` when `d(q, x) ≤ τ` (Definition 2.2), and the
//! semantic joinability is the fraction of query vectors with at least one
//! match (Definition 2.3).
//!
//! PEXESO's machinery, reproduced here:
//!
//! * **pivot selection** — farthest-first traversal picks `p` well-spread
//!   pivot vectors;
//! * **pivot mapping** — every vector is mapped to its distance profile
//!   `(d(v, piv₁), …, d(v, piv_p))`; by the triangle inequality,
//!   `|d(q,pivᵢ) − d(x,pivᵢ)| > τ` for any pivot proves `d(q,x) > τ`
//!   (metric-space pruning, no false negatives);
//! * **grid index** — pivot-space points are bucketed into a uniform grid;
//!   a query probes only cells intersecting the `τ`-box around its own
//!   profile, verifying real distances inside.
//!
//! The original also maintains count-based column pruning for the
//! *thresholded* problem; the DeepJoin paper itself notes (§2.2) that the
//! top-k variant degrades that pruning to nothing, so — like the paper's
//! evaluation — the top-k search here scores all columns surviving
//! vector-level pruning.

#![warn(missing_docs)]

use deepjoin_embed::cell_space::ColumnVectors;
use deepjoin_lake::column::ColumnId;
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::joinability::{rank_and_truncate, ScoredColumn};

/// PEXESO parameters.
#[derive(Debug, Clone, Copy)]
pub struct PexesoConfig {
    /// Number of pivots.
    pub num_pivots: usize,
    /// Grid cell width in pivot space.
    pub cell_width: f32,
}

impl Default for PexesoConfig {
    fn default() -> Self {
        Self {
            num_pivots: 5,
            cell_width: 0.25,
        }
    }
}

/// A vector's location: which column it belongs to and its offset in the
/// flat vector buffer.
#[derive(Debug, Clone, Copy)]
struct VecRef {
    col: u32,
    offset: u32,
}

/// The PEXESO index over an embedded repository.
pub struct PexesoIndex {
    config: PexesoConfig,
    dim: usize,
    /// Pivot vectors, row-major `p x dim`.
    pivots: Vec<f32>,
    /// All repository vectors, flattened.
    vectors: Vec<f32>,
    /// Pivot-space profiles, row-major `n x p`, parallel to vector order.
    profiles: Vec<f32>,
    /// Vector refs parallel to vector order.
    refs: Vec<VecRef>,
    /// Grid: cell key -> vector indices.
    grid: FxHashMap<u64, Vec<u32>>,
    /// Distinct-cell count per column.
    col_sizes: Vec<u32>,
}

impl PexesoIndex {
    /// Build the index over the embedded repository columns.
    pub fn build(columns: &[ColumnVectors], config: PexesoConfig) -> Self {
        assert!(!columns.is_empty(), "empty repository");
        let dim = columns.iter().map(|c| c.dim).find(|&d| d > 0).unwrap_or(0);
        assert!(dim > 0, "zero-dimensional vectors");

        // Flatten vectors with refs.
        let total: usize = columns.iter().map(|c| c.len()).sum();
        let mut vectors = Vec::with_capacity(total * dim);
        let mut refs = Vec::with_capacity(total);
        let mut col_sizes = Vec::with_capacity(columns.len());
        for (ci, col) in columns.iter().enumerate() {
            col_sizes.push(col.len() as u32);
            for v in col.iter() {
                refs.push(VecRef {
                    col: ci as u32,
                    offset: (vectors.len() / dim) as u32,
                });
                vectors.extend_from_slice(v);
            }
        }
        assert!(!refs.is_empty(), "no vectors to index");

        // Farthest-first pivot selection (deterministic: starts at vector 0).
        let n = refs.len();
        let p = config.num_pivots.min(n).max(1);
        let mut pivots: Vec<f32> = Vec::with_capacity(p * dim);
        pivots.extend_from_slice(&vectors[0..dim]);
        let mut dist_to_nearest: Vec<f32> = (0..n)
            .map(|i| l2(&vectors[i * dim..(i + 1) * dim], &pivots[0..dim]))
            .collect();
        while pivots.len() / dim < p {
            let (far, _) = dist_to_nearest
                .iter()
                .enumerate()
                .fold((0usize, f32::NEG_INFINITY), |acc, (i, &d)| {
                    if d > acc.1 {
                        (i, d)
                    } else {
                        acc
                    }
                });
            let start = pivots.len();
            pivots.extend_from_slice(&vectors[far * dim..(far + 1) * dim]);
            let newp = pivots[start..start + dim].to_vec();
            for i in 0..n {
                let d = l2(&vectors[i * dim..(i + 1) * dim], &newp);
                if d < dist_to_nearest[i] {
                    dist_to_nearest[i] = d;
                }
            }
        }

        // Pivot profiles + grid.
        let mut profiles = vec![0f32; n * p];
        let mut grid: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for i in 0..n {
            let v = &vectors[i * dim..(i + 1) * dim];
            for (j, piv) in pivots.chunks_exact(dim).enumerate() {
                profiles[i * p + j] = l2(v, piv);
            }
            let key = grid_key(&profiles[i * p..(i + 1) * p], config.cell_width);
            grid.entry(key).or_default().push(i as u32);
        }

        Self {
            config,
            dim,
            pivots,
            vectors,
            profiles,
            refs,
            grid,
            col_sizes,
        }
    }

    /// Number of indexed columns.
    pub fn num_columns(&self) -> usize {
        self.col_sizes.len()
    }

    /// Number of indexed vectors.
    pub fn num_vectors(&self) -> usize {
        self.refs.len()
    }

    /// Exact top-k semantically joinable columns for `query` under
    /// threshold `tau`. Columns with zero matching vectors are omitted.
    pub fn search(&self, query: &ColumnVectors, tau: f64, k: usize) -> Vec<ScoredColumn> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let counts = self.match_counts(query, tau);
        let q_len = query.len() as f64;
        let scored: Vec<ScoredColumn> = counts
            .into_iter()
            .map(|(col, cnt)| ScoredColumn {
                id: ColumnId(col),
                score: cnt as f64 / q_len,
            })
            .collect();
        rank_and_truncate(scored, k)
    }

    /// Thresholded variant: all columns with `jn ≥ t` (used for labeling
    /// training data).
    pub fn query_threshold(&self, query: &ColumnVectors, tau: f64, t: f64) -> Vec<ScoredColumn> {
        if query.is_empty() {
            return Vec::new();
        }
        let counts = self.match_counts(query, tau);
        let q_len = query.len() as f64;
        let mut out: Vec<ScoredColumn> = counts
            .into_iter()
            .filter_map(|(col, cnt)| {
                let score = cnt as f64 / q_len;
                (score >= t).then_some(ScoredColumn {
                    id: ColumnId(col),
                    score,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        out
    }

    /// Per column: the number of query vectors with ≥ 1 matching vector in
    /// that column. Uses pivot + grid pruning, verifies real distances.
    fn match_counts(&self, query: &ColumnVectors, tau: f64) -> FxHashMap<u32, u32> {
        let p = self.num_pivots();
        let tau_f = tau as f32;
        let tau_sq = tau_f * tau_f;
        let w = self.config.cell_width;

        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        let mut profile = vec![0f32; p];
        let mut cols: Vec<u32> = Vec::new();
        for q in query.iter() {
            for (j, piv) in self.pivots.chunks_exact(self.dim).enumerate() {
                profile[j] = l2(q, piv);
            }
            let lo: Vec<i64> = profile
                .iter()
                .map(|&d| ((d - tau_f) / w).floor() as i64)
                .collect();
            let hi: Vec<i64> = profile
                .iter()
                .map(|&d| ((d + tau_f) / w).floor() as i64)
                .collect();
            cols.clear();

            // The τ-box spans ∏(hi−lo+1) cells; when that exceeds the number
            // of *occupied* cells (large τ), enumerating the box is slower
            // than scanning the occupied cells directly — the hierarchical
            // grid has degraded, exactly the regime §2.2 describes. Switch
            // to a scan over occupied cells with the pivot filter intact.
            let box_cells: u128 = lo
                .iter()
                .zip(&hi)
                .map(|(&l, &h)| (h - l + 1) as u128)
                .product();

            let visit = |members: &[u32], cols: &mut Vec<u32>| {
                for &vi in members {
                    let vi_us = vi as usize;
                    // Pivot filter: triangle inequality per coordinate.
                    let prof = &self.profiles[vi_us * p..(vi_us + 1) * p];
                    let pruned = prof
                        .iter()
                        .zip(&profile)
                        .any(|(&a, &b)| (a - b).abs() > tau_f);
                    if pruned {
                        continue;
                    }
                    let r = self.refs[vi_us];
                    if cols.contains(&r.col) {
                        continue; // already matched this column for q
                    }
                    let v = &self.vectors
                        [r.offset as usize * self.dim..(r.offset as usize + 1) * self.dim];
                    if l2_sq(q, v) <= tau_sq {
                        cols.push(r.col);
                    }
                }
            };

            if box_cells > self.grid.len() as u128 {
                for members in self.grid.values() {
                    visit(members, &mut cols);
                }
            } else {
                let mut cell = lo.clone();
                'cells: loop {
                    if let Some(members) = self.grid.get(&cell_key(&cell)) {
                        visit(members, &mut cols);
                    }
                    // Advance the multidimensional cell counter.
                    let mut d = 0usize;
                    loop {
                        if d == p {
                            break 'cells;
                        }
                        cell[d] += 1;
                        if cell[d] <= hi[d] {
                            break;
                        }
                        cell[d] = lo[d];
                        d += 1;
                    }
                }
            }
            for &c in &cols {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        counts
    }

    fn num_pivots(&self) -> usize {
        self.pivots.len() / self.dim
    }
}

#[inline]
fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[inline]
fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Hash a grid cell (integer coordinates) to a key.
fn cell_key(cell: &[i64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &c in cell {
        acc ^= c as u64;
        acc = acc.wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

/// Cell key for a continuous profile.
fn grid_key(profile: &[f32], w: f32) -> u64 {
    let cell: Vec<i64> = profile.iter().map(|&d| (d / w).floor() as i64).collect();
    cell_key(&cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_embed::cell_space::CellSpace;
    use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
    use deepjoin_embed::EmbeddedRepository;
    use deepjoin_lake::column::Column;
    use deepjoin_lake::repository::Repository;

    fn space() -> CellSpace {
        CellSpace::new(NgramEmbedder::new(NgramConfig::default()))
    }

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    fn test_repo() -> Repository {
        Repository::from_columns(vec![
            col(&["paris", "tokyo", "lima", "oslo", "cairo"]),
            col(&["pariss", "tokio", "lima", "berlin", "madrid"]),
            col(&["zz-111", "zz-222", "zz-333", "zz-444", "zz-555"]),
            col(&["paris", "tokyo", "rome", "bonn", "kiev"]),
        ])
    }

    #[test]
    fn matches_brute_force_reference() {
        let s = space();
        let repo = test_repo();
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        let q = s.embed_column(&col(&["paris", "tokyo", "lima", "oslo", "cairo"]));
        for tau in [0.3f64, 0.6, 0.9] {
            let got = idx.search(&q, tau, 4);
            let want = er.brute_force_topk(&q, tau, 4);
            let want_pos: Vec<_> = want.iter().filter(|s| s.score > 0.0).collect();
            assert_eq!(got.len(), want_pos.len(), "tau {tau}");
            for (g, w) in got.iter().zip(&want_pos) {
                assert_eq!(g.id, w.id, "tau {tau}");
                assert!((g.score - w.score).abs() < 1e-9, "tau {tau}");
            }
        }
    }

    #[test]
    fn noisy_variants_match_at_loose_tau() {
        let s = space();
        let repo = test_repo();
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        let q = s.embed_column(&col(&["pariss", "tokio", "lima", "berlin", "madrid"]));
        let top = idx.search(&q, 0.9, 1);
        assert_eq!(top[0].id.0, 1, "self should match best");
        assert_eq!(top[0].score, 1.0);
        let top4 = idx.search(&q, 0.9, 4);
        assert!(top4.iter().any(|h| h.id.0 == 0));
    }

    #[test]
    fn threshold_variant_agrees_with_topk() {
        let s = space();
        let repo = test_repo();
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        let q = s.embed_column(&col(&["paris", "tokyo", "lima", "oslo", "cairo"]));
        let all = idx.search(&q, 0.9, 10);
        let thr = idx.query_threshold(&q, 0.9, 0.5);
        for t in &thr {
            assert!(t.score >= 0.5);
            assert!(all.iter().any(|a| a.id == t.id && (a.score - t.score).abs() < 1e-12));
        }
    }

    #[test]
    fn empty_query_is_empty() {
        let s = space();
        let repo = test_repo();
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        let q = s.embed_column(&col(&[]));
        assert!(idx.search(&q, 0.9, 5).is_empty());
        assert!(idx.query_threshold(&q, 0.9, 0.5).is_empty());
    }

    #[test]
    fn index_shape_accessors() {
        let s = space();
        let repo = test_repo();
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        assert_eq!(idx.num_columns(), 4);
        assert_eq!(idx.num_vectors(), 20);
    }

    #[test]
    fn pruning_never_loses_matches_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let s = space();
        let mut rng = StdRng::seed_from_u64(77);
        let vocab: Vec<String> = (0..40).map(|i| format!("word{i} item{}", i % 7)).collect();
        let repo = Repository::from_columns((0..20).map(|_| {
            let len = rng.gen_range(5..12);
            Column::from_cells((0..len).map(|_| vocab[rng.gen_range(0..vocab.len())].clone()))
        }));
        let er = EmbeddedRepository::build(&s, &repo);
        let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
        for _ in 0..5 {
            let qlen = rng.gen_range(5..12);
            let qcol = Column::from_cells(
                (0..qlen).map(|_| vocab[rng.gen_range(0..vocab.len())].clone()),
            );
            let q = s.embed_column(&qcol);
            for tau in [0.4f64, 0.8] {
                let got = idx.search(&q, tau, 20);
                let want = er.brute_force_topk(&q, tau, 20);
                let want_pos: Vec<_> = want.into_iter().filter(|s| s.score > 0.0).collect();
                assert_eq!(got.len(), want_pos.len());
                for (g, w) in got.iter().zip(&want_pos) {
                    assert!((g.score - w.score).abs() < 1e-9);
                }
            }
        }
    }
}
