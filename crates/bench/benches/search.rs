//! Criterion microbenchmarks for the search paths (complements the
//! table-level experiment binaries): per-query latency of every index on a
//! fixed small lake, plus the scaling of HNSW vs the exact scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use deepjoin_ann::{FlatIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
use deepjoin_embed::cell_space::CellSpace;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

const K: usize = 10;

fn bench_join_search(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 2_000, 77));
    let (repo, _) = corpus.to_repository();
    let queries: Vec<_> = corpus
        .sample_queries(16, 5)
        .into_iter()
        .map(|(q, _)| q)
        .collect();

    let josie = JosieIndex::build(&repo);
    let lsh = LshEnsembleIndex::build(
        &repo,
        LshEnsembleConfig {
            num_perm: 32,
            ..Default::default()
        },
    );
    let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
        dim: 64,
        ..NgramConfig::default()
    }));
    let embedded: Vec<_> = repo.columns().iter().map(|c| space.embed_column(c)).collect();
    let pexeso = PexesoIndex::build(&embedded, PexesoConfig::default());

    let mut group = c.benchmark_group("search_per_query");
    let mut qi = 0usize;
    group.bench_function("josie_topk", |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            std::hint::black_box(josie.search(&queries[qi], K))
        })
    });
    group.bench_function("lsh_ensemble_topk", |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            std::hint::black_box(lsh.search(&queries[qi], K))
        })
    });
    group.bench_function("pexeso_topk_tau09", |b| {
        b.iter(|| {
            qi = (qi + 1) % queries.len();
            let qv = space.embed_column(&queries[qi]);
            std::hint::black_box(pexeso.search(&qv, 0.9, K))
        })
    });
    group.finish();
}

fn bench_ann_backends(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let dim = 64;
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("ann_knn");
    for &n in &[2_000usize, 8_000, 20_000] {
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(&data);
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(flat.search(&query, K)))
        });

        let mut hnsw = HnswIndex::new(dim, HnswConfig::default());
        hnsw.add_batch(&data);
        group.bench_with_input(BenchmarkId::new("hnsw", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(hnsw.search(&query, K)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_join_search, bench_ann_backends
}
criterion_main!(benches);
