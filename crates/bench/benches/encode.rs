//! Criterion microbenchmarks for the embedding path: contextualization,
//! static embeddings, the neural encoder (both variants), and the
//! fine-tuning step cost.

use criterion::{criterion_group, criterion_main, Criterion};

use deepjoin::text::{Textizer, TransformOption};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig};
use deepjoin_nn::matrix::Matrix;
use deepjoin_nn::mnr::MnrLoss;

fn bench_encode_paths(c: &mut Criterion) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 300, 7));
    let (repo, _) = corpus.to_repository();
    let column = repo.columns()[0].clone();
    let textizer = Textizer::new(TransformOption::TitleColnameStatCol, 48);
    let text = textizer.transform(&column);

    let mut group = c.benchmark_group("encode");
    group.bench_function("textize_column", |b| {
        b.iter(|| std::hint::black_box(textizer.transform(&column)))
    });

    let ngram = NgramEmbedder::new(NgramConfig::default());
    group.bench_function("ngram_embed_cell", |b| {
        b.iter(|| std::hint::black_box(ngram.embed_cell("fort kelso 123")))
    });

    let vocab = deepjoin_lake::Vocabulary::build([text.as_str()], 1);
    let tokens = vocab.encode(&text);
    let distil = ColumnEncoder::new(EncoderConfig::distil_lite(8_192, 64, 1));
    let mp = ColumnEncoder::new(EncoderConfig::mp_lite(8_192, 64, 1));
    group.bench_function("encoder_distil_lite", |b| {
        b.iter(|| std::hint::black_box(distil.encode(&tokens)))
    });
    group.bench_function("encoder_mp_lite", |b| {
        b.iter(|| std::hint::black_box(mp.encode(&tokens)))
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut encoder = ColumnEncoder::new(EncoderConfig::mp_lite(8_192, 64, 2));
    let seqs: Vec<Vec<u32>> = (0..32)
        .map(|i| (0..100).map(|j| (i * 37 + j * 13) % 8_000).collect())
        .collect();
    let loss = MnrLoss::default();

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.bench_function("mnr_batch32_fwd_bwd", |b| {
        b.iter(|| {
            encoder.zero_grad();
            let x = encoder.encode_batch(&seqs);
            let y = x.clone();
            let (_, dx, _dy) = loss.forward(&x, &y);
            encoder.backward(&dx);
            std::hint::black_box(());
        })
    });
    group.bench_function("mnr_loss_only_batch32", |b| {
        let x = Matrix::xavier(32, 64, 5);
        let y = Matrix::xavier(32, 64, 6);
        b.iter(|| std::hint::black_box(loss.forward(&x, &y)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_encode_paths, bench_training_step
}
criterion_main!(benches);
