//! # deepjoin-bench
//!
//! The experiment harness reproducing every table of the DeepJoin
//! evaluation (paper §5). Each `exp_*` binary regenerates one table; this
//! library holds the shared machinery: corpus setup, method construction,
//! accuracy evaluation and table printing. `EXPERIMENTS.md` records
//! paper-vs-measured for every run.
//!
//! Scales are reduced relative to the paper (DESIGN.md §7) and controlled by
//! the `DJ_SCALE` environment variable: `smoke` (seconds, CI), `small`
//! (default, minutes), `full` (tens of minutes).

#![warn(missing_docs)]

pub mod eval;
pub mod methods;
pub mod scale;
pub mod setup;
pub mod table;
pub mod timing;

pub use eval::{eval_equi, eval_semantic, AccuracyRow, Ks};
pub use methods::{MethodSet, SearchFn};
pub use scale::Scale;
pub use setup::{Bench, JoinKind};
