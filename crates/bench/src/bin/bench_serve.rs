//! `bench_serve` — overload-behavior benchmark for the query server.
//!
//! Measures what the admission layer (per-tenant fair queueing, CoDel-style
//! brownout, effort-ladder degradation) buys under load, against an
//! in-process server over a synthetic model:
//!
//! * **capacity probe** — closed-loop clients (one request in flight each)
//!   find the server's sustainable throughput `C`;
//! * **open loop at 1x / 3x / 10x** — paced clients offer a fixed multiple
//!   of `C` and the report records goodput, shed count, and latency
//!   percentiles. Past capacity the server must shed with structured
//!   `Overloaded` errors — never stalls, resets, or garbage frames;
//! * **hot-tenant skew (8:1)** — one hot tenant offers 8 parts of the
//!   load, four cold tenants one part each, at 1x and again at 10x. The
//!   fairness criterion: cold-tenant goodput at 10x retains >= 80% of its
//!   1x value (the hot tenant's own backlog absorbs the overload);
//! * **pipelined depth sweep (DESIGN.md §17)** — closed-loop clients send
//!   windows of tagged queries with D in {1, 4, 16, 64} in flight over a
//!   flat-index server, so the worker packs concurrent queries into waves
//!   and the batched scan pulls each row block through the cache once per
//!   wave. Depth 1 is the single-query baseline; the report records
//!   goodput and the wave-size p50 per depth, and the sweep verifies the
//!   pipelined answers are bit-identical to single-query answers first.
//!
//! Emits a JSON report (schema `bench_serve/v2`, default
//! `BENCH_serve.json`). Run via `scripts/bench.sh serve`.
//!
//! ```text
//! bench_serve [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use deepjoin::model::DeepJoin;
use deepjoin_ann::{Budget, FlatIndex, Metric, VectorIndex};
use deepjoin_serve::{
    BrownoutConfig, Client, ClientError, ErrorCode, Health, Hit, LoadedSnapshot, QueryOutcome,
    QuerySpec, ServeModel, Server, ServerConfig, ServerHandle, WaveQuery,
};

struct Scenario {
    n: usize,
    dim: usize,
    k: usize,
    workers: usize,
    search_repeat: usize,
    probe_conns: usize,
    probe_secs: f64,
    run_secs: f64,
    /// Flat-index corpus for the pipelined sweep: big enough that a
    /// single-query scan is memory-bound (the plane exceeds last-level
    /// cache), so pulling each row block once per *wave* instead of once
    /// per query is a real win, not a cache-resident no-op.
    flat_n: usize,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        // One worker and a corpus big enough that per-query search time
        // dominates: capacity lands in the low thousands of qps, so a few
        // dozen client connections genuinely oversubscribe the server
        // without client-side thread thrash distorting the measurement
        // (CI runners often expose a single core).
        if quick {
            Self {
                n: 24_000,
                dim: 64,
                k: 10,
                workers: 1,
                search_repeat: 8,
                probe_conns: 4,
                probe_secs: 1.0,
                run_secs: 2.0,
                flat_n: 120_000,
            }
        } else {
            Self {
                n: 60_000,
                dim: 64,
                k: 10,
                workers: 1,
                search_repeat: 8,
                probe_conns: 4,
                probe_secs: 3.0,
                run_secs: 5.0,
                flat_n: 240_000,
            }
        }
    }
}

/// A [`ServeModel`] over the synthetic index: the query embedding is a
/// deterministic hash of the query name (the bench measures the serving
/// layer, not the encoder), the search is the real budgeted ladder — so
/// brownout rungs change real work, not a sleep. The search runs
/// `repeat` times per query to emulate production-scale corpus cost:
/// the synthetic index answers in tens of microseconds, which would let
/// framing overhead and client-thread scheduling dominate the
/// measurement on small CI runners.
struct BenchModel {
    model: Arc<DeepJoin>,
    dim: usize,
    repeat: usize,
}

fn query_vector(name: &str, dim: usize) -> Vec<f32> {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        state ^= b as u64;
        state = state.wrapping_mul(0x1000_0000_01b3);
    }
    let mut state = state | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32) / 1000.0 - 1.0
        })
        .collect()
}

impl ServeModel for BenchModel {
    fn indexed_len(&self) -> usize {
        self.model.indexed_len()
    }

    fn health(&self) -> Health {
        Health::Hnsw
    }

    fn query(&self, _cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        let q = query_vector(name, self.dim);
        let mut ladder = self.model.search_embedded_budgeted(&q, k, budget);
        for _ in 1..self.repeat {
            ladder = self.model.search_embedded_budgeted(&q, k, budget);
        }
        QueryOutcome {
            hits: ladder
                .hits
                .into_iter()
                .map(|sc| Hit {
                    id: sc.id.0,
                    score: -sc.score as f32,
                    label: format!("col#{}", sc.id.0),
                })
                .collect(),
            complete: ladder.complete,
            visited: ladder.visited,
            via_fallback: ladder.via_fallback,
        }
    }
}

fn bench_loader(model: Arc<DeepJoin>, dim: usize, repeat: usize) -> deepjoin_serve::Loader {
    Box::new(move |_path| {
        Ok(LoadedSnapshot {
            model: Box::new(BenchModel {
                model: model.clone(),
                dim,
                repeat,
            }),
            warnings: vec![],
        })
    })
}

/// Outcome counts for one load-generation run (merged over all threads).
#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    other_server: AtomicU64,
    /// Transport or protocol failures — responses that were NOT structured.
    unstructured: AtomicU64,
}

/// Closed loop: every connection keeps exactly one request in flight.
/// The aggregate rate is the server's sustainable capacity.
fn capacity_probe(addr: &str, sc: &Scenario) -> f64 {
    let ok = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs_f64(sc.probe_secs);
    std::thread::scope(|s| {
        for t in 0..sc.probe_conns {
            let ok = ok.clone();
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("probe connect");
                let mut i = 0u64;
                while Instant::now() < deadline {
                    let name = format!("probe-{t}-{i}");
                    i += 1;
                    if c.query(&name, &[String::new()], sc.k as u32).is_ok() {
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    ok.load(Ordering::Relaxed) as f64 / sc.probe_secs
}

struct TenantLoad {
    /// Tenant tag; empty = untagged (the server's default lane).
    name: String,
    offered_qps: f64,
    conns: usize,
}

struct RunResult {
    attempted: u64,
    ok: u64,
    shed: u64,
    other_server: u64,
    unstructured: u64,
    p50_ms: f64,
    p99_ms: f64,
    /// Goodput per tenant name.
    per_tenant_ok: Vec<(String, u64)>,
}

/// Open loop: each connection fires on a fixed schedule derived from its
/// tenant's offered rate (a blocked connection catches up rather than
/// skipping ticks, so offered load is honest even when the server slows).
fn open_loop(addr: &str, loads: &[TenantLoad], secs: f64, k: usize) -> RunResult {
    let tally = Tally::default();
    let lat = Mutex::new(Vec::<u64>::new());
    let per_tenant: Vec<(String, AtomicU64)> = loads
        .iter()
        .map(|l| (l.name.clone(), AtomicU64::new(0)))
        .collect();
    let attempted = AtomicU64::new(0);
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(secs);
    std::thread::scope(|s| {
        for (li, load) in loads.iter().enumerate() {
            let per_conn_interval =
                Duration::from_secs_f64(load.conns as f64 / load.offered_qps.max(0.1));
            for ci in 0..load.conns {
                let tally = &tally;
                let lat = &lat;
                let attempted = &attempted;
                let tenant_ok = &per_tenant[li].1;
                let tenant = load.name.clone();
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("load connect");
                    if !tenant.is_empty() {
                        c.set_tenant(Some(&tenant));
                    }
                    let mut tick = start + per_conn_interval.mul_f64(ci as f64 / 7.0 % 1.0);
                    let mut i = 0u64;
                    let mut local_lat = Vec::new();
                    // A shed reply says "retry with backoff"; honoring it is
                    // part of the protocol (and keeps the load generator from
                    // turning rejects into a self-inflicted accept storm).
                    let mut backoff = Duration::ZERO;
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        if now < tick {
                            std::thread::sleep((tick - now).min(Duration::from_millis(50)));
                            continue;
                        }
                        tick += per_conn_interval;
                        attempted.fetch_add(1, Ordering::Relaxed);
                        let name = format!("{tenant}-q{ci}-{i}");
                        i += 1;
                        let sent = Instant::now();
                        match c.query(&name, &[String::new()], k as u32) {
                            Ok(_) => {
                                tally.ok.fetch_add(1, Ordering::Relaxed);
                                tenant_ok.fetch_add(1, Ordering::Relaxed);
                                local_lat.push(sent.elapsed().as_micros() as u64);
                                backoff = Duration::ZERO;
                            }
                            Err(ClientError::Server(e)) if e.code == ErrorCode::Overloaded => {
                                tally.shed.fetch_add(1, Ordering::Relaxed);
                                backoff = (backoff * 2)
                                    .clamp(Duration::from_millis(2), Duration::from_millis(32));
                                std::thread::sleep(backoff);
                            }
                            Err(ClientError::Server(_)) => {
                                tally.other_server.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                tally.unstructured.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    lat.lock().unwrap().extend(local_lat);
                });
            }
        }
    });
    let mut samples = lat.into_inner().unwrap();
    samples.sort_unstable();
    let pct = |p: f64| -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let idx = ((samples.len() - 1) as f64 * p) as usize;
        samples[idx] as f64 / 1000.0
    };
    RunResult {
        attempted: attempted.load(Ordering::Relaxed),
        ok: tally.ok.load(Ordering::Relaxed),
        shed: tally.shed.load(Ordering::Relaxed),
        other_server: tally.other_server.load(Ordering::Relaxed),
        unstructured: tally.unstructured.load(Ordering::Relaxed),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        per_tenant_ok: per_tenant
            .into_iter()
            .map(|(n, c)| (n, c.into_inner()))
            .collect(),
    }
}

/// The skew mix: one hot tenant at 8 parts, four cold tenants at 1 part
/// each, totalling `total_qps`. Connection counts scale with the offered
/// multiple — each connection has one request in flight, so concurrency
/// (not just pacing) must exceed the queue for overload to be real.
fn skew_loads(total_qps: f64, hot_conns: usize, cold_conns: usize) -> Vec<TenantLoad> {
    let part = total_qps / 12.0;
    let mut loads = vec![TenantLoad {
        name: "hot".to_string(),
        offered_qps: 8.0 * part,
        conns: hot_conns,
    }];
    for i in 0..4 {
        loads.push(TenantLoad {
            name: format!("cold{i}"),
            offered_qps: part,
            conns: cold_conns,
        });
    }
    loads
}

fn spawn_server(sc: &Scenario, model: Arc<DeepJoin>) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: sc.workers,
            // A queue deep enough that a sustained flood produces real
            // sojourn (not instant sheds), shallow enough that sojourn
            // crosses the brownout target well before client timeouts.
            max_inflight: 16,
            max_conns: 512,
            brownout: Some(BrownoutConfig {
                target: Duration::from_millis(4),
                window: Duration::from_millis(20),
            }),
            ..ServerConfig::default()
        },
        bench_loader(model, sc.dim, sc.search_repeat),
    )
    .expect("server start");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// A [`ServeModel`] over a raw flat index, for the pipelined sweep: the
/// single-query path runs one budgeted scan per query, and the wave path
/// runs ONE rows-outer batched scan for the whole wave — each vector
/// block is pulled through the cache once per wave instead of once per
/// query, which is exactly the amortization the sweep measures. The ann
/// crate pins that both paths return bit-identical hits.
struct FlatBenchModel {
    index: FlatIndex,
    dim: usize,
}

impl ServeModel for FlatBenchModel {
    fn indexed_len(&self) -> usize {
        self.index.len()
    }

    fn health(&self) -> Health {
        Health::Hnsw
    }

    fn query(&self, _cells: &[String], name: &str, k: usize, budget: &Budget) -> QueryOutcome {
        let q = query_vector(name, self.dim);
        let r = self.index.search_budgeted(&q, k, budget);
        QueryOutcome {
            hits: r
                .hits
                .into_iter()
                .map(|n| Hit {
                    id: n.id,
                    score: n.distance,
                    label: format!("col#{}", n.id),
                })
                .collect(),
            complete: r.complete,
            visited: r.visited,
            via_fallback: false,
        }
    }

    fn query_batch(&self, wave: &[WaveQuery<'_>], budget: &Budget) -> Vec<QueryOutcome> {
        // Mixed-k waves fall back to the per-query loop; the sweep always
        // sends a uniform k so the batched scan is what gets measured.
        let Some(k) = wave.first().map(|w| w.k) else {
            return Vec::new();
        };
        if wave.iter().any(|w| w.k != k) {
            return wave
                .iter()
                .map(|w| self.query(w.cells, w.name, w.k, budget))
                .collect();
        }
        let mut flat = Vec::with_capacity(wave.len() * self.dim);
        for w in wave {
            flat.extend_from_slice(&query_vector(w.name, self.dim));
        }
        self.index
            .search_budgeted_batch_filtered(&flat, k, budget, None)
            .into_iter()
            .map(|r| QueryOutcome {
                hits: r
                    .hits
                    .into_iter()
                    .map(|n| Hit {
                        id: n.id,
                        score: n.distance,
                        label: format!("col#{}", n.id),
                    })
                    .collect(),
                complete: r.complete,
                visited: r.visited,
                via_fallback: false,
            })
            .collect()
    }
}

fn flat_loader(n: usize, dim: usize, seed: u64) -> deepjoin_serve::Loader {
    Box::new(move |_path| {
        let mut index = FlatIndex::new(dim, Metric::L2);
        let mut state = seed | 1;
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            for v in row.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *v = ((state % 2000) as f32) / 1000.0 - 1.0;
            }
            index.add(&row);
        }
        Ok(LoadedSnapshot {
            model: Box::new(FlatBenchModel { index, dim }),
            warnings: vec![],
        })
    })
}

/// Pin that pipelined answers are bit-identical to single-query answers
/// on the sweep server before any throughput is measured.
fn verify_pipelined_bit_identity(addr: &str, k: usize) -> bool {
    let cells = [String::new()];
    let names: Vec<String> = (0..32).map(|i| format!("verify-{i}")).collect();
    let mut c = Client::connect(addr).expect("verify connect");
    let singles: Vec<_> = names
        .iter()
        .map(|n| c.query(n, &cells, k as u32).expect("verify single"))
        .collect();
    let specs: Vec<QuerySpec<'_>> = names
        .iter()
        .map(|n| QuerySpec {
            name: n,
            cells: &cells,
            k: k as u32,
        })
        .collect();
    let piped = c.query_pipelined(&specs, 16).expect("verify pipelined");
    piped.iter().zip(&singles).all(|(p, s)| {
        p.as_ref().map(|r| r.hits == s.hits).unwrap_or(false)
    })
}

struct PipelinedPoint {
    depth: usize,
    goodput_qps: f64,
    wave_size_p50: usize,
    shed: u64,
}

/// Closed loop at one pipeline depth: `conns` connections each keep a
/// window of `depth` tagged queries in flight. Depth 1 degenerates to
/// the single-query baseline over the same connections and server.
fn pipelined_point(
    addr: &str,
    handle: &ServerHandle,
    depth: usize,
    conns: usize,
    secs: f64,
    k: usize,
) -> PipelinedPoint {
    let before = handle.wave_size_histogram();
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    std::thread::scope(|s| {
        for t in 0..conns {
            let ok = &ok;
            let shed = &shed;
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("pipelined connect");
                let cells = [String::new()];
                let mut i = 0u64;
                while Instant::now() < deadline {
                    // Unique names per window: no accidental dedup, every
                    // member is real encoder + search work.
                    let names: Vec<String> =
                        (0..depth).map(|j| format!("p{t}-{i}-{j}")).collect();
                    i += 1;
                    let specs: Vec<QuerySpec<'_>> = names
                        .iter()
                        .map(|n| QuerySpec {
                            name: n,
                            cells: &cells,
                            k: k as u32,
                        })
                        .collect();
                    match c.query_pipelined(&specs, depth) {
                        Ok(results) => {
                            for r in &results {
                                if r.is_ok() {
                                    ok.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Err(_) => break,
                    }
                }
            });
        }
    });
    let after = handle.wave_size_histogram();
    // p50 wave size over the waves formed during THIS point (histogram
    // delta): slot i counts waves of i+1 members.
    let delta: Vec<u64> = after
        .iter()
        .zip(before.iter().chain(std::iter::repeat(&0)))
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let total: u64 = delta.iter().sum();
    let mut wave_size_p50 = 1;
    let mut cum = 0u64;
    for (i, count) in delta.iter().enumerate() {
        cum += count;
        if cum * 2 >= total.max(1) {
            wave_size_p50 = i + 1;
            break;
        }
    }
    PipelinedPoint {
        depth,
        goodput_qps: ok.load(Ordering::Relaxed) as f64 / secs,
        wave_size_p50,
        shed: shed.load(Ordering::Relaxed),
    }
}

fn scenario_json(name: &str, offered: f64, secs: f64, r: &RunResult) -> String {
    format!(
        concat!(
            "{{ \"name\": \"{}\", \"offered_qps\": {:.1}, \"attempted\": {}, ",
            "\"goodput_qps\": {:.1}, \"shed\": {}, \"other_server_errors\": {}, ",
            "\"unstructured\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3} }}"
        ),
        name,
        offered,
        r.attempted,
        r.ok as f64 / secs,
        r.shed,
        r.other_server,
        r.unstructured,
        r.p50_ms,
        r.p99_ms,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let sc = Scenario::new(quick);
    eprintln!(
        "bench_serve: n={} dim={} workers={} ({})",
        sc.n,
        sc.dim,
        sc.workers,
        if quick { "quick" } else { "full" }
    );
    let model = Arc::new(DeepJoin::synthetic(sc.n, sc.dim, 0x5E12));
    let (addr, handle, join) = spawn_server(&sc, model);

    let capacity = capacity_probe(&addr, &sc).max(1.0);
    eprintln!("capacity probe: {capacity:.0} qps sustained");

    let mut scenarios = Vec::new();
    let mut total_unstructured = 0u64;
    for (mult, conns) in [(1.0f64, 8), (3.0, 16), (10.0, 32)] {
        let offered = capacity * mult;
        let loads = [TenantLoad {
            name: String::new(),
            offered_qps: offered,
            conns,
        }];
        let r = open_loop(&addr, &loads, sc.run_secs, sc.k);
        eprintln!(
            "open {mult:.0}x: offered {offered:.0} qps -> goodput {:.0} qps, {} shed, {} unstructured, p99 {:.1} ms",
            r.ok as f64 / sc.run_secs,
            r.shed,
            r.unstructured,
            r.p99_ms
        );
        total_unstructured += r.unstructured;
        scenarios.push(scenario_json(
            &format!("open_{}x", mult as u32),
            offered,
            sc.run_secs,
            &r,
        ));
    }

    // Skew: cold-tenant goodput at 1x is the fairness baseline; at 10x the
    // hot tenant floods and the cold tenants must keep their service.
    let base = open_loop(&addr, &skew_loads(capacity, 8, 2), sc.run_secs, sc.k);
    let overload = open_loop(&addr, &skew_loads(capacity * 10.0, 24, 6), sc.run_secs, sc.k);
    total_unstructured += base.unstructured + overload.unstructured;
    let cold_ok = |r: &RunResult| -> u64 {
        r.per_tenant_ok
            .iter()
            .filter(|(n, _)| n.starts_with("cold"))
            .map(|(_, c)| c)
            .sum()
    };
    let cold_1x = cold_ok(&base) as f64 / sc.run_secs;
    let cold_10x = cold_ok(&overload) as f64 / sc.run_secs;
    let retention = if cold_1x > 0.0 { cold_10x / cold_1x } else { 0.0 };
    eprintln!(
        "skew 8:1 at 10x: cold goodput {cold_10x:.0} qps vs {cold_1x:.0} qps at 1x ({:.0}% retained)",
        retention * 100.0
    );

    // Server-side accounting, for the report and as a sanity check that
    // the overload machinery actually engaged.
    let stats = handle.stats();
    let overload_stats = stats.overload.clone().unwrap_or_default();

    handle.shutdown();
    // Unblock the accept loop promptly (it polls every 25 ms).
    join.join().expect("server join");

    // Pipelined depth sweep over fresh flat-index servers: waves form
    // from concurrent tagged queries and the batched scan amortizes row
    // blocks across the wave. The baseline is the SAME corpus behind a
    // wave_width=1 server — the pre-wave one-pop-one-search loop — so the
    // speedup isolates what wave formation + the batched scan buy.
    let spawn_flat = |wave_width: usize| {
        let server = Server::start(
            ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: sc.workers,
                max_inflight: 1024,
                wave_width,
                ..ServerConfig::default()
            },
            flat_loader(sc.flat_n, sc.dim, 0x5E12),
        )
        .expect("flat server start");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run().expect("flat server run"));
        (addr, handle, join)
    };

    let (base_addr, base_handle, base_join) = spawn_flat(1);
    let single_goodput = {
        let p = pipelined_point(&base_addr, &base_handle, 1, 8, sc.run_secs, sc.k);
        eprintln!(
            "single-query baseline (wave_width 1): goodput {:.0} qps",
            p.goodput_qps
        );
        p.goodput_qps.max(1.0)
    };
    base_handle.shutdown();
    base_join.join().expect("baseline server join");

    let (flat_addr, flat_handle, flat_join) = spawn_flat(64);
    let bit_identical = verify_pipelined_bit_identity(&flat_addr, sc.k);
    assert!(
        bit_identical,
        "pipelined answers must be bit-identical to single-query answers"
    );
    let depths = [1usize, 4, 16, 64];
    let mut points = Vec::new();
    for &depth in &depths {
        let p = pipelined_point(&flat_addr, &flat_handle, depth, 8, sc.run_secs, sc.k);
        eprintln!(
            "pipelined depth {depth}: goodput {:.0} qps, wave p50 {}, {} shed",
            p.goodput_qps, p.wave_size_p50, p.shed
        );
        points.push(p);
    }
    flat_handle.shutdown();
    flat_join.join().expect("flat server join");
    let batched = points.last().expect("sweep points");
    let batched_goodput = batched.goodput_qps;
    let wave_size_p50 = batched.wave_size_p50;
    eprintln!(
        "pipelined speedup at depth {}: {:.2}x over the single-query baseline",
        batched.depth,
        batched_goodput / single_goodput
    );

    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{ \"depth\": {}, \"goodput_qps\": {:.1}, \"wave_size_p50\": {}, \"shed\": {} }}",
                p.depth, p.goodput_qps, p.wave_size_p50, p.shed
            )
        })
        .collect();
    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"schema\": \"bench_serve/v2\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"corpus\": {{ \"n\": {n}, \"dim\": {dim}, \"nq\": {nq}, \"k\": {k} }},\n",
            "  \"threads\": {workers},\n",
            "  \"capacity_qps\": {cap:.1},\n",
            "  \"scenarios\": [\n    {s0},\n    {s1},\n    {s2}\n  ],\n",
            "  \"pipelined\": {{\n",
            "    \"points\": [\n      {p0},\n      {p1},\n      {p2},\n      {p3}\n    ],\n",
            "    \"single_goodput_qps\": {sgp:.1},\n",
            "    \"batched_goodput\": {bgp:.1},\n",
            "    \"batched_speedup\": {bsp:.3},\n",
            "    \"wave_size_p50\": {wp50},\n",
            "    \"bit_identical\": {bitid}\n",
            "  }},\n",
            "  \"skew\": {{\n",
            "    \"hot_tenants\": 1, \"cold_tenants\": 4, \"ratio\": 8,\n",
            "    \"cold_goodput_1x_qps\": {c1:.1},\n",
            "    \"cold_goodput_10x_qps\": {c10:.1},\n",
            "    \"cold_retention\": {ret:.3},\n",
            "    \"hot_shed\": {hshed}\n",
            "  }},\n",
            "  \"server\": {{\n",
            "    \"accepted\": {acc}, \"shed\": {shed}, \"bucket_shed\": {bshed},\n",
            "    \"displaced\": {disp}, \"codel_shed\": {cshed},\n",
            "    \"brownout_steps_down\": {down}, \"brownout_steps_up\": {up},\n",
            "    \"brownout_answers\": {bans}\n",
            "  }},\n",
            "  \"unstructured_responses\": {unstr}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        n = sc.n,
        dim = sc.dim,
        nq = 16,
        k = sc.k,
        workers = sc.workers,
        cap = capacity,
        s0 = scenarios[0],
        s1 = scenarios[1],
        s2 = scenarios[2],
        p0 = point_json[0],
        p1 = point_json[1],
        p2 = point_json[2],
        p3 = point_json[3],
        sgp = single_goodput,
        bgp = batched_goodput,
        bsp = batched_goodput / single_goodput,
        wp50 = wave_size_p50,
        bitid = bit_identical,
        c1 = cold_1x,
        c10 = cold_10x,
        ret = retention,
        hshed = overload.shed,
        acc = stats.accepted,
        shed = stats.shed,
        bshed = overload_stats.bucket_shed,
        disp = overload_stats.displaced,
        cshed = overload_stats.codel_shed,
        down = overload_stats.brownout_steps_down,
        up = overload_stats.brownout_steps_up,
        bans = overload_stats.brownout_answers,
        unstr = total_unstructured,
    );
    std::fs::write(&out_path, &json).expect("write report");
    eprintln!("wrote {out_path}");

    assert_eq!(
        total_unstructured, 0,
        "every response under overload must be structured"
    );
}
