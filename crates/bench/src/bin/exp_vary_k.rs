//! Table 14: query processing time versus k (both profiles, both join
//! types), on the full-size test repository.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_vary_k`

use deepjoin::baselines::{EmbeddingRetriever, FastTextEmbedder};
use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::table::print_timing_table;
use deepjoin_bench::timing::time_per_query;
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

const KS: [usize; 5] = [10, 20, 30, 40, 50];
const TAU: f64 = 0.9;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table 14 reproduction — processing time per query vs k ({})",
        scale.label()
    );
    let header: Vec<String> = KS.iter().map(|k| format!("k={k}")).collect();

    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0xFA57);
        let queries: Vec<Column> = bench.queries.iter().map(|(q, _)| q.clone()).collect();

        eprintln!("  building equi indexes…");
        let lsh = LshEnsembleIndex::build(
            &bench.repo,
            LshEnsembleConfig {
                num_perm: 32,
                ..Default::default()
            },
        );
        let josie = JosieIndex::build(&bench.repo);
        let ft = EmbeddingRetriever::build(
            FastTextEmbedder {
                ngram: NgramEmbedder::new(NgramConfig {
                    dim: bench.scale.dim,
                    ..NgramConfig::default()
                }),
                textizer: deepjoin::text::Textizer::new(TransformOption::TitleColnameStatCol, 48),
            },
            &bench.repo,
            Default::default(),
        );
        eprintln!("  training DeepJoin (equi)…");
        let dj = bench.train_deepjoin(
            Variant::MpLite,
            JoinKind::Equi,
            TransformOption::TitleColnameStatCol,
            0.2,
        );

        let mut rows: Vec<(String, Vec<f64>)> = vec![
            ("LSH Ensemble".into(), Vec::new()),
            ("JOSIE".into(), Vec::new()),
            ("fastText".into(), Vec::new()),
            ("DeepJoin (CPU)".into(), Vec::new()),
        ];
        for &k in &KS {
            rows[0].1.push(time_per_query(&queries, |q| {
                std::hint::black_box(lsh.search(q, k));
            }));
            rows[1].1.push(time_per_query(&queries, |q| {
                std::hint::black_box(josie.search(q, k));
            }));
            rows[2].1.push(time_per_query(&queries, |q| {
                std::hint::black_box(ft.search(q, k));
            }));
            rows[3].1.push(time_per_query(&queries, |q| {
                std::hint::black_box(dj.search(q, k));
            }));
        }
        print_timing_table(
            &format!("{profile:?}, equi-joins — total ms/query"),
            &header,
            &rows,
        );

        eprintln!("  building semantic indexes…");
        let embedded: Vec<_> = bench
            .repo
            .columns()
            .iter()
            .map(|c| bench.space.embed_column(c))
            .collect();
        let pexeso = PexesoIndex::build(&embedded, PexesoConfig::default());
        eprintln!("  training DeepJoin (semantic)…");
        let dj_sem = bench.train_deepjoin(
            Variant::MpLite,
            JoinKind::Semantic(TAU),
            TransformOption::TitleColnameStatCol,
            0.3,
        );
        let mut rows: Vec<(String, Vec<f64>)> = vec![
            ("PEXESO".into(), Vec::new()),
            ("DeepJoin (CPU)".into(), Vec::new()),
        ];
        for &k in &KS {
            rows[0].1.push(time_per_query(&queries, |q| {
                let qv = bench.space.embed_column(q);
                std::hint::black_box(pexeso.search(&qv, TAU, k));
            }));
            rows[1].1.push(time_per_query(&queries, |q| {
                std::hint::black_box(dj_sem.search(q, k));
            }));
        }
        print_timing_table(
            &format!("{profile:?}, semantic joins — total ms/query"),
            &header,
            &rows,
        );
    }

    println!("\nPaper (Table 14): DeepJoin's time is nearly flat in k (encoding dominates);");
    println!("exact methods' time grows mildly; the speedup over them widens with k.");
}
