//! Tables 3-6: accuracy of equi-joins (Table 3) and semantic joins at
//! τ = 0.9 / 0.8 / 0.7 (Tables 4 / 5 / 6), on both corpus profiles.
//!
//! Usage:
//!   cargo run --release -p deepjoin-bench --bin exp_accuracy -- equi
//!   cargo run --release -p deepjoin-bench --bin exp_accuracy -- semantic 0.9
//!
//! Scale via `DJ_SCALE=smoke|small|full`.

use deepjoin_bench::eval::{eval_equi, eval_semantic, SemanticEval, KS};
use deepjoin_bench::table::print_accuracy_table;
use deepjoin_bench::{Bench, MethodSet, Scale};
use deepjoin_lake::corpus::CorpusProfile;

/// Paper Table 3 reference rows (Webtable, precision@k then NDCG@k).
const PAPER_T3_WEB: &[(&str, &[f64], &[f64])] = &[
    ("LSH Ensemble", &[0.634, 0.647, 0.656, 0.676, 0.688], &[0.715, 0.714, 0.701, 0.702, 0.698]),
    ("fastText", &[0.680, 0.726, 0.752, 0.754, 0.773], &[0.731, 0.721, 0.743, 0.748, 0.764]),
    ("BERT", &[0.652, 0.695, 0.712, 0.722, 0.729], &[0.698, 0.713, 0.708, 0.707, 0.708]),
    ("MPNet", &[0.610, 0.629, 0.644, 0.649, 0.654], &[0.674, 0.677, 0.678, 0.680, 0.677]),
    ("TaBERT", &[0.622, 0.637, 0.645, 0.656, 0.671], &[0.694, 0.685, 0.690, 0.693, 0.691]),
    ("MLP", &[0.683, 0.719, 0.755, 0.758, 0.778], &[0.737, 0.735, 0.748, 0.755, 0.769]),
    ("DeepJoin-DistilLite", &[0.702, 0.741, 0.775, 0.793, 0.805], &[0.744, 0.752, 0.758, 0.761, 0.788]),
    ("DeepJoin-MPLite", &[0.732, 0.775, 0.791, 0.812, 0.832], &[0.768, 0.786, 0.799, 0.803, 0.822]),
];

/// Paper Table 3 reference rows (Wikitable).
const PAPER_T3_WIKI: &[(&str, &[f64], &[f64])] = &[
    ("LSH Ensemble", &[0.480, 0.450, 0.466, 0.470, 0.474], &[0.714, 0.688, 0.681, 0.674, 0.672]),
    ("fastText", &[0.574, 0.551, 0.581, 0.605, 0.621], &[0.799, 0.794, 0.791, 0.793, 0.791]),
    ("BERT", &[0.436, 0.460, 0.497, 0.520, 0.541], &[0.719, 0.721, 0.731, 0.736, 0.740]),
    ("MPNet", &[0.442, 0.464, 0.504, 0.524, 0.543], &[0.711, 0.721, 0.729, 0.735, 0.736]),
    ("TaBERT", &[0.431, 0.445, 0.488, 0.520, 0.539], &[0.701, 0.708, 0.732, 0.725, 0.737]),
    ("MLP", &[0.578, 0.576, 0.585, 0.610, 0.619], &[0.801, 0.802, 0.800, 0.804, 0.802]),
    ("DeepJoin-DistilLite", &[0.588, 0.593, 0.612, 0.635, 0.655], &[0.813, 0.822, 0.825, 0.823, 0.827]),
    ("DeepJoin-MPLite", &[0.614, 0.622, 0.641, 0.666, 0.678], &[0.821, 0.824, 0.830, 0.833, 0.833]),
];

/// Paper Table 4 (semantic τ=0.9, Webtable / Wikitable).
const PAPER_T4_WEB: &[(&str, &[f64], &[f64])] = &[
    ("LSH Ensemble", &[0.696, 0.670, 0.613, 0.554, 0.508], &[0.578, 0.599, 0.615, 0.618, 0.626]),
    ("fastText", &[0.842, 0.917, 0.945, 0.957, 0.964], &[0.575, 0.588, 0.631, 0.647, 0.647]),
    ("DeepJoin-DistilLite", &[0.861, 0.926, 0.951, 0.961, 0.966], &[0.610, 0.622, 0.641, 0.676, 0.671]),
    ("DeepJoin-MPLite", &[0.874, 0.934, 0.954, 0.963, 0.970], &[0.640, 0.657, 0.664, 0.685, 0.680]),
];
const PAPER_T4_WIKI: &[(&str, &[f64], &[f64])] = &[
    ("LSH Ensemble", &[0.578, 0.611, 0.581, 0.570, 0.567], &[0.633, 0.655, 0.660, 0.669, 0.678]),
    ("fastText", &[0.543, 0.610, 0.645, 0.669, 0.721], &[0.353, 0.353, 0.358, 0.370, 0.371]),
    ("DeepJoin-DistilLite", &[0.788, 0.835, 0.876, 0.880, 0.913], &[0.803, 0.807, 0.810, 0.826, 0.831]),
    ("DeepJoin-MPLite", &[0.813, 0.881, 0.889, 0.889, 0.936], &[0.814, 0.820, 0.833, 0.842, 0.852]),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let join = args.get(1).map(String::as_str).unwrap_or("equi").to_string();
    let tau: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let scale = Scale::from_env();

    match join.as_str() {
        "equi" => run_equi(scale),
        "semantic" => run_semantic(scale, tau),
        other => {
            eprintln!("unknown join type '{other}' (use 'equi' or 'semantic <tau>')");
            std::process::exit(2);
        }
    }
}

fn run_equi(scale: Scale) {
    println!("Table 3 reproduction — accuracy of equi-joins ({})", scale.label());
    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0x7AB3);
        let methods = MethodSet::equi_lineup(&bench);
        eprintln!("[{profile:?}] evaluating…");
        let rows = eval_equi(&bench, &methods.methods, &KS);
        let paper = match profile {
            CorpusProfile::Webtable => PAPER_T3_WEB,
            CorpusProfile::Wikitable => PAPER_T3_WIKI,
        };
        print_accuracy_table(
            &format!("Equi-joins, {profile:?} (paper Table 3)"),
            &KS,
            &rows,
            paper,
        );
    }
}

fn run_semantic(scale: Scale, tau: f64) {
    let table_no = match tau {
        t if (t - 0.9).abs() < 1e-9 => 4,
        t if (t - 0.8).abs() < 1e-9 => 5,
        _ => 6,
    };
    println!(
        "Table {table_no} reproduction — accuracy of semantic joins, tau={tau} ({})",
        scale.label()
    );
    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0x7AB4);
        let sem = SemanticEval::build(&bench);
        let methods = MethodSet::semantic_lineup(&bench, tau, 0.3);
        eprintln!("[{profile:?}] evaluating…");
        let rows = eval_semantic(&bench, &sem, &methods.methods, tau, &KS);
        let paper: &[(&str, &[f64], &[f64])] = if table_no == 4 {
            match profile {
                CorpusProfile::Webtable => PAPER_T4_WEB,
                CorpusProfile::Wikitable => PAPER_T4_WIKI,
            }
        } else {
            &[]
        };
        print_accuracy_table(
            &format!("Semantic joins tau={tau}, {profile:?} (paper Table {table_no})"),
            &KS,
            &rows,
            paper,
        );
    }
}
