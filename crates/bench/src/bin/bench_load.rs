//! `bench_load` — artifact cold-start and hot-reload benchmark.
//!
//! Measures what the mmap-backed aligned (v2) layout buys at serve
//! startup, on a production-shaped artifact (default 200k x 128d, every
//! section present: model core, f32 vector plane, SQ8 plane, HNSW graph):
//!
//! * **v1-heap** — the legacy un-sectioned `DJM1` artifact, fully decoded
//!   onto the heap (the pre-aligned-layout status quo);
//! * **v2-heap** — the aligned container decoded onto the heap
//!   (`DEEPJOIN_MMAP=0`);
//! * **v2-mmap first open** — the aligned container mapped zero-copy with
//!   the full per-section CRC sweep (no `.stamp` sidecar yet);
//! * **v2-mmap restart** — the same open with the sidecar present: the
//!   stamp-trusted remap path a serve restart over an unchanged artifact
//!   takes. This is the headline `cold_s_v2_mmap` number.
//!
//! Each mode runs in a **child process** so peak RSS (`VmHWM`) is per-mode
//! and every load starts from a fresh address space. The page cache stays
//! warm across modes — that is the serve-restart scenario the bench
//! models, and it favors no mode (all modes read the same bytes). The
//! restart child also reloads the artifact a second time in-process: the
//! in-process remap path hot reload takes, reported as `hot_reload_ms`.
//!
//! Emits a JSON report (schema `bench_load/v1`, default `BENCH_load.json`).
//! Run via `scripts/bench.sh load`.
//!
//! ```text
//! bench_load [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use deepjoin::model::DeepJoin;
use deepjoin::persist::{encode_model_v1, load_model_path, save_model};

struct Scenario {
    n: usize,
    dim: usize,
    nq: usize,
    k: usize,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                n: 10_000,
                dim: 32,
                nq: 8,
                k: 10,
            }
        } else {
            // ~102 MB of f32 vectors plus the SQ8 plane and graph: big
            // enough that heap decode cost (allocate + copy + rebuild) is
            // unmistakable against the O(sections) mmap path.
            Self {
                n: 200_000,
                dim: 128,
                nq: 8,
                k: 10,
            }
        }
    }
}

/// Peak resident set of this process in KiB (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// Child mode: load the artifact once (timed), optionally reload it
/// (the stamp-validated remap path), run a few sanity queries, and print
/// a single JSON line for the parent to parse.
fn run_child(path: &Path, reload: bool, sc: &Scenario) {
    let started = Instant::now();
    let loaded = load_model_path(path).expect("child load");
    let cold_s = started.elapsed().as_secs_f64();

    let hot_ms = if reload {
        let t = Instant::now();
        let again = load_model_path(path).expect("child reload");
        let ms = t.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(again.model.indexed_len(), loaded.model.indexed_len());
        ms
    } else {
        -1.0
    };

    // A few queries so a load that returned a broken index cannot report
    // a (meaningless) fast time.
    let mut hits = 0usize;
    for qi in 0..sc.nq {
        let q: Vec<f32> = (0..sc.dim)
            .map(|d| ((qi * 31 + d * 7) % 13) as f32 / 13.0 - 0.5)
            .collect();
        hits += loaded.model.search_embedded(&q, sc.k).len();
    }
    assert!(hits > 0, "loaded index answered no queries");

    println!(
        "{{ \"cold_s\": {:.6}, \"hot_ms\": {:.3}, \"vmhwm_kb\": {}, \"indexed\": {} }}",
        cold_s,
        hot_ms,
        peak_rss_kb(),
        loaded.model.indexed_len()
    );
}

/// Extract `"key": <number>` from the child's one-line JSON.
fn field(json: &str, key: &str) -> f64 {
    let tag = format!("\"{key}\":");
    let at = json.find(&tag).unwrap_or_else(|| panic!("no {key} in {json}"));
    let rest = &json[at + tag.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key} in {json}"));
    rest[..end].trim().parse().expect("child JSON number")
}

struct ModeResult {
    cold_s: f64,
    hot_ms: f64,
    vmhwm_kb: u64,
}

/// Run one mode in a child process with the mmap toggle set accordingly.
fn run_mode(path: &Path, mmap: bool, reload: bool, sc: &Scenario) -> ModeResult {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--child")
        .arg(path)
        .arg(if sc.n >= 100_000 { "--full-shape" } else { "--quick" })
        .env("DEEPJOIN_MMAP", if mmap { "1" } else { "0" });
    if reload {
        cmd.arg("--reload");
    }
    let out = cmd.output().expect("spawn child");
    assert!(
        out.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).expect("child stdout");
    ModeResult {
        cold_s: field(&json, "cold_s"),
        hot_ms: field(&json, "hot_ms"),
        vmhwm_kb: field(&json, "vmhwm_kb") as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    if let Some(i) = args.iter().position(|a| a == "--child") {
        let path = PathBuf::from(args.get(i + 1).expect("--child PATH"));
        let sc = Scenario::new(!args.iter().any(|a| a == "--full-shape"));
        run_child(&path, args.iter().any(|a| a == "--reload"), &sc);
        return;
    }

    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_load.json".to_string());

    let sc = Scenario::new(quick);
    eprintln!(
        "bench_load: n={} dim={} ({})",
        sc.n,
        sc.dim,
        if quick { "quick" } else { "full" }
    );

    let mut model = DeepJoin::synthetic(sc.n, sc.dim, 0xB0A7);
    assert!(model.quantize_sq8(), "synthetic model must quantize");

    let dir = std::env::temp_dir().join(format!("dj-bench-load-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    let v1_path = dir.join("model-v1.djm");
    let v2_path = dir.join("model-v2.djar");
    let v1_bytes = encode_model_v1(&model, true);
    let v2_bytes = save_model(&model, true);
    // sync_all so background writeback of the quarter-GB just written
    // cannot stall the timed loads (one-CPU machines feel this hard).
    for (path, bytes) in [(&v1_path, &v1_bytes), (&v2_path, &v2_bytes)] {
        std::fs::write(path, bytes).expect("write artifact");
        std::fs::File::open(path).and_then(|f| f.sync_all()).expect("sync artifact");
    }
    eprintln!(
        "artifacts: v1 {} bytes, v2 {} bytes",
        v1_bytes.len(),
        v2_bytes.len()
    );
    drop(model);

    // Warm the page cache identically for every mode before timing.
    std::hint::black_box(std::fs::read(&v1_path).unwrap().len());
    std::hint::black_box(std::fs::read(&v2_path).unwrap().len());

    let v1_heap = run_mode(&v1_path, false, false, &sc);
    let v2_heap = run_mode(&v2_path, false, false, &sc);
    // First mapped open: full CRC sweep, leaves the .stamp sidecar behind.
    let v2_first = run_mode(&v2_path, true, false, &sc);
    let sidecar = dir.join("model-v2.djar.stamp");
    assert!(sidecar.exists(), "first mapped open must write the stamp sidecar");
    // Restart: a fresh process trusting the sidecar — the headline number.
    let v2_mmap = run_mode(&v2_path, true, true, &sc);

    let speedup = v1_heap.cold_s / v2_mmap.cold_s;

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"schema\": \"bench_load/v1\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"corpus\": {{ \"n\": {n}, \"dim\": {dim}, \"nq\": {nq}, \"k\": {k} }},\n",
            "  \"threads\": 1,\n",
            "  \"artifact_v1_bytes\": {v1b},\n",
            "  \"artifact_v2_bytes\": {v2b},\n",
            "  \"cold_s_v1_heap\": {c1:.4},\n",
            "  \"cold_s_v2_heap\": {c2:.4},\n",
            "  \"first_open_s_v2_mmap\": {c0:.4},\n",
            "  \"cold_s_v2_mmap\": {c3:.4},\n",
            "  \"peak_rss_kb_v1_heap\": {r1},\n",
            "  \"peak_rss_kb_v2_heap\": {r2},\n",
            "  \"peak_rss_kb_v2_mmap\": {r3},\n",
            "  \"cold_speedup_v2_mmap_vs_v1_heap\": {su:.2},\n",
            "  \"hot_reload_ms\": {hot:.3}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        n = sc.n,
        dim = sc.dim,
        nq = sc.nq,
        k = sc.k,
        v1b = v1_bytes.len(),
        v2b = v2_bytes.len(),
        c1 = v1_heap.cold_s,
        c2 = v2_heap.cold_s,
        c0 = v2_first.cold_s,
        c3 = v2_mmap.cold_s,
        r1 = v1_heap.vmhwm_kb,
        r2 = v2_heap.vmhwm_kb,
        r3 = v2_mmap.vmhwm_kb,
        su = speedup,
        hot = v2_mmap.hot_ms,
    );
    std::fs::write(&out_path, &json).expect("write report");
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "cold start: v1-heap {:.3}s, v2-heap {:.3}s, v2-mmap first {:.3}s, \
         v2-mmap restart {:.3}s ({speedup:.1}x); \
         hot remap {:.2} ms; peak RSS {} / {} / {} MB",
        v1_heap.cold_s,
        v2_heap.cold_s,
        v2_first.cold_s,
        v2_mmap.cold_s,
        v2_mmap.hot_ms,
        v1_heap.vmhwm_kb / 1024,
        v2_heap.vmhwm_kb / 1024,
        v2_mmap.vmhwm_kb / 1024,
    );
    println!("wrote {out_path}");
}
