//! `bench_quant` — the SQ8 quantized-plane flat-scan benchmark.
//!
//! Measures, in one process, what the SQ8 plane buys on a corpus that
//! does not fit in cache:
//!
//! * **f32**: exact flat scan over the full-precision vector plane;
//! * **sq8**: two-stage scan — int8 surrogate candidate generation over
//!   the quantized codes, then exact f32 rescore of the top
//!   `RESCORE_FACTOR * k` survivors.
//!
//! Both configurations run the identical batched `search_batch` path over
//! the shared pool, so the reported speedup isolates the quantization, not
//! a change in parallelism. Emits a JSON report (schema `bench_quant/v1`,
//! default `BENCH_quant.json`) with QPS, resident vector-plane bytes and
//! recall@k against the exact f32 oracle. Run via `scripts/bench.sh quant`.
//!
//! ```text
//! bench_quant [--quick] [--out PATH] [--threads N]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use deepjoin_ann::distance::Metric;
use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::index::{Neighbor, VectorIndex};
use deepjoin_ann::RESCORE_FACTOR;
use deepjoin_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmark scenario (corpus shape).
struct Scenario {
    n: usize,
    dim: usize,
    nq: usize,
    k: usize,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                n: 5_000,
                dim: 32,
                nq: 40,
                k: 10,
            }
        } else {
            // ~102 MB of f32 vectors: larger than any L3, so the f32 scan
            // is memory-bandwidth-bound and the 4x-smaller codes pay off.
            Self {
                n: 200_000,
                dim: 128,
                nq: 100,
                k: 10,
            }
        }
    }
}

/// Unit-norm random vectors, row-major.
fn unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0f32; n * dim];
    for row in out.chunks_exact_mut(dim) {
        for x in row.iter_mut() {
            *x = rng.gen_range(-1.0f32..1.0);
        }
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
    out
}

/// Mean recall@k of `got` against the exact oracle's id sets.
fn recall(got: &[Vec<Neighbor>], truth: &[Vec<u32>], k: usize) -> f64 {
    let mut hit = 0usize;
    for (g, t) in got.iter().zip(truth) {
        hit += g.iter().filter(|n| t.contains(&n.id)).count();
    }
    hit as f64 / (truth.len() * k) as f64
}

/// Batched flat-scan QPS through the pool (same path for f32 and SQ8; the
/// index routes to the quantized scan whenever a plane is attached).
fn flat_qps_batch(
    flat: &FlatIndex,
    queries: &[f32],
    dim: usize,
    k: usize,
    reps: usize,
    pool: &Pool,
) -> f64 {
    let nq = queries.len() / dim;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(flat.search_batch(queries, k, pool));
    }
    (nq * reps) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_quant.json".to_string());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| Pool::auto().threads());
    let pool = Pool::new(threads);

    let sc = Scenario::new(quick);
    eprintln!(
        "bench_quant: n={} dim={} nq={} k={} threads={} ({})",
        sc.n,
        sc.dim,
        sc.nq,
        sc.k,
        pool.threads(),
        if quick { "quick" } else { "full" }
    );

    let data = unit_vectors(sc.n, sc.dim, 0x5A8F);
    let queries = unit_vectors(sc.nq, sc.dim, 0x0_D17);
    let reps = if quick { 2 } else { 3 };
    let kernel = deepjoin_simd::active_kernel().name();

    let mut flat = FlatIndex::new(sc.dim, Metric::L2);
    flat.add_batch(&data);

    // ---- f32: exact scan over the full-precision plane ----
    let truth: Vec<Vec<u32>> = queries
        .chunks_exact(sc.dim)
        .map(|q| flat.search(q, sc.k).into_iter().map(|h| h.id).collect())
        .collect();
    let qps_f32 = flat_qps_batch(&flat, &queries, sc.dim, sc.k, reps, &pool);
    let f32_bytes = sc.n * sc.dim * std::mem::size_of::<f32>();

    // ---- sq8: int8 surrogate scan + exact rescore ----
    flat.quantize_sq8();
    let sq8_bytes = flat.sq8().expect("plane just attached").resident_bytes();
    let got_sq8 = flat.search_batch(&queries, sc.k, &pool);
    let recall_sq8 = recall(&got_sq8, &truth, sc.k);
    let qps_sq8 = flat_qps_batch(&flat, &queries, sc.dim, sc.k, reps, &pool);

    let qps_speedup = qps_sq8 / qps_f32;
    let bytes_ratio = f32_bytes as f64 / sq8_bytes as f64;
    let recall_delta = 1.0 - recall_sq8;

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"schema\": \"bench_quant/v1\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"corpus\": {{ \"n\": {n}, \"dim\": {dim}, \"nq\": {nq}, \"k\": {k} }},\n",
            "  \"threads\": {threads},\n",
            "  \"kernel\": \"{kernel}\",\n",
            "  \"rescore_factor\": {rf},\n",
            "  \"f32_bytes\": {fb},\n",
            "  \"sq8_bytes\": {sb},\n",
            "  \"bytes_ratio\": {br:.3},\n",
            "  \"qps_f32\": {qf:.2},\n",
            "  \"qps_sq8\": {qs:.2},\n",
            "  \"qps_speedup\": {su:.3},\n",
            "  \"recall_at_k_sq8\": {rs:.4},\n",
            "  \"recall_delta\": {rd:.4}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        n = sc.n,
        dim = sc.dim,
        nq = sc.nq,
        k = sc.k,
        threads = pool.threads(),
        kernel = kernel,
        rf = RESCORE_FACTOR,
        fb = f32_bytes,
        sb = sq8_bytes,
        br = bytes_ratio,
        qf = qps_f32,
        qs = qps_sq8,
        su = qps_speedup,
        rs = recall_sq8,
        rd = recall_delta,
    );

    std::fs::write(&out_path, &json).expect("write report");
    eprintln!(
        "flat: {qps_f32:.0} -> {qps_sq8:.0} qps ({qps_speedup:.2}x); \
         plane: {f32_bytes} -> {sq8_bytes} bytes ({bytes_ratio:.2}x smaller); \
         recall@{}: {recall_sq8:.4} (delta {recall_delta:.4})",
        sc.k
    );
    println!("wrote {out_path}");
}
