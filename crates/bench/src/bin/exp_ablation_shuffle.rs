//! Tables 11 & 12: ablation of the cell-shuffle data augmentation — one
//! DeepJoin-MPLite model per shuffle rate in {0, 0.1, …, 0.5}.
//!
//! Usage:
//!   cargo run --release -p deepjoin-bench --bin exp_ablation_shuffle -- equi
//!   cargo run --release -p deepjoin-bench --bin exp_ablation_shuffle -- semantic

use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::eval::{eval_equi, eval_semantic, SemanticEval, KS};
use deepjoin_bench::methods::deepjoin_method;
use deepjoin_bench::table::print_accuracy_table;
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_lake::corpus::CorpusProfile;

const TAU: f64 = 0.9;
const RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let join = args.get(1).map(String::as_str).unwrap_or("equi").to_string();
    let scale = Scale::from_env();
    let kind = match join.as_str() {
        "semantic" => JoinKind::Semantic(TAU),
        _ => JoinKind::Equi,
    };
    let table_no = if kind == JoinKind::Equi { 11 } else { 12 };
    println!(
        "Table {table_no} reproduction — cell-shuffle ablation, {} joins ({})",
        join,
        scale.label()
    );

    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0x5FFE);
        let sem = match kind {
            JoinKind::Semantic(_) => Some(SemanticEval::build(&bench)),
            JoinKind::Equi => None,
        };

        let methods: Vec<_> = RATES
            .iter()
            .map(|&rate| {
                eprintln!("  training with shuffle rate {rate}…");
                let name = if rate == 0.0 {
                    "no-shuffle".to_string()
                } else {
                    format!("{rate}")
                };
                deepjoin_method(
                    bench.train_deepjoin(
                        Variant::MpLite,
                        kind,
                        TransformOption::TitleColnameStatCol,
                        rate,
                    ),
                    &name,
                )
            })
            .collect();

        let rows = match (&kind, &sem) {
            (JoinKind::Equi, _) => eval_equi(&bench, &methods, &KS),
            (JoinKind::Semantic(tau), Some(sem)) => {
                eval_semantic(&bench, sem, &methods, *tau, &KS)
            }
            _ => unreachable!(),
        };
        print_accuracy_table(
            &format!("Shuffle rates, {} joins, {profile:?} (paper Table {table_no})", join),
            &KS,
            &rows,
            &[],
        );
    }
    println!("\nPaper: a moderate shuffle rate (0.2-0.4) is best; over-shuffling is worse than none.");
}
