//! Table 7: semantic-join accuracy judged by "experts" — here, the
//! generator's ground-truth oracle (DESIGN.md §1) — with the pooled
//! precision/recall/F1 protocol of Clarke & Willett.
//!
//! Methods: LSH Ensemble, fastText, PEXESO, DeepJoin-MPLite. The pool per
//! query is the union of every method's retrieved top-k.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_expert`

use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::eval::SemanticEval;
use deepjoin_bench::methods::{deepjoin_method, fasttext_method, lsh_method, SearchFn};
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::Oracle;
use deepjoin_metrics::{mean, PooledEval};

const TAU: f64 = 0.9;
const K: usize = 20;

/// Paper Table 7 reference (precision, recall, F1).
const PAPER: &[(&str, [f64; 3], [f64; 3])] = &[
    // (method, webtable PRF, wikitable PRF)
    ("LSH Ensemble", [0.181, 0.228, 0.202], [0.652, 0.385, 0.484]),
    ("fastText", [0.138, 0.277, 0.183], [0.467, 0.380, 0.419]),
    ("PEXESO", [0.212, 0.506, 0.300], [0.683, 0.492, 0.572]),
    ("DeepJoin-MPLite", [0.350, 0.693, 0.465], [0.842, 0.568, 0.677]),
];

fn main() {
    let scale = Scale::from_env();
    println!("Table 7 reproduction — expert-labeled semantic joins ({})", scale.label());
    println!("(expert = ground-truth oracle over the generator's entity provenance)");

    for (pi, profile) in [CorpusProfile::Webtable, CorpusProfile::Wikitable]
        .into_iter()
        .enumerate()
    {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0xE1DE);
        let sem = SemanticEval::build(&bench);

        // Methods. PEXESO is wrapped over the shared index.
        let mut methods: Vec<SearchFn> = Vec::new();
        methods.push(lsh_method(&bench));
        methods.push(fasttext_method(&bench));
        {
            let pexeso = deepjoin_pexeso::PexesoIndex::build(
                &sem.embedded.columns,
                deepjoin_pexeso::PexesoConfig::default(),
            );
            let space = bench.space;
            methods.push(SearchFn {
                name: "PEXESO".into(),
                search: Box::new(move |q, k| {
                    let qv = space.embed_column(q);
                    pexeso.search(&qv, TAU, k).into_iter().map(|s| s.id).collect()
                }),
            });
        }
        eprintln!("  training DeepJoin (MPLite, semantic)…");
        methods.push(deepjoin_method(
            bench.train_deepjoin(
                Variant::MpLite,
                JoinKind::Semantic(TAU),
                TransformOption::TitleColnameStatCol,
                0.3,
            ),
            "DeepJoin-MPLite",
        ));

        // Pooled evaluation per query, averaged.
        let oracle = Oracle::default();
        let mut prf: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
            vec![(Vec::new(), Vec::new(), Vec::new()); methods.len()];
        for (q, qprov) in &bench.queries {
            let retrieved: Vec<Vec<deepjoin_lake::ColumnId>> =
                methods.iter().map(|m| (m.search)(q, K)).collect();
            let mut pool = PooledEval::new();
            for r in &retrieved {
                let ids: Vec<u32> = r.iter().map(|id| id.0).collect();
                pool.add_retrieved(&ids);
            }
            let judge = |id: u32| oracle.is_joinable(qprov, &bench.provenance[id as usize]);
            for (mi, r) in retrieved.iter().enumerate() {
                let ids: Vec<u32> = r.iter().map(|id| id.0).collect();
                let res = pool.score(&ids, judge);
                prf[mi].0.push(res.precision);
                prf[mi].1.push(res.recall);
                prf[mi].2.push(res.f1);
            }
        }

        println!(
            "\n=== Expert-labeled semantic joins, {profile:?} (paper Table 7, k={K}) ==="
        );
        println!("{:<22} {:>10} {:>10} {:>10}", "Method", "Precision", "Recall", "F1");
        for (mi, m) in methods.iter().enumerate() {
            println!(
                "{:<22} {:>10.3} {:>10.3} {:>10.3}",
                m.name,
                mean(&prf[mi].0),
                mean(&prf[mi].1),
                mean(&prf[mi].2)
            );
            if let Some((_, web, wiki)) = PAPER.iter().find(|(n, _, _)| *n == m.name) {
                let p = if pi == 0 { web } else { wiki };
                println!(
                    "{:<22} {:>10.3} {:>10.3} {:>10.3}",
                    "  (paper)", p[0], p[1], p[2]
                );
            }
        }
    }
}
