//! Table 13: query processing time versus repository size |𝒳|.
//!
//! Methods: LSH Ensemble, JOSIE, fastText, DeepJoin (CPU), DeepJoin
//! ("GPU" = multi-threaded encoder stand-in, DESIGN.md §1) for equi-joins;
//! PEXESO and DeepJoin for semantic joins. Sizes are prefixes of the full
//! test repository; sweep sizes scale with `DJ_SCALE`.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_scalability`

use deepjoin::batch::encode_queries_parallel;
use deepjoin::baselines::{EmbeddingRetriever, FastTextEmbedder};
use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::table::print_timing_table;
use deepjoin_bench::timing::{time_batch_per_query, time_per_query};
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::repository::Repository;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

const K: usize = 10;
const TAU: f64 = 0.9;
const THREADS: usize = 8;

fn main() {
    let scale = Scale::from_env();
    let sizes: Vec<usize> = (1..=5)
        .map(|i| scale.test_cols * i / 5)
        .collect();
    println!(
        "Table 13 reproduction — processing time per query vs |X|, k={K} ({})",
        scale.label()
    );

    let bench = Bench::new(CorpusProfile::Webtable, scale, 0x5CA1E);
    let queries: Vec<Column> = bench.queries.iter().map(|(q, _)| q.clone()).collect();

    eprintln!("training DeepJoin (MPLite, equi)…");
    let mut dj_equi = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Equi,
        TransformOption::TitleColnameStatCol,
        0.2,
    );
    eprintln!("training DeepJoin (MPLite, semantic)…");
    let mut dj_sem = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Semantic(TAU),
        TransformOption::TitleColnameStatCol,
        0.3,
    );

    let header: Vec<String> = sizes.iter().map(|s| format!("{s}")).collect();
    let mut equi_rows: Vec<(String, Vec<f64>)> = vec![
        ("LSH Ensemble".into(), Vec::new()),
        ("JOSIE".into(), Vec::new()),
        ("fastText".into(), Vec::new()),
        ("DeepJoin (CPU)".into(), Vec::new()),
        ("DeepJoin (GPU*)".into(), Vec::new()),
    ];
    let mut sem_rows: Vec<(String, Vec<f64>)> = vec![
        ("PEXESO".into(), Vec::new()),
        ("DeepJoin (CPU)".into(), Vec::new()),
        ("DeepJoin (GPU*)".into(), Vec::new()),
    ];
    let mut encode_ms_cpu = 0.0;
    let mut encode_ms_gpu = 0.0;

    for &size in &sizes {
        eprintln!("[|X| = {size}] building indexes…");
        let sub = Repository::from_columns(
            bench.repo.columns().iter().take(size).cloned(),
        );

        // --- Equi methods ---
        let lsh = LshEnsembleIndex::build(
            &sub,
            LshEnsembleConfig {
                num_perm: 32,
                ..Default::default()
            },
        );
        equi_rows[0].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(lsh.search(q, K));
        }));

        let josie = JosieIndex::build(&sub);
        equi_rows[1].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(josie.search(q, K));
        }));

        let ft = EmbeddingRetriever::build(
            FastTextEmbedder {
                ngram: NgramEmbedder::new(NgramConfig {
                    dim: bench.scale.dim,
                    ..NgramConfig::default()
                }),
                textizer: deepjoin::text::Textizer::new(
                    TransformOption::TitleColnameStatCol,
                    48,
                ),
            },
            &sub,
            Default::default(),
        );
        equi_rows[2].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(ft.search(q, K));
        }));

        dj_equi.index_repository(&sub);
        encode_ms_cpu = time_per_query(&queries, |q| {
            std::hint::black_box(dj_equi.embed_column(q));
        });
        equi_rows[3].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(dj_equi.search(q, K));
        }));
        // GPU stand-in: amortized parallel batch encoding + per-query ANNS.
        let embs = encode_queries_parallel(&dj_equi, &queries, THREADS);
        encode_ms_gpu = time_batch_per_query(queries.len(), || {
            std::hint::black_box(encode_queries_parallel(&dj_equi, &queries, THREADS));
        });
        let anns_ms = time_per_query(&queries, |_| {}) // negligible loop cost
            + {
                let start = std::time::Instant::now();
                for e in &embs {
                    std::hint::black_box(dj_equi.search_embedded(e, K));
                }
                start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
            };
        equi_rows[4].1.push(encode_ms_gpu + anns_ms);

        // --- Semantic methods ---
        let embedded: Vec<_> = sub
            .columns()
            .iter()
            .map(|c| bench.space.embed_column(c))
            .collect();
        let pexeso = PexesoIndex::build(&embedded, PexesoConfig::default());
        sem_rows[0].1.push(time_per_query(&queries, |q| {
            let qv = bench.space.embed_column(q);
            std::hint::black_box(pexeso.search(&qv, TAU, K));
        }));

        dj_sem.index_repository(&sub);
        sem_rows[1].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(dj_sem.search(q, K));
        }));
        let embs = encode_queries_parallel(&dj_sem, &queries, THREADS);
        let gpu_enc = time_batch_per_query(queries.len(), || {
            std::hint::black_box(encode_queries_parallel(&dj_sem, &queries, THREADS));
        });
        let anns = {
            let start = std::time::Instant::now();
            for e in &embs {
                std::hint::black_box(dj_sem.search_embedded(e, K));
            }
            start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
        };
        sem_rows[2].1.push(gpu_enc + anns);
    }

    println!(
        "\nDeepJoin query encoding: {:.2} ms (CPU single-thread), {:.2} ms (parallel x{THREADS}, GPU stand-in)",
        encode_ms_cpu, encode_ms_gpu
    );
    print_timing_table("Webtable, equi-joins — total ms/query", &header, &equi_rows);
    print_timing_table("Webtable, semantic joins — total ms/query", &header, &sem_rows);

    println!("\nPaper (Table 13, 1M-5M cols): JOSIE 506→1103 ms, LSH Ensemble 508→785 ms,");
    println!("fastText ~10 ms, DeepJoin CPU ~68-74 ms (flat in |X|), DeepJoin GPU ~8-11 ms;");
    println!("PEXESO 2566→4590 ms. Expected shape: exact methods grow ~linearly with |X|,");
    println!("embedding methods are dominated by constant encoding and grow only slightly.");
}
