//! Internal calibration harness (not a paper table): trains one DeepJoin
//! configuration and reports semantic-join accuracy + Table 7-style oracle
//! F1 against PEXESO and fastText, so hyperparameters can be swept quickly.
//!
//! Usage: `DJ_EPOCHS=12 DJ_LR=0.005 cargo run --release -p deepjoin-bench --bin exp_tune`

use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::eval::{eval_semantic, SemanticEval};
use deepjoin_bench::methods::{deepjoin_method, fasttext_method, SearchFn};
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::Oracle;
use deepjoin_metrics::{mean, PooledEval};

const TAU: f64 = 0.9;
const K: usize = 20;

fn env_f64(k: &str, d: f64) -> f64 {
    std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
}
fn env_usize(k: &str, d: usize) -> usize {
    std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
}

fn main() {
    let mut scale = Scale::from_env();
    scale.epochs = env_usize("DJ_EPOCHS", scale.epochs);
    scale.max_pairs = env_usize("DJ_MAX_PAIRS", scale.max_pairs);
    let lr = env_f64("DJ_LR", 5e-3) as f32;
    let shuffle = env_f64("DJ_SHUFFLE", 0.3);

    let bench = Bench::new(CorpusProfile::Webtable, scale, 0xE1DE);
    let sem = SemanticEval::build(&bench);

    // DeepJoin with overridden optimizer settings.
    let mut cfg = bench.deepjoin_config(Variant::MpLite, TransformOption::TitleColnameStatCol, shuffle);
    cfg.fine_tune.epochs = scale.epochs;
    cfg.fine_tune.adam.lr = lr;
    let (mut model, report) =
        deepjoin::model::DeepJoin::train(&bench.train_repo, JoinKind::Semantic(TAU).to_join_type(), cfg);
    eprintln!(
        "positives={} pairs={} losses={:?}",
        report.num_positives, report.num_pairs, report.epoch_losses
    );
    model.index_repository(&bench.repo);
    let dj = deepjoin_method(model, "DeepJoin-MPLite");
    let ft = fasttext_method(&bench);

    // PEXESO method.
    let pexeso = deepjoin_pexeso::PexesoIndex::build(
        &sem.embedded.columns,
        deepjoin_pexeso::PexesoConfig::default(),
    );
    let space = bench.space;
    let px = SearchFn {
        name: "PEXESO".into(),
        search: Box::new(move |q, k| {
            let qv = space.embed_column(q);
            pexeso.search(&qv, TAU, k).into_iter().map(|s| s.id).collect()
        }),
    };

    let methods = vec![ft, px, dj];

    // Semantic accuracy (PEXESO-labeled).
    let rows = eval_semantic(&bench, &sem, &methods, TAU, &[10, 50]);
    for r in &rows {
        println!("{:<18} P@10={:.3} P@50={:.3} N@10={:.3} N@50={:.3}",
            r.name, r.precision[0], r.precision[1], r.ndcg[0], r.ndcg[1]);
    }

    // Oracle F1 (Table 7 protocol).
    let oracle = Oracle::default();
    let mut f1s = vec![Vec::new(); methods.len()];
    for (q, qprov) in &bench.queries {
        let retrieved: Vec<Vec<deepjoin_lake::ColumnId>> =
            methods.iter().map(|m| (m.search)(q, K)).collect();
        let mut pool = PooledEval::new();
        for r in &retrieved {
            let ids: Vec<u32> = r.iter().map(|id| id.0).collect();
            pool.add_retrieved(&ids);
        }
        let judge = |id: u32| oracle.is_joinable(qprov, &bench.provenance[id as usize]);
        for (mi, r) in retrieved.iter().enumerate() {
            let ids: Vec<u32> = r.iter().map(|id| id.0).collect();
            f1s[mi].push(pool.score(&ids, judge).f1);
        }
    }
    for (m, f1) in methods.iter().zip(&f1s) {
        println!("{:<18} oracle-F1={:.3}", m.name, mean(f1));
    }
}
