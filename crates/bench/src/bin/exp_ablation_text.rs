//! Tables 9 & 10: ablation of the column-to-text transformation — one
//! DeepJoin-MPLite model per Table 1 option, both profiles.
//!
//! Usage:
//!   cargo run --release -p deepjoin-bench --bin exp_ablation_text -- equi
//!   cargo run --release -p deepjoin-bench --bin exp_ablation_text -- semantic

use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::eval::{eval_equi, eval_semantic, SemanticEval, KS};
use deepjoin_bench::methods::deepjoin_method;
use deepjoin_bench::table::print_accuracy_table;
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_lake::corpus::CorpusProfile;

const TAU: f64 = 0.9;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let join = args.get(1).map(String::as_str).unwrap_or("equi").to_string();
    let scale = Scale::from_env();
    let kind = match join.as_str() {
        "semantic" => JoinKind::Semantic(TAU),
        _ => JoinKind::Equi,
    };
    let table_no = if kind == JoinKind::Equi { 9 } else { 10 };
    println!(
        "Table {table_no} reproduction — column-to-text ablation, {} joins ({})",
        join,
        scale.label()
    );

    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        eprintln!("[{profile:?}] setting up…");
        let bench = Bench::new(profile, scale, 0xAB7A);
        let sem = match kind {
            JoinKind::Semantic(_) => Some(SemanticEval::build(&bench)),
            JoinKind::Equi => None,
        };

        let shuffle = if kind == JoinKind::Equi { 0.2 } else { 0.3 };
        let methods: Vec<_> = TransformOption::ALL
            .iter()
            .map(|&opt| {
                eprintln!("  training with {}…", opt.name());
                deepjoin_method(
                    bench.train_deepjoin(Variant::MpLite, kind, opt, shuffle),
                    opt.name(),
                )
            })
            .collect();

        let rows = match (&kind, &sem) {
            (JoinKind::Equi, _) => eval_equi(&bench, &methods, &KS),
            (JoinKind::Semantic(tau), Some(sem)) => {
                eval_semantic(&bench, sem, &methods, *tau, &KS)
            }
            _ => unreachable!(),
        };
        print_accuracy_table(
            &format!("Column-to-text options, {} joins, {profile:?} (paper Table {table_no})", join),
            &KS,
            &rows,
            &[],
        );
    }
    println!("\nPaper: title-colname-stat-col best; adding context hurts; plain col worst.");
}
