//! `bench_ann` — the reproducible ANN kernel/parallelism baseline.
//!
//! Measures, in one process, the before/after of this repo's two
//! performance substrates:
//!
//! * **before**: distance kernels pinned to the scalar reference
//!   (`force_kernel(Scalar)`), flat scans one query at a time, HNSW built
//!   with the sequential inserter;
//! * **after**: runtime-dispatched SIMD kernels, batched flat scans over
//!   the shared pool, HNSW built with the deterministic parallel batch
//!   inserter.
//!
//! Emits a JSON report (schema `bench_ann/v1`, default `BENCH_ann.json`)
//! with flat-scan QPS, HNSW build time and recall@k against the exact flat
//! oracle for both configurations. Run via `scripts/bench.sh`.
//!
//! ```text
//! bench_ann [--quick] [--out PATH] [--threads N]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::hnsw::{HnswConfig, HnswIndex};
use deepjoin_ann::index::{Neighbor, VectorIndex};
use deepjoin_par::Pool;
use deepjoin_simd::{force_kernel, Kernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One benchmark scenario (corpus shape).
struct Scenario {
    n: usize,
    dim: usize,
    nq: usize,
    k: usize,
}

impl Scenario {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                n: 2_000,
                dim: 32,
                nq: 40,
                k: 10,
            }
        } else {
            Self {
                n: 20_000,
                dim: 64,
                nq: 200,
                k: 10,
            }
        }
    }
}

/// Unit-norm random vectors, row-major.
fn unit_vectors(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0f32; n * dim];
    for row in out.chunks_exact_mut(dim) {
        for x in row.iter_mut() {
            *x = rng.gen_range(-1.0f32..1.0);
        }
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
    out
}

/// Exact top-k ids for every query (the recall oracle).
fn oracle(flat: &FlatIndex, queries: &[f32], dim: usize, k: usize) -> Vec<Vec<u32>> {
    queries
        .chunks_exact(dim)
        .map(|q| flat.search(q, k).into_iter().map(|h| h.id).collect())
        .collect()
}

/// Mean recall@k of `got` against the oracle's id sets.
fn recall(got: &[Vec<Neighbor>], truth: &[Vec<u32>], k: usize) -> f64 {
    let mut hit = 0usize;
    for (g, t) in got.iter().zip(truth) {
        hit += g.iter().filter(|n| t.contains(&n.id)).count();
    }
    hit as f64 / (truth.len() * k) as f64
}

/// Flat-scan queries/second: every query searched `reps` times.
fn flat_qps(flat: &FlatIndex, queries: &[f32], dim: usize, k: usize, reps: usize) -> f64 {
    let nq = queries.len() / dim;
    let start = Instant::now();
    for _ in 0..reps {
        for q in queries.chunks_exact(dim) {
            std::hint::black_box(flat.search(q, k));
        }
    }
    (nq * reps) as f64 / start.elapsed().as_secs_f64()
}

/// Batched flat-scan QPS through the pool.
fn flat_qps_batch(
    flat: &FlatIndex,
    queries: &[f32],
    dim: usize,
    k: usize,
    reps: usize,
    pool: &Pool,
) -> f64 {
    let nq = queries.len() / dim;
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(flat.search_batch(queries, k, pool));
    }
    (nq * reps) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ann.json".to_string());
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| Pool::auto().threads());
    let pool = Pool::new(threads);

    let sc = Scenario::new(quick);
    eprintln!(
        "bench_ann: n={} dim={} nq={} k={} threads={} ({})",
        sc.n,
        sc.dim,
        sc.nq,
        sc.k,
        pool.threads(),
        if quick { "quick" } else { "full" }
    );

    let data = unit_vectors(sc.n, sc.dim, 0xBE7C);
    let queries = unit_vectors(sc.nq, sc.dim, 0x9E_11);
    let reps = if quick { 2 } else { 3 };

    let mut flat = FlatIndex::new(sc.dim, deepjoin_ann::distance::Metric::L2);
    flat.add_batch(&data);
    let truth = oracle(&flat, &queries, sc.dim, sc.k);

    let hnsw_cfg = HnswConfig {
        ef_search: 128,
        ..HnswConfig::default()
    };

    // ---- before: scalar kernels, sequential everything ----
    force_kernel(Some(Kernel::Scalar));
    let kernel_before = deepjoin_simd::active_kernel().name();
    let qps_before = flat_qps(&flat, &queries, sc.dim, sc.k, reps);

    let t0 = Instant::now();
    let mut hnsw_seq = HnswIndex::new(sc.dim, hnsw_cfg);
    hnsw_seq.add_batch(&data);
    let build_before = t0.elapsed().as_secs_f64();
    let got_before: Vec<Vec<Neighbor>> = queries
        .chunks_exact(sc.dim)
        .map(|q| hnsw_seq.search(q, sc.k))
        .collect();
    let recall_before = recall(&got_before, &truth, sc.k);
    drop(hnsw_seq);

    // ---- after: dispatched SIMD kernels, batched/parallel paths ----
    force_kernel(None);
    let kernel_after = deepjoin_simd::active_kernel().name();
    let qps_after = flat_qps_batch(&flat, &queries, sc.dim, sc.k, reps, &pool);

    let t1 = Instant::now();
    let mut hnsw_par = HnswIndex::new(sc.dim, hnsw_cfg);
    hnsw_par.add_batch_parallel(&data, &pool);
    let build_after = t1.elapsed().as_secs_f64();
    let got_after = hnsw_par.search_batch(&queries, sc.k, &pool);
    let recall_after = recall(&got_after, &truth, sc.k);

    let flat_speedup = qps_after / qps_before;
    let build_speedup = build_before / build_after;

    let mut json = String::new();
    let _ = write!(
        json,
        concat!(
            "{{\n",
            "  \"schema\": \"bench_ann/v1\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"corpus\": {{ \"n\": {n}, \"dim\": {dim}, \"nq\": {nq}, \"k\": {k} }},\n",
            "  \"threads\": {threads},\n",
            "  \"kernel_before\": \"{kb}\",\n",
            "  \"kernel_after\": \"{ka}\",\n",
            "  \"flat_qps_before\": {qb:.2},\n",
            "  \"flat_qps_after\": {qa:.2},\n",
            "  \"flat_speedup\": {fs:.3},\n",
            "  \"hnsw_build_s_before\": {bb:.4},\n",
            "  \"hnsw_build_s_after\": {ba:.4},\n",
            "  \"hnsw_build_speedup\": {bs:.3},\n",
            "  \"recall_at_k_before\": {rb:.4},\n",
            "  \"recall_at_k_after\": {ra:.4}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        n = sc.n,
        dim = sc.dim,
        nq = sc.nq,
        k = sc.k,
        threads = pool.threads(),
        kb = kernel_before,
        ka = kernel_after,
        qb = qps_before,
        qa = qps_after,
        fs = flat_speedup,
        bb = build_before,
        ba = build_after,
        bs = build_speedup,
        rb = recall_before,
        ra = recall_after,
    );

    std::fs::write(&out_path, &json).expect("write report");
    eprintln!(
        "flat: {qps_before:.0} -> {qps_after:.0} qps ({flat_speedup:.2}x); \
         hnsw build: {build_before:.2}s -> {build_after:.2}s ({build_speedup:.2}x); \
         recall@{}: {recall_before:.4} -> {recall_after:.4}",
        sc.k
    );
    println!("wrote {out_path}");
}
