//! Table 8: accuracy versus column size (Webtable, k = 10).
//!
//! Target columns are split into short (5-10 cells), medium (11-50) and long
//! (> 50) groups; queries are drawn in the same length range as their group.
//! Both join types are evaluated, as in the paper.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_colsize_accuracy`

use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::methods::{fasttext_method, lsh_method};
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_embed::cell_space::CellSpace;
use deepjoin_josie::JosieIndex;
use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::repository::Repository;
use deepjoin_metrics::{mean, ndcg_at_k, precision_at_k};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

const K: usize = 10;
const TAU: f64 = 0.9;
const GROUPS: [(&str, usize, usize); 3] =
    [("5-10", 5, 10), ("11-50", 11, 50), (">50", 51, 400)];

fn main() {
    let scale = Scale::from_env();
    println!("Table 8 reproduction — accuracy vs column size, Webtable, k={K} ({})", scale.label());

    let bench = Bench::new(CorpusProfile::Webtable, scale, 0xC0151);

    // Train once; re-index per group.
    eprintln!("training DeepJoin equi variants…");
    let mut dj_d_equi = bench.train_deepjoin(
        Variant::DistilLite,
        JoinKind::Equi,
        TransformOption::TitleColnameStatCol,
        0.2,
    );
    let mut dj_m_equi = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Equi,
        TransformOption::TitleColnameStatCol,
        0.2,
    );
    eprintln!("training DeepJoin semantic variants…");
    let mut dj_d_sem = bench.train_deepjoin(
        Variant::DistilLite,
        JoinKind::Semantic(TAU),
        TransformOption::TitleColnameStatCol,
        0.3,
    );
    let mut dj_m_sem = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Semantic(TAU),
        TransformOption::TitleColnameStatCol,
        0.3,
    );

    // Collect per-group results for both join types.
    let mut equi_rows: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut sem_rows: Vec<(String, Vec<(f64, f64)>)> = Vec::new();

    for &(label, lo, hi) in &GROUPS {
        eprintln!("[group {label}] building sub-repository…");
        // Sub-repository of targets in the size range.
        let sub: Vec<Column> = bench
            .repo
            .columns()
            .iter()
            .filter(|c| c.len() >= lo && c.len() <= hi)
            .cloned()
            .collect();
        if sub.len() < K * 2 {
            eprintln!("  group {label} too small ({}), skipping", sub.len());
            continue;
        }
        let sub_repo = Repository::from_columns(sub);
        let queries: Vec<Column> = bench
            .corpus
            .sample_queries_sized(scale.queries.min(20), lo..=hi, 0xAB + lo as u64)
            .into_iter()
            .map(|(c, _)| c)
            .collect();

        // --- Equi ---
        let josie = JosieIndex::build(&sub_repo);
        dj_d_equi.index_repository(&sub_repo);
        dj_m_equi.index_repository(&sub_repo);
        let sub_bench = Bench {
            repo: sub_repo.clone(),
            ..clone_bench(&bench)
        };

        let eval_equi_one = |search: &dyn Fn(&Column, usize) -> Vec<ColumnId>| {
            let mut ps = Vec::new();
            let mut ns = Vec::new();
            for q in &queries {
                let exact = josie.search(q, K);
                let exact_ids: Vec<ColumnId> = exact.iter().map(|s| s.id).collect();
                let exact_scores: Vec<f64> = exact.iter().map(|s| s.score).collect();
                let got = search(q, K);
                let got_scores: Vec<f64> = got
                    .iter()
                    .map(|&id| deepjoin_lake::equi_joinability(q, sub_repo.column(id)))
                    .collect();
                ps.push(precision_at_k(&got, &exact_ids, K));
                ns.push(ndcg_at_k(&got_scores, &exact_scores, K));
            }
            (mean(&ps), mean(&ns))
        };

        let lsh = lsh_method(&sub_bench);
        let ft = fasttext_method(&sub_bench);
        push_group(&mut equi_rows, "LSH Ensemble", eval_equi_one(&*lsh.search));
        push_group(&mut equi_rows, "fastText", eval_equi_one(&*ft.search));
        push_group(
            &mut equi_rows,
            "DeepJoin-DistilLite",
            eval_equi_one(&|q, k| dj_d_equi.search(q, k).into_iter().map(|s| s.id).collect()),
        );
        push_group(
            &mut equi_rows,
            "DeepJoin-MPLite",
            eval_equi_one(&|q, k| dj_m_equi.search(q, k).into_iter().map(|s| s.id).collect()),
        );

        // --- Semantic ---
        let embedded: Vec<_> = sub_repo
            .columns()
            .iter()
            .map(|c| bench.space.embed_column(c))
            .collect();
        let pexeso = PexesoIndex::build(&embedded, PexesoConfig::default());
        dj_d_sem.index_repository(&sub_repo);
        dj_m_sem.index_repository(&sub_repo);

        let eval_sem_one = |search: &dyn Fn(&Column, usize) -> Vec<ColumnId>| {
            let mut ps = Vec::new();
            let mut ns = Vec::new();
            for q in &queries {
                let qv = bench.space.embed_column(q);
                let exact = pexeso.search(&qv, TAU, K);
                let exact_ids: Vec<ColumnId> = exact.iter().map(|s| s.id).collect();
                let exact_scores: Vec<f64> = exact.iter().map(|s| s.score).collect();
                let got = search(q, K);
                let got_scores: Vec<f64> = got
                    .iter()
                    .map(|&id| CellSpace::semantic_joinability(&qv, &embedded[id.index()], TAU))
                    .collect();
                ps.push(precision_at_k(&got, &exact_ids, K));
                ns.push(ndcg_at_k(&got_scores, &exact_scores, K));
            }
            (mean(&ps), mean(&ns))
        };
        push_group(&mut sem_rows, "LSH Ensemble", eval_sem_one(&*lsh.search));
        push_group(&mut sem_rows, "fastText", eval_sem_one(&*ft.search));
        push_group(
            &mut sem_rows,
            "DeepJoin-DistilLite",
            eval_sem_one(&|q, k| dj_d_sem.search(q, k).into_iter().map(|s| s.id).collect()),
        );
        push_group(
            &mut sem_rows,
            "DeepJoin-MPLite",
            eval_sem_one(&|q, k| dj_m_sem.search(q, k).into_iter().map(|s| s.id).collect()),
        );
    }

    print_rows("Equi-joins", &equi_rows);
    print_rows("Semantic joins", &sem_rows);
    println!("\nPaper (Table 8): accuracy decreases with column size for every method;");
    println!("DeepJoin stays best in each group, MPNet variant on top.");
}

fn clone_bench(b: &Bench) -> Bench {
    Bench {
        profile: b.profile,
        corpus: b.corpus.clone(),
        repo: b.repo.clone(),
        provenance: b.provenance.clone(),
        train_repo: b.train_repo.clone(),
        queries: b.queries.clone(),
        space: b.space,
        scale: b.scale,
    }
}

fn push_group(rows: &mut Vec<(String, Vec<(f64, f64)>)>, name: &str, val: (f64, f64)) {
    if let Some(row) = rows.iter_mut().find(|(n, _)| n == name) {
        row.1.push(val);
    } else {
        rows.push((name.to_string(), vec![val]));
    }
}

fn print_rows(title: &str, rows: &[(String, Vec<(f64, f64)>)]) {
    println!("\n=== {title}, per size group (P@10 / N@10) ===");
    println!(
        "{:<22} {:>15} {:>15} {:>15}",
        "Method", "|X|=5-10", "11-50", ">50"
    );
    for (name, vals) in rows {
        print!("{name:<22}");
        for (p, n) in vals {
            print!(" {:>7.3}/{:<7.3}", p, n);
        }
        println!();
    }
}
