//! ANNS-backend ablation (design choice of §3.3): retrieval quality and
//! per-query latency of Flat (exact), HNSW (the default), and IVFPQ (the
//! billion-scale option) over the *same* trained DeepJoin embeddings.
//!
//! Not a paper table — the paper takes Faiss's behaviour as given; this
//! validates the from-scratch implementations against each other.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_ablation_anns`

use deepjoin::batch::encode_repository;
use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_ann::{
    FlatIndex, HnswConfig, HnswIndex, IvfPqConfig, IvfPqIndex, Metric, PqConfig, VectorIndex,
};
use deepjoin_bench::timing::time_per_query;
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_metrics::{mean, precision_at_k};

const K: usize = 10;

fn main() {
    let scale = Scale::from_env();
    println!("ANNS-backend ablation — same DeepJoin embeddings, three indexes ({})", scale.label());

    let bench = Bench::new(CorpusProfile::Webtable, scale, 0xA22);
    eprintln!("training DeepJoin…");
    let model = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Equi,
        TransformOption::TitleColnameStatCol,
        0.2,
    );
    eprintln!("embedding repository…");
    let embeddings = encode_repository(&model, &bench.repo);
    let dim = bench.scale.dim;
    let queries: Vec<Column> = bench.queries.iter().map(|(q, _)| q.clone()).collect();
    let qembs: Vec<Vec<f32>> = queries.iter().map(|q| model.embed_column(q)).collect();

    eprintln!("building indexes…");
    let mut flat = FlatIndex::new(dim, Metric::L2);
    flat.add_batch(&embeddings);
    let mut hnsw = HnswIndex::new(dim, HnswConfig::default());
    hnsw.add_batch(&embeddings);
    let mut ivfpq = IvfPqIndex::new(
        dim,
        IvfPqConfig {
            nlist: 64,
            nprobe: 8,
            pq: PqConfig {
                m: 8,
                ks: 64,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    ivfpq.train(&embeddings);
    ivfpq.add_batch(&embeddings);

    // Recall@k of the approximate indexes vs the exact flat scan, and
    // latency for all three.
    let truth: Vec<Vec<u32>> = qembs
        .iter()
        .map(|e| flat.search(e, K).into_iter().map(|n| n.id).collect())
        .collect();

    println!("\n{:<10} {:>12} {:>14}", "Index", "recall@10", "ms/query");
    for (name, index) in [
        ("flat", &flat as &dyn VectorIndex),
        ("hnsw", &hnsw as &dyn VectorIndex),
        ("ivfpq", &ivfpq as &dyn VectorIndex),
    ] {
        let mut recalls = Vec::new();
        for (e, t) in qembs.iter().zip(&truth) {
            let got: Vec<u32> = index.search(e, K).into_iter().map(|n| n.id).collect();
            recalls.push(precision_at_k(&got, t, K));
        }
        let mut qi = 0usize;
        let ms = time_per_query(&queries, |_| {
            qi = (qi + 1) % qembs.len();
            std::hint::black_box(index.search(&qembs[qi], K));
        });
        println!("{:<10} {:>12.3} {:>14.3}", name, mean(&recalls), ms);
    }
    println!("\nExpected: HNSW recall ≥ 0.9 at a fraction of flat's latency on large");
    println!("repositories; IVFPQ trades more recall for even less memory/compute.");
}
