//! Table 15: query processing time versus column size (Webtable, k = 10).
//!
//! Targets are grouped by size (5-10 / 11-50 / >50 cells), a fixed number of
//! columns is indexed per group (eliminating |𝒳| effects), and queries are
//! drawn in the same range. Query encoding time is reported separately for
//! the embedding methods, as in the paper.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_colsize_time`

use deepjoin::batch::encode_queries_parallel;
use deepjoin::baselines::{ColumnEmbedder, EmbeddingRetriever, FastTextEmbedder};
use deepjoin::model::Variant;
use deepjoin::text::TransformOption;
use deepjoin_bench::table::print_timing_table;
use deepjoin_bench::timing::{time_batch_per_query, time_per_query};
use deepjoin_bench::{Bench, JoinKind, Scale};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::repository::Repository;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

const K: usize = 10;
const TAU: f64 = 0.9;
const THREADS: usize = 8;
const GROUPS: [(&str, usize, usize); 3] = [("5-10", 5, 10), ("11-50", 11, 50), (">50", 51, 400)];

fn main() {
    let scale = Scale::from_env();
    let per_group = (scale.test_cols / 4).max(200);
    println!(
        "Table 15 reproduction — time per query vs column size, Webtable, k={K}, {} cols/group ({})",
        per_group,
        scale.label()
    );

    let bench = Bench::new(CorpusProfile::Webtable, scale, 0xC0517);
    eprintln!("training DeepJoin (equi)…");
    let mut dj = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Equi,
        TransformOption::TitleColnameStatCol,
        0.2,
    );
    eprintln!("training DeepJoin (semantic)…");
    let mut dj_sem = bench.train_deepjoin(
        Variant::MpLite,
        JoinKind::Semantic(TAU),
        TransformOption::TitleColnameStatCol,
        0.3,
    );

    let header: Vec<String> = GROUPS.iter().map(|(l, _, _)| l.to_string()).collect();
    let mut enc_rows: Vec<(String, Vec<f64>)> = vec![
        ("fastText (encode)".into(), Vec::new()),
        ("DeepJoin CPU (encode)".into(), Vec::new()),
        ("DeepJoin GPU* (encode)".into(), Vec::new()),
    ];
    let mut equi_rows: Vec<(String, Vec<f64>)> = vec![
        ("LSH Ensemble".into(), Vec::new()),
        ("JOSIE".into(), Vec::new()),
        ("fastText".into(), Vec::new()),
        ("DeepJoin (CPU)".into(), Vec::new()),
    ];
    let mut sem_rows: Vec<(String, Vec<f64>)> = vec![
        ("PEXESO".into(), Vec::new()),
        ("DeepJoin (CPU)".into(), Vec::new()),
    ];

    for &(label, lo, hi) in &GROUPS {
        eprintln!("[group {label}] preparing…");
        // Fixed-size group repository: take matching columns, top up with
        // fresh sized samples if the corpus has too few in range.
        let mut cols: Vec<Column> = bench
            .repo
            .columns()
            .iter()
            .filter(|c| c.len() >= lo && c.len() <= hi)
            .take(per_group)
            .cloned()
            .collect();
        if cols.len() < per_group {
            let extra = bench
                .corpus
                .sample_queries_sized(per_group - cols.len(), lo..=hi, 0x11 + lo as u64);
            cols.extend(extra.into_iter().map(|(c, _)| c));
        }
        let sub = Repository::from_columns(cols);
        let queries: Vec<Column> = bench
            .corpus
            .sample_queries_sized(bench.scale.queries.min(20), lo..=hi, 0x99 + lo as u64)
            .into_iter()
            .map(|(c, _)| c)
            .collect();

        // Encoding times.
        let ft_embedder = FastTextEmbedder {
            ngram: NgramEmbedder::new(NgramConfig {
                dim: bench.scale.dim,
                ..NgramConfig::default()
            }),
            textizer: deepjoin::text::Textizer::new(TransformOption::TitleColnameStatCol, 48),
        };
        enc_rows[0].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(ft_embedder.embed(q));
        }));
        enc_rows[1].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(dj.embed_column(q));
        }));
        enc_rows[2].1.push(time_batch_per_query(queries.len(), || {
            std::hint::black_box(encode_queries_parallel(&dj, &queries, THREADS));
        }));

        // Equi totals.
        let lsh = LshEnsembleIndex::build(
            &sub,
            LshEnsembleConfig {
                num_perm: 32,
                ..Default::default()
            },
        );
        equi_rows[0].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(lsh.search(q, K));
        }));
        let josie = JosieIndex::build(&sub);
        equi_rows[1].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(josie.search(q, K));
        }));
        let ft = EmbeddingRetriever::build(ft_embedder, &sub, Default::default());
        equi_rows[2].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(ft.search(q, K));
        }));
        dj.index_repository(&sub);
        equi_rows[3].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(dj.search(q, K));
        }));

        // Semantic totals.
        let embedded: Vec<_> = sub
            .columns()
            .iter()
            .map(|c| bench.space.embed_column(c))
            .collect();
        let pexeso = PexesoIndex::build(&embedded, PexesoConfig::default());
        sem_rows[0].1.push(time_per_query(&queries, |q| {
            let qv = bench.space.embed_column(q);
            std::hint::black_box(pexeso.search(&qv, TAU, K));
        }));
        dj_sem.index_repository(&sub);
        sem_rows[1].1.push(time_per_query(&queries, |q| {
            std::hint::black_box(dj_sem.search(q, K));
        }));
    }

    print_timing_table("Query encoding — ms/query", &header, &enc_rows);
    print_timing_table("Equi-joins — total ms/query", &header, &equi_rows);
    print_timing_table("Semantic joins — total ms/query", &header, &sem_rows);

    println!("\nPaper (Table 15): JOSIE grows 1.9x and PEXESO 1.5x from short to long");
    println!("columns; DeepJoin grows only ~1.09x (encoding only), GPU version less.");
}
