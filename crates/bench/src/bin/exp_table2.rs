//! Table 2: dataset statistics of the (synthetic) Webtable / Wikitable
//! corpora — |𝒳|, max/min/avg |X|, and the number of self-join positives.
//!
//! Usage: `cargo run --release -p deepjoin-bench --bin exp_table2`
//! Scale via `DJ_SCALE=smoke|small|full`.

use deepjoin::train::{self_join_positives, JoinType, TrainDataConfig};
use deepjoin_bench::{Bench, Scale};
use deepjoin_lake::corpus::CorpusProfile;
use deepjoin_lake::RepoStats;

fn main() {
    let scale = Scale::from_env();
    println!("Table 2 reproduction — dataset statistics ({})", scale.label());
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>12} {:>14}",
        "Dataset", "|X|", "max|X|", "min|X|", "avg|X|", "#pos(equi)", "#pos(semantic)"
    );

    for profile in [CorpusProfile::Webtable, CorpusProfile::Wikitable] {
        let bench = Bench::new(profile, scale, 0xDA7A);
        for (name, repo) in [
            (format!("{profile:?}-train"), &bench.train_repo),
            (format!("{profile:?}-test"), &bench.repo),
        ] {
            let stats = RepoStats::compute(repo);
            // Positives are only counted on the training split (as in the
            // paper, where the self-join runs on the 30K training set).
            let (pe, ps) = if name.ends_with("train") {
                let cfg = TrainDataConfig::default();
                let pe = self_join_positives(repo, JoinType::Equi, &bench.space, &cfg).len();
                let ps = self_join_positives(
                    repo,
                    JoinType::Semantic { tau: 0.9 },
                    &bench.space,
                    &cfg,
                )
                .len();
                (pe.to_string(), ps.to_string())
            } else {
                ("N/A".to_string(), "N/A".to_string())
            };
            println!(
                "{:<18} {:>8} {:>8} {:>8} {:>8.2} {:>12} {:>14}",
                name, stats.num_columns, stats.max_len, stats.min_len, stats.avg_len, pe, ps
            );
        }
    }
    println!("\nPaper (Table 2): Webtable-train |X|=30K max=5454 min=5 avg=20.77, 190K equi / 220K semantic positives;");
    println!("                 Wikitable-train |X|=30K max=1197 min=5 avg=18.58, 490K equi / 540K semantic positives;");
    println!("                 test sets 1M columns. Scales here are reduced (DESIGN.md §7); shapes (min=5, avg≈20, heavy tail) match.");
}
