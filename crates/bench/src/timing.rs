//! Timing helpers for the efficiency experiments (Tables 13-15).

use std::time::Instant;

use deepjoin_lake::column::Column;

/// Mean wall-clock milliseconds per query for `f`.
pub fn time_per_query<F: FnMut(&Column)>(queries: &[Column], mut f: F) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let start = Instant::now();
    for q in queries {
        f(q);
    }
    start.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Mean milliseconds of a whole-batch operation, divided per query (used
/// for the parallel "GPU stand-in" encoder, which amortizes across a batch).
pub fn time_batch_per_query<F: FnOnce()>(num_queries: usize, f: F) -> f64 {
    if num_queries == 0 {
        return 0.0;
    }
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3 / num_queries as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_return_positive_means() {
        let queries = vec![Column::from_cells(["a", "b", "c", "d", "e"]); 3];
        let t = time_per_query(&queries, |q| {
            std::hint::black_box(q.distinct_len());
        });
        assert!(t >= 0.0);
        let t2 = time_batch_per_query(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t2 >= 0.0);
        assert_eq!(time_per_query(&[], |_| {}), 0.0);
        assert_eq!(time_batch_per_query(0, || {}), 0.0);
    }
}
