//! Accuracy evaluation: precision@k and NDCG@k against the exact answer
//! (paper §5.1, "Metrics").

use deepjoin_embed::cell_space::{CellSpace, ColumnVectors, EmbeddedRepository};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::column::ColumnId;
use deepjoin_metrics::{mean, ndcg_at_k, precision_at_k};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

use crate::methods::SearchFn;
use crate::setup::Bench;

/// The k values the paper sweeps.
pub const KS: [usize; 5] = [10, 20, 30, 40, 50];

/// Type alias for the k sweep.
pub type Ks = [usize; 5];

/// One method's accuracy row: precision@k and NDCG@k for each k in [`KS`].
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// Method name.
    pub name: String,
    /// precision@k per k.
    pub precision: Vec<f64>,
    /// NDCG@k per k.
    pub ndcg: Vec<f64>,
}

/// Evaluate `methods` on equi-joins: exact answers come from JOSIE, NDCG
/// gains are true equi-joinability values.
pub fn eval_equi(bench: &Bench, methods: &[SearchFn], ks: &[usize]) -> Vec<AccuracyRow> {
    let max_k = ks.iter().copied().max().unwrap_or(10);
    eprintln!("  building JOSIE (exact reference)…");
    let josie = JosieIndex::build(&bench.repo);

    // Per query: exact top-k ids and their joinability scores.
    let exact: Vec<(Vec<ColumnId>, Vec<f64>)> = bench
        .queries
        .iter()
        .map(|(q, _)| {
            let hits = josie.search(q, max_k);
            (
                hits.iter().map(|s| s.id).collect(),
                hits.iter().map(|s| s.score).collect(),
            )
        })
        .collect();

    methods
        .iter()
        .map(|m| {
            let mut precision = vec![Vec::new(); ks.len()];
            let mut ndcg = vec![Vec::new(); ks.len()];
            for ((q, _), (exact_ids, exact_scores)) in bench.queries.iter().zip(&exact) {
                let got = (m.search)(q, max_k);
                let got_scores: Vec<f64> = got
                    .iter()
                    .map(|&id| deepjoin_lake::equi_joinability(q, bench.repo.column(id)))
                    .collect();
                for (ki, &k) in ks.iter().enumerate() {
                    precision[ki].push(precision_at_k(&got, exact_ids, k));
                    ndcg[ki].push(ndcg_at_k(&got_scores, exact_scores, k));
                }
            }
            AccuracyRow {
                name: m.name.clone(),
                precision: precision.iter().map(|v| mean(v)).collect(),
                ndcg: ndcg.iter().map(|v| mean(v)).collect(),
            }
        })
        .collect()
}

/// Pre-embedded semantic evaluation state (PEXESO is the exact reference,
/// Definition 2.3 the gain function).
pub struct SemanticEval {
    /// Embedded repository (for joinability gains).
    pub embedded: EmbeddedRepository,
    /// PEXESO index over it.
    pub pexeso: PexesoIndex,
    /// Embedded queries, parallel to `bench.queries`.
    pub query_vecs: Vec<ColumnVectors>,
}

impl SemanticEval {
    /// Embed the repository and queries and build PEXESO.
    pub fn build(bench: &Bench) -> Self {
        eprintln!("  embedding repository into 𝒱 + building PEXESO…");
        let embedded = EmbeddedRepository::build(&bench.space, &bench.repo);
        let pexeso = PexesoIndex::build(&embedded.columns, PexesoConfig::default());
        let query_vecs = bench
            .queries
            .iter()
            .map(|(q, _)| bench.space.embed_column(q))
            .collect();
        Self {
            embedded,
            pexeso,
            query_vecs,
        }
    }
}

/// Evaluate `methods` on semantic joins at threshold `tau`.
pub fn eval_semantic(
    bench: &Bench,
    sem: &SemanticEval,
    methods: &[SearchFn],
    tau: f64,
    ks: &[usize],
) -> Vec<AccuracyRow> {
    let max_k = ks.iter().copied().max().unwrap_or(10);

    let exact: Vec<(Vec<ColumnId>, Vec<f64>)> = sem
        .query_vecs
        .iter()
        .map(|qv| {
            let hits = sem.pexeso.search(qv, tau, max_k);
            (
                hits.iter().map(|s| s.id).collect(),
                hits.iter().map(|s| s.score).collect(),
            )
        })
        .collect();

    methods
        .iter()
        .map(|m| {
            let mut precision = vec![Vec::new(); ks.len()];
            let mut ndcg = vec![Vec::new(); ks.len()];
            for (((q, _), qv), (exact_ids, exact_scores)) in
                bench.queries.iter().zip(&sem.query_vecs).zip(&exact)
            {
                let got = (m.search)(q, max_k);
                let got_scores: Vec<f64> = got
                    .iter()
                    .map(|&id| {
                        CellSpace::semantic_joinability(
                            qv,
                            &sem.embedded.columns[id.index()],
                            tau,
                        )
                    })
                    .collect();
                for (ki, &k) in ks.iter().enumerate() {
                    precision[ki].push(precision_at_k(&got, exact_ids, k));
                    ndcg[ki].push(ndcg_at_k(&got_scores, exact_scores, k));
                }
            }
            AccuracyRow {
                name: m.name.clone(),
                precision: precision.iter().map(|v| mean(v)).collect(),
                ndcg: ndcg.iter().map(|v| mean(v)).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::fasttext_method;
    use crate::scale::Scale;
    use deepjoin_lake::corpus::CorpusProfile;

    #[test]
    fn equi_eval_produces_rows() {
        let bench = Bench::new(CorpusProfile::Webtable, Scale::smoke(), 9);
        let methods = vec![fasttext_method(&bench)];
        let rows = eval_equi(&bench, &methods, &[5, 10]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].precision.len(), 2);
        for (&p, &n) in rows[0].precision.iter().zip(&rows[0].ndcg) {
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&n));
        }
    }

    #[test]
    fn exact_method_scores_perfectly_on_equi() {
        // JOSIE evaluated against itself must give precision 1 and NDCG 1.
        let bench = Bench::new(CorpusProfile::Webtable, Scale::smoke(), 10);
        let josie = deepjoin_josie::JosieIndex::build(&bench.repo);
        let m = SearchFn {
            name: "JOSIE".into(),
            search: Box::new(move |q, k| josie.search(q, k).into_iter().map(|s| s.id).collect()),
        };
        let rows = eval_equi(&bench, &[m], &[10]);
        assert!(rows[0].ndcg[0] > 0.999, "ndcg {}", rows[0].ndcg[0]);
        // Precision can dip below 1 only through ties; allow slack for that.
        assert!(rows[0].precision[0] > 0.8, "prec {}", rows[0].precision[0]);
    }
}
