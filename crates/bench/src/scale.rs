//! Experiment scales (DESIGN.md §7).

/// How large to run an experiment. The paper's scales (30K training
/// columns, 1M-5M test columns) are reduced; the *ratios* (train ≪ test,
/// 50 queries) are kept so generalization is still exercised.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Columns in the training repository (paper: 30K).
    pub train_cols: usize,
    /// Columns in the test repository 𝒳 (paper: 1M).
    pub test_cols: usize,
    /// Number of queries (paper: 50).
    pub queries: usize,
    /// Embedding dimensionality (paper: 768).
    pub dim: usize,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// SGNS pre-training epochs.
    pub sgns_epochs: usize,
    /// Cap on training pairs after the self-join.
    pub max_pairs: usize,
}

impl Scale {
    /// Seconds-scale smoke runs (CI).
    pub fn smoke() -> Self {
        Self {
            train_cols: 700,
            test_cols: 1_500,
            queries: 12,
            dim: 32,
            epochs: 6,
            sgns_epochs: 1,
            max_pairs: 6_000,
        }
    }

    /// Minutes-scale default.
    pub fn small() -> Self {
        Self {
            train_cols: 2_000,
            test_cols: 8_000,
            queries: 30,
            dim: 64,
            epochs: 6,
            sgns_epochs: 2,
            max_pairs: 12_000,
        }
    }

    /// The largest configuration exercised here.
    pub fn full() -> Self {
        Self {
            train_cols: 3_000,
            test_cols: 20_000,
            queries: 50,
            dim: 64,
            epochs: 8,
            sgns_epochs: 2,
            max_pairs: 20_000,
        }
    }

    /// Resolve from the `DJ_SCALE` environment variable
    /// (`smoke`/`small`/`full`; default `small`).
    pub fn from_env() -> Self {
        match std::env::var("DJ_SCALE").as_deref() {
            Ok("smoke") => Self::smoke(),
            Ok("full") => Self::full(),
            _ => Self::small(),
        }
    }

    /// A short label for experiment output.
    pub fn label(&self) -> String {
        format!(
            "train={} test={} queries={} dim={}",
            self.train_cols, self.test_cols, self.queries, self.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let (s, m, f) = (Scale::smoke(), Scale::small(), Scale::full());
        assert!(s.test_cols < m.test_cols && m.test_cols < f.test_cols);
        assert!(s.train_cols <= m.train_cols && m.train_cols <= f.train_cols);
    }

    #[test]
    fn env_fallback_is_small() {
        std::env::remove_var("DJ_SCALE");
        assert_eq!(Scale::from_env().test_cols, Scale::small().test_cols);
    }

    #[test]
    fn label_mentions_sizes() {
        let l = Scale::smoke().label();
        assert!(l.contains("train=700"));
    }
}
