//! Corpus and model setup shared by all experiments.

use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::text::TransformOption;
use deepjoin::train::{FineTuneConfig, JoinType, TrainDataConfig};
use deepjoin_embed::cell_space::CellSpace;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_embed::sgns::SgnsConfig;
use deepjoin_lake::column::Column;
use deepjoin_lake::corpus::{ColumnProvenance, Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::repository::Repository;
use deepjoin_nn::adam::AdamConfig;

use crate::scale::Scale;

/// Join type + its parameters, as the experiments name them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinKind {
    /// Equi-joins (Tables 3, 9, 11, …).
    Equi,
    /// Semantic joins at threshold τ (Tables 4-6, 10, 12, …).
    Semantic(f64),
}

impl JoinKind {
    /// Convert to the core crate's join type.
    pub fn to_join_type(self) -> JoinType {
        match self {
            JoinKind::Equi => JoinType::Equi,
            JoinKind::Semantic(tau) => JoinType::Semantic { tau },
        }
    }

    /// Human label.
    pub fn label(self) -> String {
        match self {
            JoinKind::Equi => "equi".to_string(),
            JoinKind::Semantic(tau) => format!("semantic(tau={tau})"),
        }
    }
}

/// One experiment environment: corpus, repositories and queries.
pub struct Bench {
    /// Profile used.
    pub profile: CorpusProfile,
    /// The generated corpus (training + test pool).
    pub corpus: Corpus,
    /// Test repository 𝒳.
    pub repo: Repository,
    /// Ground-truth provenance parallel to `repo`.
    pub provenance: Vec<ColumnProvenance>,
    /// Training repository (disjoint generation seed from queries).
    pub train_repo: Repository,
    /// Query columns with provenance (sampled outside 𝒳).
    pub queries: Vec<(Column, ColumnProvenance)>,
    /// The cell-embedding space 𝒱 (shared by PEXESO and labeling).
    pub space: CellSpace,
    /// Scale used.
    pub scale: Scale,
}

impl Bench {
    /// Build the environment for `profile` at `scale`.
    ///
    /// The training repository is a separately generated lake over the same
    /// domain catalog scale (fresh tables, same generator), mirroring the
    /// paper's train/test split of a corpus.
    pub fn new(profile: CorpusProfile, scale: Scale, seed: u64) -> Self {
        let corpus = Corpus::generate(CorpusConfig::new(profile, scale.test_cols, seed));
        let (repo, provenance) = corpus.to_repository();

        // Training columns: fresh draws from the same corpus generator
        // (same catalog), not contained in the repository.
        let train_cols = corpus.sample_queries(scale.train_cols, seed ^ 0x7EA1);
        let train_repo =
            Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));

        let queries = corpus.sample_queries(scale.queries, seed ^ 0x0BEE);
        let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
            dim: scale.dim,
            ..NgramConfig::default()
        }));
        Self {
            profile,
            corpus,
            repo,
            provenance,
            train_repo,
            queries,
            space,
            scale,
        }
    }

    /// The DeepJoin configuration used across experiments at this scale.
    pub fn deepjoin_config(
        &self,
        variant: Variant,
        transform: TransformOption,
        shuffle_rate: f64,
    ) -> DeepJoinConfig {
        let scale = &self.scale;
        DeepJoinConfig {
            variant,
            dim: scale.dim,
            transform,
            max_cells: 48,
            max_tokens: 160,
            oov_buckets: 4096,
            sgns: SgnsConfig {
                dim: scale.dim,
                epochs: scale.sgns_epochs,
                ..SgnsConfig::default()
            },
            data: TrainDataConfig {
                threshold: 0.7,
                shuffle_rate,
                max_pairs: scale.max_pairs,
                seed: 0x7247,
            },
            fine_tune: FineTuneConfig {
                epochs: scale.epochs,
                batch_size: 32,
                mnr_scale: 20.0,
                adam: AdamConfig {
                    lr: 5e-3,
                    warmup_steps: 50,
                    ..AdamConfig::default()
                },
                seed: 0xF17E,
            },
            hnsw: Default::default(),
            seed: 0xDEE9,
        }
    }

    /// Train a DeepJoin model for this bench.
    pub fn train_deepjoin(
        &self,
        variant: Variant,
        kind: JoinKind,
        transform: TransformOption,
        shuffle_rate: f64,
    ) -> DeepJoin {
        let cfg = self.deepjoin_config(variant, transform, shuffle_rate);
        let (mut model, report) = DeepJoin::train(&self.train_repo, kind.to_join_type(), cfg);
        eprintln!(
            "  [train {} {}] positives={} pairs={} vocab={} final_loss={:.3}",
            variant.name(),
            kind.label(),
            report.num_positives,
            report.num_pairs,
            report.vocab_size,
            report.epoch_losses.last().copied().unwrap_or(f32::NAN),
        );
        model.index_repository(&self.repo);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_setup_smoke() {
        let b = Bench::new(CorpusProfile::Webtable, Scale::smoke(), 1);
        let s = Scale::smoke();
        assert!(b.repo.len() > s.test_cols * 9 / 10);
        assert_eq!(b.queries.len(), s.queries);
        assert!(b.train_repo.len() >= s.train_cols * 9 / 10);
        assert_eq!(b.repo.len(), b.provenance.len());
    }

    #[test]
    fn join_kind_labels() {
        assert_eq!(JoinKind::Equi.label(), "equi");
        assert!(JoinKind::Semantic(0.9).label().contains("0.9"));
    }
}
