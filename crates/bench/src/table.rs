//! Plain-text table printing for experiment output, in the paper's layout.

use crate::eval::AccuracyRow;

/// Print one accuracy table (precision@k | NDCG@k blocks) with an optional
/// per-method paper reference line underneath each row.
pub fn print_accuracy_table(
    title: &str,
    ks: &[usize],
    rows: &[AccuracyRow],
    paper: &[(&str, &[f64], &[f64])],
) {
    println!("\n=== {title} ===");
    print!("{:<22}", "Method");
    for k in ks {
        print!(" P@{k:<5}");
    }
    print!(" |");
    for k in ks {
        print!(" N@{k:<5}");
    }
    println!();
    println!("{}", "-".repeat(24 + ks.len() * 16));
    for row in rows {
        print!("{:<22}", row.name);
        for p in &row.precision {
            print!(" {p:<7.3}");
        }
        print!(" |");
        for n in &row.ndcg {
            print!(" {n:<7.3}");
        }
        println!();
        if let Some((_, pp, pn)) = paper.iter().find(|(name, _, _)| *name == row.name) {
            print!("{:<22}", "  (paper)");
            for p in pp.iter() {
                print!(" {p:<7.3}");
            }
            print!(" |");
            for n in pn.iter() {
                print!(" {n:<7.3}");
            }
            println!();
        }
    }
}

/// Print a timing table: method name + a column of mean milliseconds per
/// sweep point.
pub fn print_timing_table(title: &str, header: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n=== {title} ===");
    print!("{:<22}", "Method");
    for h in header {
        print!(" {h:>10}");
    }
    println!();
    println!("{}", "-".repeat(24 + header.len() * 11));
    for (name, vals) in rows {
        print!("{name:<22}");
        for v in vals {
            print!(" {v:>10.2}");
        }
        println!();
    }
}

/// Format a mean-of-slice for inline reporting.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.2} ms")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_print_without_panic() {
        let rows = vec![AccuracyRow {
            name: "fastText".into(),
            precision: vec![0.5, 0.6],
            ndcg: vec![0.7, 0.8],
        }];
        print_accuracy_table(
            "demo",
            &[10, 20],
            &rows,
            &[("fastText", &[0.68, 0.726][..], &[0.731, 0.721][..])],
        );
        print_timing_table(
            "timing",
            &["1K".to_string(), "2K".to_string()],
            &[("JOSIE".to_string(), vec![5.0, 9.0])],
        );
        assert_eq!(fmt_ms(1.234), "1.23 ms");
    }
}
