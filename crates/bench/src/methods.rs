//! Uniform construction of every compared method (§5.1 "Methods").

use deepjoin::baselines::{
    ColumnEmbedder, EmbeddingRetriever, FastTextEmbedder, MlpEmbedder, SgnsAvgEmbedder,
};
use deepjoin::model::{DeepJoin, Variant};
use deepjoin::text::{TransformOption, Textizer};
use deepjoin::train::JoinType;
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_embed::sgns::{train_sgns, SgnsConfig};
use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::tokenizer::Vocabulary;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_nn::mlp::{MlpConfig, MlpRegressor};

use crate::setup::{Bench, JoinKind};

/// A boxed `(query, k) -> top-k column ids` search closure.
pub type TopkFn = Box<dyn Fn(&Column, usize) -> Vec<ColumnId>>;

/// A method under test: name + top-k search function returning column ids.
pub struct SearchFn {
    /// Display name (matches the paper's tables).
    pub name: String,
    /// `(query, k) -> top-k column ids` in rank order.
    pub search: TopkFn,
}

impl SearchFn {
    fn new<F: Fn(&Column, usize) -> Vec<ColumnId> + 'static>(name: &str, f: F) -> Self {
        Self {
            name: name.to_string(),
            search: Box::new(f),
        }
    }
}

/// The set of methods compared in an accuracy experiment.
pub struct MethodSet {
    /// Methods in table order.
    pub methods: Vec<SearchFn>,
}

/// The contextualizer all embedding baselines share (the paper gives every
/// embedding method the same scheme as DeepJoin).
fn baseline_textizer(bench: &Bench) -> Textizer {
    let freq = deepjoin::text::CellFrequencies::build(&bench.train_repo);
    Textizer::new(TransformOption::TitleColnameStatCol, 48).with_frequencies(freq)
}

fn ngram(bench: &Bench) -> NgramEmbedder {
    NgramEmbedder::new(NgramConfig {
        dim: bench.scale.dim,
        ..NgramConfig::default()
    })
}

/// Build the `fastText` baseline retriever.
pub fn fasttext_method(bench: &Bench) -> SearchFn {
    let retr = EmbeddingRetriever::build(
        FastTextEmbedder {
            ngram: ngram(bench),
            textizer: baseline_textizer(bench),
        },
        &bench.repo,
        Default::default(),
    );
    SearchFn::new("fastText", move |q, k| {
        retr.search(q, k).into_iter().map(|s| s.id).collect()
    })
}

/// Build an un-fine-tuned SGNS-average baseline. `label` selects the
/// pre-training recipe: "BERT" (window 4), "MPNet" (window 6, more epochs),
/// "TaBERT" (pre-trained on table context only — the QA-flavoured objective
/// that misaligns with join discovery).
pub fn sgns_avg_method(bench: &Bench, label: &str) -> SearchFn {
    let textizer = baseline_textizer(bench);
    let (texts, cfg): (Vec<String>, SgnsConfig) = match label {
        "TaBERT" => (
            bench
                .train_repo
                .columns()
                .iter()
                .map(|c| format!("{} {}", c.meta.table_title, c.meta.table_context))
                .collect(),
            SgnsConfig {
                dim: bench.scale.dim,
                window: 4,
                epochs: bench.scale.sgns_epochs,
                ..SgnsConfig::default()
            },
        ),
        "MPNet" => (
            bench
                .train_repo
                .columns()
                .iter()
                .map(|c| textizer.transform(c))
                .collect(),
            SgnsConfig {
                dim: bench.scale.dim,
                window: 6,
                epochs: bench.scale.sgns_epochs + 1,
                seed: 0x3315,
                ..SgnsConfig::default()
            },
        ),
        _ => (
            bench
                .train_repo
                .columns()
                .iter()
                .map(|c| textizer.transform(c))
                .collect(),
            SgnsConfig {
                dim: bench.scale.dim,
                window: 4,
                epochs: bench.scale.sgns_epochs,
                ..SgnsConfig::default()
            },
        ),
    };
    let vocab = Vocabulary::build(texts.iter().map(String::as_str), 1);
    let sentences: Vec<Vec<_>> = texts.iter().map(|t| vocab.encode(t)).collect();
    let embeddings = train_sgns(&vocab, &sentences, cfg);
    let retr = EmbeddingRetriever::build(
        SgnsAvgEmbedder {
            embeddings,
            vocab,
            textizer,
            label: label.to_string(),
        },
        &bench.repo,
        Default::default(),
    );
    let name = label.to_string();
    SearchFn::new(&name, move |q, k| {
        retr.search(q, k).into_iter().map(|s| s.id).collect()
    })
}

/// Build the MLP regression baseline: trained on self-join positives (with
/// their joinability) plus random negatives, over fastText features.
pub fn mlp_method(bench: &Bench, kind: JoinKind) -> SearchFn {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let features = FastTextEmbedder {
        ngram: ngram(bench),
        textizer: baseline_textizer(bench),
    };
    // Labeled pairs from the training repository self-join.
    let data_cfg = deepjoin::train::TrainDataConfig {
        max_pairs: bench.scale.max_pairs,
        ..Default::default()
    };
    let positives = deepjoin::train::self_join_positives(
        &bench.train_repo,
        match kind {
            JoinKind::Equi => JoinType::Equi,
            JoinKind::Semantic(tau) => JoinType::Semantic { tau },
        },
        &bench.space,
        &data_cfg,
    );
    let mut rng = StdRng::seed_from_u64(0x31A9);
    let n_train = bench.train_repo.len() as u32;
    let mut examples = Vec::new();
    for &(x, y, jn) in positives.iter().take(bench.scale.max_pairs / 2) {
        let fx = features.embed(bench.train_repo.column(x));
        let fy = features.embed(bench.train_repo.column(y));
        examples.push((fx, fy, jn as f32));
    }
    // Random pairs as (mostly zero-joinability) negatives.
    let negatives = examples.len();
    for _ in 0..negatives {
        let a = ColumnId(rng.gen_range(0..n_train));
        let b = ColumnId(rng.gen_range(0..n_train));
        let jn = deepjoin_lake::equi_joinability(
            bench.train_repo.column(a),
            bench.train_repo.column(b),
        );
        examples.push((
            features.embed(bench.train_repo.column(a)),
            features.embed(bench.train_repo.column(b)),
            jn as f32,
        ));
    }
    let mut mlp = MlpRegressor::new(MlpConfig {
        in_dim: bench.scale.dim,
        hidden: bench.scale.dim,
        out_dim: bench.scale.dim,
        epochs: 5,
        ..MlpConfig::default()
    });
    if !examples.is_empty() {
        mlp.train(&examples);
    }
    let retr = EmbeddingRetriever::build(
        MlpEmbedder {
            features,
            mlp: std::cell::RefCell::new(mlp),
            out_dim: bench.scale.dim,
        },
        &bench.repo,
        Default::default(),
    );
    SearchFn::new("MLP", move |q, k| {
        retr.search(q, k).into_iter().map(|s| s.id).collect()
    })
}

/// Build the LSH Ensemble baseline.
///
/// `num_perm` is reduced from the library default (128) to 32: at the
/// paper's 1M-column scale the top-k is decided by containment gaps smaller
/// than the 128-perm estimator noise, which is what makes LSH Ensemble
/// mediocre there. At our reduced repository sizes the same noise-to-gap
/// ratio needs a smaller sketch (calibrated substitution, DESIGN.md §1).
pub fn lsh_method(bench: &Bench) -> SearchFn {
    let idx = LshEnsembleIndex::build(
        &bench.repo,
        LshEnsembleConfig {
            num_perm: 32,
            ..Default::default()
        },
    );
    SearchFn::new("LSH Ensemble", move |q, k| {
        idx.search(q, k).into_iter().map(|s| s.id).collect()
    })
}

/// Wrap a trained DeepJoin model as a method.
pub fn deepjoin_method(model: DeepJoin, name: &str) -> SearchFn {
    SearchFn::new(name, move |q, k| {
        model.search(q, k).into_iter().map(|s| s.id).collect()
    })
}

impl MethodSet {
    /// The full equi-join line-up of Table 3.
    pub fn equi_lineup(bench: &Bench) -> Self {
        eprintln!("  building LSH Ensemble…");
        let lsh = lsh_method(bench);
        eprintln!("  building fastText…");
        let ft = fasttext_method(bench);
        eprintln!("  building BERT (no fine-tuning)…");
        let bert = sgns_avg_method(bench, "BERT");
        eprintln!("  building MPNet (no fine-tuning)…");
        let mpnet = sgns_avg_method(bench, "MPNet");
        eprintln!("  building TaBERT-like…");
        let tabert = sgns_avg_method(bench, "TaBERT");
        eprintln!("  building MLP…");
        let mlp = mlp_method(bench, JoinKind::Equi);
        eprintln!("  training DeepJoin (DistilLite)…");
        let dj_d = deepjoin_method(
            bench.train_deepjoin(
                Variant::DistilLite,
                JoinKind::Equi,
                TransformOption::TitleColnameStatCol,
                0.2,
            ),
            "DeepJoin-DistilLite",
        );
        eprintln!("  training DeepJoin (MPLite)…");
        let dj_m = deepjoin_method(
            bench.train_deepjoin(
                Variant::MpLite,
                JoinKind::Equi,
                TransformOption::TitleColnameStatCol,
                0.2,
            ),
            "DeepJoin-MPLite",
        );
        Self {
            methods: vec![lsh, ft, bert, mpnet, tabert, mlp, dj_d, dj_m],
        }
    }

    /// The semantic-join line-up of Tables 4-6 (LSH Ensemble, fastText, the
    /// two DeepJoin variants).
    pub fn semantic_lineup(bench: &Bench, tau: f64, shuffle_rate: f64) -> Self {
        eprintln!("  building LSH Ensemble…");
        let lsh = lsh_method(bench);
        eprintln!("  building fastText…");
        let ft = fasttext_method(bench);
        eprintln!("  training DeepJoin (DistilLite)…");
        let dj_d = deepjoin_method(
            bench.train_deepjoin(
                Variant::DistilLite,
                JoinKind::Semantic(tau),
                TransformOption::TitleColnameStatCol,
                shuffle_rate,
            ),
            "DeepJoin-DistilLite",
        );
        eprintln!("  training DeepJoin (MPLite)…");
        let dj_m = deepjoin_method(
            bench.train_deepjoin(
                Variant::MpLite,
                JoinKind::Semantic(tau),
                TransformOption::TitleColnameStatCol,
                shuffle_rate,
            ),
            "DeepJoin-MPLite",
        );
        Self {
            methods: vec![lsh, ft, dj_d, dj_m],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use deepjoin_lake::corpus::CorpusProfile;

    #[test]
    fn baseline_methods_return_k_results() {
        let bench = Bench::new(CorpusProfile::Webtable, Scale::smoke(), 5);
        for m in [lsh_method(&bench), fasttext_method(&bench)] {
            let (q, _) = &bench.queries[0];
            let ids = (m.search)(q, 5);
            assert!(ids.len() <= 5);
            assert!(!ids.is_empty(), "{} returned nothing", m.name);
        }
    }
}
