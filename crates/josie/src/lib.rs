//! # deepjoin-josie
//!
//! JOSIE (Zhu et al., SIGMOD'19): exact top-k overlap set-similarity search —
//! the exact equi-join baseline of the DeepJoin evaluation.
//!
//! JOSIE regards every distinct cell value as a token, orders the token
//! universe by ascending frequency (rare tokens first), builds an inverted
//! index with *positional* postings, and answers a top-k query by reading
//! posting lists in token order while maintaining a candidate set:
//!
//! * **prefix filter** — once the number of unread query tokens can no
//!   longer beat the current top-k lower bound θ, no *new* candidate can
//!   enter the answer, so index reading stops;
//! * **positional filter** — a candidate's overlap upper bound combines its
//!   partial count with `min(unread query tokens, unread candidate tokens)`,
//!   where the candidate's unread count comes from the matched token's
//!   position in the candidate's own frequency-ordered token list;
//! * **verification** — surviving candidates are verified exactly in
//!   descending upper-bound order with early exit at θ.
//!
//! JOSIE's cost-model-driven alternation of reads and verifications is
//! simplified here to the classic "read prefix, then verify" schedule: the
//! result is identical (exact), only the constant factors differ — and the
//! complexity the paper reports, `O(|𝒳|·(|Q|+|X̄|))` worst case, is
//! unchanged, which is what the efficiency experiments measure.

#![warn(missing_docs)]

use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::joinability::{rank_and_truncate, ScoredColumn};
use deepjoin_lake::repository::Repository;

/// One posting: the column containing the token and the token's position in
/// that column's frequency-ordered token list.
#[derive(Debug, Clone, Copy)]
struct Posting {
    col: u32,
    pos: u32,
}

/// The JOSIE inverted index over a repository.
pub struct JosieIndex {
    /// token string -> token id (ids ordered by ascending frequency).
    dict: FxHashMap<String, u32>,
    /// token id -> postings (ascending column id).
    postings: Vec<Vec<Posting>>,
    /// column id -> its token ids sorted ascending (frequency order).
    col_tokens: Vec<Vec<u32>>,
}

impl JosieIndex {
    /// Build the index over `repo`.
    pub fn build(repo: &Repository) -> Self {
        // Count token frequencies (distinct per column).
        let mut freq: FxHashMap<&str, u32> = FxHashMap::default();
        for col in repo.columns() {
            for cell in col.distinct() {
                *freq.entry(cell.as_str()).or_insert(0) += 1;
            }
        }
        // Order tokens by ascending frequency (ties lexicographic) so that
        // low ids = rare tokens; the prefix reads rare tokens first.
        let mut tokens: Vec<(&str, u32)> = freq.into_iter().collect();
        tokens.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
        let mut dict: FxHashMap<String, u32> = FxHashMap::default();
        for (i, (tok, _)) in tokens.iter().enumerate() {
            dict.insert((*tok).to_string(), i as u32);
        }

        // Per-column sorted token lists + postings with positions.
        let mut col_tokens: Vec<Vec<u32>> = Vec::with_capacity(repo.len());
        let mut postings: Vec<Vec<Posting>> = vec![Vec::new(); dict.len()];
        for (id, col) in repo.iter() {
            let mut tids: Vec<u32> = col.distinct().iter().map(|c| dict[c.as_str()]).collect();
            tids.sort_unstable();
            for (pos, &t) in tids.iter().enumerate() {
                postings[t as usize].push(Posting {
                    col: id.0,
                    pos: pos as u32,
                });
            }
            col_tokens.push(tids);
        }
        Self {
            dict,
            postings,
            col_tokens,
        }
    }

    /// Number of indexed columns.
    pub fn len(&self) -> usize {
        self.col_tokens.len()
    }

    /// True when no column is indexed.
    pub fn is_empty(&self) -> bool {
        self.col_tokens.is_empty()
    }

    /// Size of the token universe.
    pub fn universe(&self) -> usize {
        self.postings.len()
    }

    /// Exact top-k columns by equi-joinability `|Q∩X| / |Q|`.
    ///
    /// Ranking by overlap and by joinability coincide for a fixed query, so
    /// scores are reported as joinability to match Problem 1.
    pub fn search(&self, query: &Column, k: usize) -> Vec<ScoredColumn> {
        let q_distinct = query.distinct();
        let q_size = q_distinct.len();
        if q_size == 0 || k == 0 || self.col_tokens.is_empty() {
            return Vec::new();
        }
        // Map query cells to token ids; unseen tokens can never match.
        let mut q_tids: Vec<u32> = q_distinct
            .iter()
            .filter_map(|c| self.dict.get(c.as_str()).copied())
            .collect();
        q_tids.sort_unstable(); // ascending id = ascending frequency

        // Phase 1: read posting lists in prefix order, accumulating counts
        // and the last matched position per candidate.
        let mut counts: FxHashMap<u32, (u32, u32)> = FxHashMap::default(); // col -> (count, last_pos)
        let mut theta: u32 = 0; // kth-best overlap lower bound
        let mut read = 0usize;
        let total = q_tids.len();
        for (i, &t) in q_tids.iter().enumerate() {
            let remaining = (total - i) as u32;
            // Prefix filter: unseen candidates can reach at most `remaining`.
            if remaining <= theta && counts.len() >= k {
                read = i;
                break;
            }
            for p in &self.postings[t as usize] {
                let e = counts.entry(p.col).or_insert((0, 0));
                e.0 += 1;
                e.1 = p.pos;
            }
            read = i + 1;
            // Update θ cheaply: counts are lower bounds on overlap.
            if counts.len() >= k {
                theta = kth_largest(counts.values().map(|&(c, _)| c), k);
            }
        }
        let unread = (total - read) as u32;

        // Phase 2: verify candidates in descending upper-bound order.
        let mut cands: Vec<(u32, u32, u32)> = counts
            .into_iter()
            .map(|(col, (count, last_pos))| {
                let x_len = self.col_tokens[col as usize].len() as u32;
                // Positional filter: the candidate has `x_len − last_pos − 1`
                // tokens after its last match; overlap can grow by at most
                // min(unread query tokens, those).
                let ub = count + unread.min(x_len.saturating_sub(last_pos + 1));
                (col, count, ub)
            })
            .collect();
        cands.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));

        let mut top: Vec<(u32, u32)> = Vec::with_capacity(k + 1); // (overlap, col)
        let mut theta: u32 = 0;
        for (col, count, ub) in cands {
            if top.len() >= k && ub <= theta {
                break; // no remaining candidate can improve the top-k
            }
            let overlap = if unread == 0 {
                count // prefix covered the whole query: counts are exact
            } else {
                self.verify(col, &q_tids)
            };
            top.push((overlap, col));
            top.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
            top.truncate(k);
            if top.len() >= k {
                theta = top[k - 1].0;
            }
        }

        let mut scored: Vec<ScoredColumn> = top
            .into_iter()
            .map(|(overlap, col)| ScoredColumn {
                id: ColumnId(col),
                score: overlap as f64 / q_size as f64,
            })
            .collect();
        // Problem 1 asks for exactly k results; when fewer than k columns
        // share any token with the query, pad with zero-score columns
        // (lowest ids first — the same tie-break the reference uses).
        if scored.len() < k {
            let present: deepjoin_lake::fxhash::FxHashSet<u32> =
                scored.iter().map(|s| s.id.0).collect();
            for col in 0..self.col_tokens.len() as u32 {
                if scored.len() >= k.min(self.col_tokens.len()) {
                    break;
                }
                if !present.contains(&col) {
                    scored.push(ScoredColumn {
                        id: ColumnId(col),
                        score: 0.0,
                    });
                }
            }
        }
        rank_and_truncate(scored, k)
    }

    /// Exact overlap of candidate `col` with the sorted query token list.
    fn verify(&self, col: u32, q_tids: &[u32]) -> u32 {
        let x = &self.col_tokens[col as usize];
        // Sorted-list intersection (both ascending).
        let mut i = 0usize;
        let mut j = 0usize;
        let mut overlap = 0u32;
        while i < q_tids.len() && j < x.len() {
            match q_tids[i].cmp(&x[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    overlap += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        overlap
    }
}

/// kth largest value of an iterator (1-based k). Returns 0 when fewer than
/// `k` values exist or `k == 0`.
fn kth_largest<I: Iterator<Item = u32>>(iter: I, k: usize) -> u32 {
    if k == 0 {
        return 0;
    }
    let mut vals: Vec<u32> = iter.collect();
    if vals.len() < k {
        return 0;
    }
    let idx = vals.len() - k;
    vals.select_nth_unstable(idx);
    vals[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_lake::joinability::brute_force_topk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn col(cells: &[&str]) -> Column {
        Column::from_cells(cells.iter().copied())
    }

    #[test]
    fn matches_brute_force_on_small_repo() {
        let repo = Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),
            col(&["a", "b", "x", "y", "z"]),
            col(&["p", "q", "r", "s", "t"]),
            col(&["a", "c", "e", "g", "i"]),
        ]);
        let idx = JosieIndex::build(&repo);
        let q = col(&["a", "b", "c", "e", "g"]);
        let got = idx.search(&q, 3);
        let want = brute_force_topk(&repo, &q, 3);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id);
            assert!((g.score - w.score).abs() < 1e-12);
        }
    }

    #[test]
    fn exactness_on_random_repositories() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let repo = Repository::from_columns((0..60).map(|_| {
                let len = rng.gen_range(5..40);
                Column::from_cells((0..len).map(|_| format!("v{}", rng.gen_range(0..120))))
            }));
            let idx = JosieIndex::build(&repo);
            let qlen = rng.gen_range(5..40);
            let q = Column::from_cells((0..qlen).map(|_| format!("v{}", rng.gen_range(0..120))));
            for k in [1, 5, 10] {
                let got = idx.search(&q, k);
                let want = brute_force_topk(&repo, &q, k);
                let got_scores: Vec<f64> = got.iter().map(|s| s.score).collect();
                let want_scores: Vec<f64> = want.iter().map(|s| s.score).collect();
                assert_eq!(got_scores, want_scores, "trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn query_with_unseen_tokens() {
        let repo = Repository::from_columns(vec![col(&["a", "b", "c", "d", "e"])]);
        let idx = JosieIndex::build(&repo);
        let q = col(&["zz", "yy", "a"]);
        let got = idx.search(&q, 1);
        assert_eq!(got.len(), 1);
        assert!((got[0].score - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_query_yields_no_positive_scores() {
        let repo = Repository::from_columns(vec![col(&["a", "b", "c", "d", "e"])]);
        let idx = JosieIndex::build(&repo);
        let got = idx.search(&col(&["x", "y", "z"]), 5);
        assert!(got.iter().all(|s| s.score == 0.0));
    }

    #[test]
    fn k_zero_and_empty_query() {
        let repo = Repository::from_columns(vec![col(&["a", "b", "c", "d", "e"])]);
        let idx = JosieIndex::build(&repo);
        assert!(idx.search(&col(&["a"]), 0).is_empty());
        assert!(idx.search(&col(&[]), 3).is_empty());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.universe(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn duplicates_in_query_do_not_inflate() {
        let repo = Repository::from_columns(vec![
            col(&["a", "b", "c", "d", "e"]),
            col(&["a", "a", "a", "b", "b"]),
        ]);
        let idx = JosieIndex::build(&repo);
        let q = col(&["a", "a", "b"]);
        let got = idx.search(&q, 2);
        // distinct(q) = {a, b}; both columns contain both -> jn = 1.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].score, 1.0);
        assert_eq!(got[1].score, 1.0);
    }
}
