//! # deepjoin-lshensemble
//!
//! LSH Ensemble (Zhu et al., PVLDB'16) — the approximate equi-join baseline
//! of the DeepJoin evaluation: MinHash sketches ([`minhash`]) plus an
//! equi-depth size-partitioned LSH with per-partition containment→Jaccard
//! conversion ([`ensemble`]).

#![warn(missing_docs)]

pub mod ensemble;
pub mod minhash;

pub use ensemble::{LshEnsembleConfig, LshEnsembleIndex};
pub use minhash::{MinHashSketch, MinHasher};
