//! MinHash signatures (Broder 1997).
//!
//! A column's distinct cell set is sketched with `n` independent
//! permutations approximated by universal hashing: `hᵢ(x) = (aᵢ·h(x) + bᵢ)
//! mod p`, keeping the minimum per permutation. The fraction of agreeing
//! components is an unbiased estimator of Jaccard similarity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use deepjoin_lake::fxhash::hash_bytes;

/// Mersenne prime 2^61 − 1 used as the universal-hash modulus.
const P: u64 = (1 << 61) - 1;

/// A family of `n` seeded hash functions shared by all sketches.
#[derive(Debug, Clone)]
pub struct MinHasher {
    a: Vec<u64>,
    b: Vec<u64>,
}

impl MinHasher {
    /// Create a family of `n` functions from `seed`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "need at least one permutation");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..n).map(|_| rng.gen_range(1..P)).collect();
        let b = (0..n).map(|_| rng.gen_range(0..P)).collect();
        Self { a, b }
    }

    /// Number of permutations.
    pub fn num_perm(&self) -> usize {
        self.a.len()
    }

    /// Sketch an iterator of set elements.
    pub fn sketch<'x, I: IntoIterator<Item = &'x str>>(&self, items: I) -> MinHashSketch {
        let mut mins = vec![u64::MAX; self.num_perm()];
        for item in items {
            let h = hash_bytes(item.as_bytes()) % P;
            for i in 0..self.a.len() {
                // (a*h + b) mod p via u128 to avoid overflow.
                let v = ((self.a[i] as u128 * h as u128 + self.b[i] as u128) % P as u128) as u64;
                if v < mins[i] {
                    mins[i] = v;
                }
            }
        }
        MinHashSketch { mins }
    }
}

/// A MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashSketch {
    /// Per-permutation minima.
    pub mins: Vec<u64>,
}

impl MinHashSketch {
    /// Estimated Jaccard similarity with `other`.
    pub fn jaccard(&self, other: &MinHashSketch) -> f64 {
        assert_eq!(self.mins.len(), other.mins.len(), "incompatible sketches");
        let agree = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        agree as f64 / self.mins.len() as f64
    }

    /// Band `b` of `r` rows hashed to a bucket key (for LSH banding).
    pub fn band_key(&self, band: usize, r: usize) -> u64 {
        let start = band * r;
        let slice = &self.mins[start..start + r];
        let mut acc = 0xcbf2_9ce4_8422_2325u64;
        for &v in slice {
            acc ^= v;
            acc = acc.wrapping_mul(0x1000_0000_01b3);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: std::ops::Range<u32>) -> Vec<String> {
        n.map(|i| format!("item{i}")).collect()
    }

    #[test]
    fn identical_sets_estimate_one() {
        let mh = MinHasher::new(128, 1);
        let items = set(0..50);
        let a = mh.sketch(items.iter().map(String::as_str));
        let b = mh.sketch(items.iter().map(String::as_str));
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let mh = MinHasher::new(128, 2);
        let a = mh.sketch(set(0..50).iter().map(String::as_str));
        let b = mh.sketch(set(100..150).iter().map(String::as_str));
        assert!(a.jaccard(&b) < 0.1);
    }

    #[test]
    fn estimator_is_roughly_unbiased() {
        // |A∩B| = 50, |A∪B| = 150 -> J = 1/3.
        let mh = MinHasher::new(256, 3);
        let a_items = set(0..100);
        let b_items = set(50..150);
        let a = mh.sketch(a_items.iter().map(String::as_str));
        let b = mh.sketch(b_items.iter().map(String::as_str));
        let j = a.jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "estimate {j}");
    }

    #[test]
    fn band_keys_agree_iff_rows_agree() {
        let mh = MinHasher::new(16, 4);
        let items = set(0..30);
        let a = mh.sketch(items.iter().map(String::as_str));
        let b = a.clone();
        for band in 0..4 {
            assert_eq!(a.band_key(band, 4), b.band_key(band, 4));
        }
        let c = mh.sketch(set(1000..1030).iter().map(String::as_str));
        let all_equal = (0..4).all(|band| a.band_key(band, 4) == c.band_key(band, 4));
        assert!(!all_equal);
    }

    #[test]
    fn empty_set_sketches_to_max() {
        let mh = MinHasher::new(8, 5);
        let s = mh.sketch(std::iter::empty());
        assert!(s.mins.iter().all(|&m| m == u64::MAX));
    }
}
