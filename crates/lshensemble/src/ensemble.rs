//! LSH Ensemble (Zhu et al., PVLDB'16): approximate containment search.
//!
//! The containment (equi-joinability) `t = |Q∩X|/|Q|` is converted to a
//! Jaccard condition — the conversion depends on the *target* set size `|X|`,
//! so the repository is partitioned by set size (equi-depth) and each
//! partition uses its own conversion against the partition's upper size
//! bound `u`:
//!
//! `J ≥ t·|Q| / (|Q| + u − t·|Q|)`
//!
//! Each partition indexes MinHash signatures under several `(b, r)` bandings
//! (all divisors of the signature length); at query time the banding whose
//! S-curve threshold sits just below the required Jaccard is probed. This
//! mirrors the dynamic parameterization of the original (which optimizes
//! `(b, r)` per partition from precomputed tables); the selection rule here
//! is the standard `(1/b)^(1/r)` fixpoint approximation.
//!
//! The paper targets the thresholded problem; DeepJoin's evaluation adapts
//! it to top-k by relaxing the threshold until `k` candidates surface and
//! ranking candidates by sketch-estimated containment. False positives from
//! the containment→Jaccard conversion are expected — reproducing that
//! weakness (Table 3's mediocre precision) is part of the reproduction.

use deepjoin_lake::column::{Column, ColumnId};
use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::joinability::{rank_and_truncate, ScoredColumn};
use deepjoin_lake::repository::Repository;

use crate::minhash::{MinHasher, MinHashSketch};

/// Ensemble parameters.
#[derive(Debug, Clone, Copy)]
pub struct LshEnsembleConfig {
    /// Signature length (number of MinHash permutations).
    pub num_perm: usize,
    /// Number of size partitions.
    pub num_partitions: usize,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        Self {
            num_perm: 128,
            num_partitions: 8,
            seed: 0x15,
        }
    }
}

/// One size partition: sketches plus per-banding bucket tables.
struct Partition {
    /// Upper bound on distinct-set size in this partition.
    upper: usize,
    /// Members: (column id, distinct size, sketch index).
    members: Vec<(u32, usize)>,
    /// Sketches parallel to `members`.
    sketches: Vec<MinHashSketch>,
    /// For each banding `(b, r)`: bucket -> member indices.
    bandings: Vec<Banding>,
}

struct Banding {
    b: usize,
    r: usize,
    buckets: FxHashMap<u64, Vec<u32>>, // band-local key -> member indices
}

/// The LSH Ensemble index.
pub struct LshEnsembleIndex {
    /// The configuration the index was built with.
    pub config: LshEnsembleConfig,
    hasher: MinHasher,
    partitions: Vec<Partition>,
    len: usize,
}

/// Bandings tried per partition: all `(b, r)` with `b·r = num_perm` and
/// `r ∈ {1, 2, 4, 8, 16, 32}` (bounded so at least 4 bands exist).
fn banding_shapes(num_perm: usize) -> Vec<(usize, usize)> {
    [1usize, 2, 4, 8, 16, 32]
        .iter()
        .filter(|&&r| num_perm.is_multiple_of(r) && num_perm / r >= 4)
        .map(|&r| (num_perm / r, r))
        .collect()
}

impl LshEnsembleIndex {
    /// Build the ensemble over `repo`.
    pub fn build(repo: &Repository, config: LshEnsembleConfig) -> Self {
        let hasher = MinHasher::new(config.num_perm, config.seed);

        // Sketch every column and sort by distinct size for equi-depth
        // partitioning.
        let mut entries: Vec<(u32, usize, MinHashSketch)> = repo
            .iter()
            .map(|(id, col)| {
                let sketch = hasher.sketch(col.distinct().iter().map(String::as_str));
                (id.0, col.distinct_len(), sketch)
            })
            .collect();
        entries.sort_by_key(|&(id, size, _)| (size, id));

        let n = entries.len();
        let num_parts = config.num_partitions.max(1).min(n.max(1));
        let per_part = n.div_ceil(num_parts.max(1)).max(1);

        let shapes = banding_shapes(config.num_perm);
        let mut partitions = Vec::with_capacity(num_parts);
        for chunk in entries.chunks(per_part) {
            let upper = chunk.last().map(|&(_, s, _)| s).unwrap_or(0);
            let members: Vec<(u32, usize)> = chunk.iter().map(|&(id, s, _)| (id, s)).collect();
            let sketches: Vec<MinHashSketch> =
                chunk.iter().map(|(_, _, sk)| sk.clone()).collect();
            let bandings = shapes
                .iter()
                .map(|&(b, r)| {
                    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                    for (mi, sk) in sketches.iter().enumerate() {
                        for band in 0..b {
                            // Mix the band index into the key so bands don't
                            // collide across positions.
                            let key = sk.band_key(band, r) ^ (band as u64).wrapping_mul(0x9E3779B97F4A7C15);
                            buckets.entry(key).or_default().push(mi as u32);
                        }
                    }
                    Banding { b, r, buckets }
                })
                .collect();
            partitions.push(Partition {
                upper,
                members,
                sketches,
                bandings,
            });
        }
        Self {
            config,
            hasher,
            partitions,
            len: n,
        }
    }

    /// Number of indexed columns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Thresholded containment query: all columns whose *estimated*
    /// containment `|Q∩X|/|Q|` is at least `t` (plus LSH false positives /
    /// minus false negatives — this is an approximate method).
    pub fn query_threshold(&self, query: &Column, t: f64) -> Vec<ScoredColumn> {
        let q_size = query.distinct_len();
        if q_size == 0 {
            return Vec::new();
        }
        let q_sketch = self
            .hasher
            .sketch(query.distinct().iter().map(String::as_str));

        let mut out = Vec::new();
        for part in &self.partitions {
            if part.members.is_empty() {
                continue;
            }
            // Containment -> Jaccard threshold against the partition's upper
            // size bound.
            let u = part.upper as f64;
            let q = q_size as f64;
            let j_star = (t * q) / (q + u - t * q).max(1e-9);
            let banding = pick_banding(&part.bandings, j_star);

            // Probe buckets, dedup member indices.
            let mut seen: Vec<bool> = vec![false; part.members.len()];
            for band in 0..banding.b {
                let key = q_sketch.band_key(band, banding.r)
                    ^ (band as u64).wrapping_mul(0x9E3779B97F4A7C15);
                if let Some(members) = banding.buckets.get(&key) {
                    for &mi in members {
                        seen[mi as usize] = true;
                    }
                }
            }
            for (mi, &hit) in seen.iter().enumerate() {
                if !hit {
                    continue;
                }
                let (col, x_size) = part.members[mi];
                let j = q_sketch.jaccard(&part.sketches[mi]);
                // Estimated containment from estimated Jaccard:
                // c = J (|Q| + |X|) / (|Q| (1 + J)).
                let c = (j * (q + x_size as f64)) / (q * (1.0 + j));
                let c = c.clamp(0.0, 1.0);
                if c >= t {
                    out.push(ScoredColumn {
                        id: ColumnId(col),
                        score: c,
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then_with(|| a.id.cmp(&b.id))
        });
        out
    }

    /// Top-k adaptation (§2.2 of the DeepJoin paper): LSH Ensemble answers
    /// *thresholded* queries, so top-k is emulated by issuing queries at
    /// decreasing thresholds and stacking the result tiers — candidates
    /// surfacing at a higher threshold rank above those that only appear at
    /// a lower one; within a tier the set is unordered (id order here). The
    /// returned score is the tier threshold.
    ///
    /// This is deliberately *not* re-ranked by sketch-estimated containment:
    /// a thresholded LSH index returns sets, and the coarse tiering plus the
    /// containment→Jaccard conversion's false positives are exactly the
    /// weaknesses the paper reports for this method (Table 3).
    pub fn search(&self, query: &Column, k: usize) -> Vec<ScoredColumn> {
        if k == 0 {
            return Vec::new();
        }
        let mut out: Vec<ScoredColumn> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        let mut t = 0.9;
        while out.len() < k && t > 0.05 {
            let tier = self.query_threshold(query, t);
            let mut fresh: Vec<ScoredColumn> = tier
                .into_iter()
                .filter(|h| !seen.contains(&h.id.0))
                .map(|h| ScoredColumn {
                    id: h.id,
                    score: t,
                })
                .collect();
            fresh.sort_by_key(|h| h.id);
            for h in fresh {
                seen.push(h.id.0);
                out.push(h);
            }
            t -= 0.10;
        }
        rank_and_truncate(out, k)
    }
}

/// Pick the banding whose S-curve fixpoint `(1/b)^(1/r)` is closest to (and
/// preferably below) the required Jaccard threshold.
fn pick_banding(bandings: &[Banding], j_star: f64) -> &Banding {
    let mut best: Option<(&Banding, f64)> = None;
    for banding in bandings {
        let fix = (1.0 / banding.b as f64).powf(1.0 / banding.r as f64);
        // Prefer fixpoints below j_star (high recall); penalize overshoot.
        let gap = if fix <= j_star {
            j_star - fix
        } else {
            (fix - j_star) * 4.0
        };
        match best {
            Some((_, g)) if g <= gap => {}
            _ => best = Some((banding, gap)),
        }
    }
    best.expect("at least one banding").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_range(lo: u32, hi: u32) -> Column {
        Column::from_cells((lo..hi).map(|i| format!("v{i}")))
    }

    fn repo() -> Repository {
        Repository::from_columns(vec![
            col_range(0, 50),    // 0: full overlap with query below
            col_range(0, 25),    // 1: contains half of query's values
            col_range(25, 75),   // 2: half overlap
            col_range(100, 150), // 3: disjoint
            col_range(0, 500),   // 4: superset (big)
        ])
    }

    #[test]
    fn finds_high_containment_targets() {
        // Column 4 (superset, containment 1.0) has true Jaccard only 0.1
        // with the query, so its containment estimate rides on a small
        // agreeing-component count; a longer signature keeps the estimator
        // noise well inside the gap this test asserts on.
        let config = LshEnsembleConfig {
            num_perm: 512,
            ..LshEnsembleConfig::default()
        };
        let idx = LshEnsembleIndex::build(&repo(), config);
        let q = col_range(0, 50);
        let top = idx.search(&q, 2);
        assert_eq!(top.len(), 2);
        let ids: Vec<u32> = top.iter().map(|s| s.id.0).collect();
        // Exact answers are columns 0 and 4 (containment 1.0 each).
        assert!(ids.contains(&0), "ids {ids:?}");
        assert!(ids.contains(&4), "ids {ids:?}");
        assert!(top[0].score > 0.8);
    }

    #[test]
    fn disjoint_columns_rank_last_or_absent() {
        let idx = LshEnsembleIndex::build(&repo(), LshEnsembleConfig::default());
        let q = col_range(0, 50);
        let top = idx.search(&q, 5);
        if let Some(pos) = top.iter().position(|s| s.id.0 == 3) {
            // If the disjoint column appears at all it must rank last with a
            // near-zero estimate.
            assert_eq!(pos, top.len() - 1);
            assert!(top[pos].score < 0.3, "score {}", top[pos].score);
        }
    }

    #[test]
    fn threshold_query_scores_are_containment_estimates() {
        let idx = LshEnsembleIndex::build(&repo(), LshEnsembleConfig::default());
        let q = col_range(0, 50);
        let hits = idx.query_threshold(&q, 0.8);
        for h in &hits {
            assert!(h.score >= 0.8 && h.score <= 1.0);
        }
        assert!(hits.iter().any(|h| h.id.0 == 0));
    }

    #[test]
    fn empty_query_and_k_zero() {
        let idx = LshEnsembleIndex::build(&repo(), LshEnsembleConfig::default());
        assert!(idx.search(&Column::from_cells(Vec::<String>::new()), 3).is_empty());
        assert!(idx.search(&col_range(0, 10), 0).is_empty());
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
    }

    #[test]
    fn partitioning_is_equi_depth() {
        let repo = Repository::from_columns(
            (0..40).map(|i| col_range(i * 10, i * 10 + 5 + i)), // growing sizes
        );
        let idx = LshEnsembleIndex::build(
            &repo,
            LshEnsembleConfig {
                num_partitions: 4,
                ..Default::default()
            },
        );
        assert_eq!(idx.partitions.len(), 4);
        for w in idx.partitions.windows(2) {
            assert!(w[0].upper <= w[1].upper, "partitions ordered by size");
        }
        let sizes: Vec<usize> = idx.partitions.iter().map(|p| p.members.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 40);
        assert!(sizes.iter().all(|&s| s == 10), "equi-depth: {sizes:?}");
    }

    #[test]
    fn banding_shapes_cover_expected_rows() {
        let shapes = banding_shapes(128);
        assert!(shapes.contains(&(128, 1)));
        assert!(shapes.contains(&(32, 4)));
        assert!(shapes.contains(&(4, 32)));
        for (b, r) in shapes {
            assert_eq!(b * r, 128);
        }
    }
}
