//! Offline subset of the `serde` facade.
//!
//! Re-exports the no-op derives from the vendored `serde_derive` so that
//! `use serde::{Serialize, Deserialize};` plus `#[derive(...)]` compiles
//! without registry access. No runtime serialization exists in this
//! workspace — binary persistence is the checksummed codec in
//! `deepjoin-store` — so the derives are declarations of intent only.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
