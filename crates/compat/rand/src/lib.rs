//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors the
//! slice of `rand` it actually uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than upstream
//! `StdRng`, but every consumer in this workspace only relies on determinism
//! and statistical quality, not on exact upstream sequences.

#![warn(missing_docs)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of upstream `rand`, collapsed into one trait).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly between two bounds. The single
/// generic [`SampleRange`] impl below ties the range's element type to
/// `gen_range`'s return type, so unsuffixed literals infer from the use
/// site exactly as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges that `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range,
    /// matching upstream behaviour.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing generator methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (floats land in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Counter-based stream derivation — a workspace extension over the `rand`
/// 0.8 surface.
///
/// `stream_rng(seed, stream)` deterministically derives an independent
/// generator for each `(seed, stream)` pair without any mutable "parent"
/// RNG: the pair is mixed through SplitMix64's finalizer before seeding, so
/// adjacent counters (`stream`, `stream + 1`) yield decorrelated streams.
/// Training loops use this to make per-epoch shuffles a *pure function of
/// `(seed, epoch)`* — the property that lets a checkpointed run resume at
/// any step boundary and replay bit-identically, instead of depending on
/// how far a long-lived `StdRng` had been advanced before the crash.
pub mod stream {
    use super::rngs::StdRng;
    use super::SeedableRng;

    /// Mix a `(seed, stream)` pair into a single decorrelated 64-bit seed
    /// (SplitMix64 finalizer over the golden-ratio-spread stream index).
    #[inline]
    pub fn mix(seed: u64, stream: u64) -> u64 {
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A generator whose output is a pure function of `(seed, stream)`.
    #[inline]
    pub fn stream_rng(seed: u64, stream: u64) -> StdRng {
        StdRng::seed_from_u64(mix(seed, stream))
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic default generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding procedure.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_land_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0..17);
            assert!(x < 17);
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "50-element shuffle virtually never fixes all");

        let mut seen = [false; 5];
        let pool = [0usize, 1, 2, 3, 4];
        for _ in 0..500 {
            seen[*pool.as_slice().choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stream_rng_is_a_pure_function_of_seed_and_stream() {
        use super::stream::stream_rng;
        // Reproducible: same (seed, stream) => same sequence, regardless of
        // how many other streams were drawn first.
        let a: Vec<u64> = (0..32).map({
            let mut r = stream_rng(42, 7);
            move |_| r.next_u64()
        }).collect();
        let _ = stream_rng(42, 3).next_u64();
        let _ = stream_rng(99, 7).next_u64();
        let b: Vec<u64> = (0..32).map({
            let mut r = stream_rng(42, 7);
            move |_| r.next_u64()
        }).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn adjacent_streams_are_decorrelated() {
        use super::stream::stream_rng;
        // Adjacent counters must not produce overlapping or shifted copies
        // of the same sequence.
        let mut r0 = stream_rng(1, 0);
        let mut r1 = stream_rng(1, 1);
        let s0: Vec<u64> = (0..64).map(|_| r0.next_u64()).collect();
        let s1: Vec<u64> = (0..64).map(|_| r1.next_u64()).collect();
        assert_ne!(s0, s1);
        let common = s0.iter().filter(|v| s1.contains(v)).count();
        assert!(common < 3, "streams share {common} of 64 values");
        // And distinct seeds with the same stream differ too.
        let mut r2 = stream_rng(2, 0);
        let s2: Vec<u64> = (0..64).map(|_| r2.next_u64()).collect();
        assert_ne!(s0, s2);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
    }
}
