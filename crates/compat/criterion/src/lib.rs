//! Minimal offline benchmark harness with a criterion-shaped API.
//!
//! Implements exactly the surface the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Measurements are
//! real (monotonic-clock timed samples with median/min/max reporting) but
//! intentionally simple: no warm-up modelling, outlier analysis, or HTML
//! reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Compose an id out of a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, |b| f(b));
        self
    }

    /// Run one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `iters` calls of `f` on the monotonic clock.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_bench(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate the per-sample iteration count so one sample costs ~2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        if b.elapsed_ns >= 2_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0,
            };
            f(&mut b);
            b.elapsed_ns as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    eprintln!(
        "  {name:<40} median {:>12} [min {}, max {}] ({samples} samples x {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench entry point, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        let mut calls = 0u64;
        group.bench_function("add", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }
}
