//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace has no wire-format crate (all persistence goes through the
//! hand-rolled codecs in `deepjoin-store`), so serde derives carry no
//! behaviour here. These stubs accept the derive syntax — including
//! `#[serde(...)]` field attributes — and expand to nothing, which keeps the
//! annotations compiling offline while documenting serialization intent.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
