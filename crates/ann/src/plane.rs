//! Plane storage: one contiguous typed array that is either **heap-owned**
//! (`Vec<T>`) or a **zero-copy view** into bytes owned elsewhere — an open
//! `mmap(2)` of a DJAR v2 artifact, or any other pinned byte buffer.
//!
//! Every hot array in the ANN stack (f32 vector rows, SQ8 codes and affine
//! parameters, CSR graph offset/neighbor tables) is a [`PodVec`], and every
//! consumer goes through [`PodVec::as_slice`], so search runs *byte
//! identically* on either backing: the slice a scan kernel sees is the same
//! numbers whether they were decoded onto the heap or reinterpreted in
//! place from a mapping.
//!
//! Safety model: a mapped view is only constructible through
//! [`PodVec::from_bytes`], which checks that the designated range is
//! in-bounds and aligned for `T` *at its current address* and keeps the
//! owner alive in an `Arc`. Element types are limited to the sealed [`Pod`]
//! set (plain little-endian numeric types with no invalid bit patterns).
//! Reinterpretation assumes a little-endian host — the codecs write LE — so
//! on a big-endian target `from_bytes` refuses and callers fall back to the
//! heap decode path (correct everywhere, zero-copy where it matters).
//!
//! Mutation always goes through [`PodVec::make_mut`], which materializes a
//! mapped view into an owned `Vec<T>` first: indexes opened zero-copy stay
//! immutable for free, and an explicit `add` simply pays one copy to become
//! heap-backed again.

use std::sync::Arc;

/// The byte buffer a mapped [`PodVec`] borrows from. `Arc`-shared so any
/// number of planes (vectors, codes, graph arrays) can view one open
/// mapping; the mapping unmaps when the last plane drops.
pub type ByteOwner = Arc<dyn AsRef<[u8]> + Send + Sync>;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
}

/// Element types a plane may reinterpret from raw little-endian bytes:
/// fixed-size numerics where every bit pattern is a valid value.
pub trait Pod: Copy + Send + Sync + sealed::Sealed + 'static {}
impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f32 {}

enum Backing<T: Pod> {
    Heap(Vec<T>),
    Mapped {
        owner: ByteOwner,
        /// Byte offset of the first element within the owner.
        offset: usize,
        /// Element (not byte) count.
        len: usize,
    },
}

/// A typed contiguous array over heap or mapped backing. See the module
/// docs for the contract.
pub struct PodVec<T: Pod> {
    backing: Backing<T>,
}

impl<T: Pod> Default for PodVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for PodVec<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            backing: Backing::Heap(v),
        }
    }
}

impl<T: Pod> PodVec<T> {
    /// Empty heap-backed plane.
    pub fn new() -> Self {
        Vec::new().into()
    }

    /// Zero-copy view of `len` elements of `T` starting `offset` bytes into
    /// `owner`'s buffer. Returns `None` when the range is out of bounds,
    /// the start address is misaligned for `T`, or the host is big-endian
    /// (the bytes are little-endian) — callers then decode to heap instead.
    pub fn from_bytes(owner: ByteOwner, offset: usize, len: usize) -> Option<Self> {
        if cfg!(target_endian = "big") {
            return None;
        }
        let bytes: &[u8] = owner.as_ref().as_ref();
        let need = len.checked_mul(std::mem::size_of::<T>())?;
        if offset.checked_add(need)? > bytes.len() {
            return None;
        }
        if !(bytes.as_ptr() as usize + offset).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Self {
            backing: Backing::Mapped { owner, offset, len },
        })
    }

    /// The elements. For mapped backing this reinterprets the owner's bytes
    /// in place (bounds and alignment were proven at construction).
    pub fn as_slice(&self) -> &[T] {
        match &self.backing {
            Backing::Heap(v) => v,
            Backing::Mapped { owner, offset, len } => {
                let bytes: &[u8] = owner.as_ref().as_ref();
                // Safety: from_bytes checked offset + len*size <= bytes.len()
                // and alignment of this exact address; T is Pod (any bit
                // pattern valid); the owner is immutable and pinned by Arc.
                unsafe {
                    std::slice::from_raw_parts(bytes.as_ptr().add(*offset) as *const T, *len)
                }
            }
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Heap(v) => v.len(),
            Backing::Mapped { len, .. } => *len,
        }
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when this plane is a zero-copy view rather than owned heap —
    /// the `dj info` mapped-vs-resident distinction.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped { .. })
    }

    /// Heap bytes this plane itself retains. Mapped planes retain none
    /// (their pages are file-backed and shared); heap planes retain their
    /// allocation.
    pub fn resident_bytes(&self) -> usize {
        match &self.backing {
            Backing::Heap(v) => v.capacity() * std::mem::size_of::<T>(),
            Backing::Mapped { .. } => 0,
        }
    }

    /// Mutable access, materializing a mapped view into owned heap first
    /// (one copy, after which the plane stays heap-backed).
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Backing::Mapped { .. } = self.backing {
            let copied = self.as_slice().to_vec();
            self.backing = Backing::Heap(copied);
        }
        match &mut self.backing {
            Backing::Heap(v) => v,
            Backing::Mapped { .. } => unreachable!("materialized above"),
        }
    }

    /// Consume into an owned `Vec` (copying if mapped).
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(self.make_mut())
    }
}

impl<'a, T: Pod> IntoIterator for &'a PodVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Pod> std::ops::Deref for PodVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for PodVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PodVec")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl<T: Pod> Clone for PodVec<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            Backing::Heap(v) => v.clone().into(),
            // Cloning a view clones the Arc, not the bytes.
            Backing::Mapped { owner, offset, len } => Self {
                backing: Backing::Mapped {
                    owner: owner.clone(),
                    offset: *offset,
                    len: *len,
                },
            },
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for PodVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner_from(bytes: Vec<u8>) -> ByteOwner {
        Arc::new(bytes)
    }

    #[test]
    fn heap_roundtrip() {
        let mut p: PodVec<f32> = vec![1.0, 2.0, 3.0].into();
        assert_eq!(p.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(!p.is_mapped());
        assert!(p.resident_bytes() >= 12);
        p.make_mut().push(4.0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn mapped_view_reads_le_bytes_in_place() {
        let values = [1.5f32, -2.25, 1e-8, f32::MAX];
        let mut bytes = vec![0u8; 16]; // leading pad to test nonzero offset
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let p = PodVec::<f32>::from_bytes(owner_from(bytes), 16, 4).unwrap();
        assert!(p.is_mapped());
        assert_eq!(p.resident_bytes(), 0);
        assert_eq!(p.as_slice(), &values);
    }

    #[test]
    fn out_of_bounds_and_misaligned_views_are_refused() {
        let bytes: Vec<u8> = (0..64).collect();
        // Too long.
        assert!(PodVec::<u32>::from_bytes(owner_from(bytes.clone()), 0, 17).is_none());
        // Offset past the end.
        assert!(PodVec::<u32>::from_bytes(owner_from(bytes.clone()), 65, 0).is_none());
        // Vec<u8> allocations are sufficiently aligned that offset parity
        // controls element alignment: an odd offset can never hold a u32.
        assert!(PodVec::<u32>::from_bytes(owner_from(bytes), 1, 4).is_none());
    }

    #[test]
    fn make_mut_materializes_mapped_to_heap() {
        let mut bytes = Vec::new();
        for v in [7u32, 8, 9] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let mut p = PodVec::<u32>::from_bytes(owner_from(bytes), 0, 3).unwrap();
        assert!(p.is_mapped());
        p.make_mut().push(10);
        assert!(!p.is_mapped());
        assert_eq!(p.as_slice(), &[7, 8, 9, 10]);
    }

    #[test]
    fn clone_of_mapped_view_shares_the_owner() {
        let bytes: Vec<u8> = vec![1, 0, 0, 0, 2, 0, 0, 0];
        let p = PodVec::<u32>::from_bytes(owner_from(bytes), 0, 2).unwrap();
        let q = p.clone();
        assert!(q.is_mapped());
        assert_eq!(p.as_slice(), q.as_slice());
    }

    #[test]
    fn u8_views_have_no_alignment_constraint() {
        let bytes: Vec<u8> = (0..32).collect();
        for offset in 0..8 {
            let p = PodVec::<u8>::from_bytes(owner_from(bytes.clone()), offset, 8).unwrap();
            assert_eq!(p.as_slice(), &bytes[offset..offset + 8]);
        }
    }
}
