//! SQ8 scalar quantization: the compressed vector plane (DESIGN.md §12).
//!
//! Every embedding dimension is affinely mapped to a `u8` code with its own
//! `scale`/`offset` (per-dimension min/max over the corpus), shrinking the
//! resident vector plane ~4× and making the candidate-generation scan
//! memory-bandwidth-cheap. Searches run **two-stage**: a quantized scan over
//! the codes collects the top `RESCORE_FACTOR · k` candidates, then the
//! survivors are rescored with the exact f32 vectors, so the returned
//! distances are exact and recall stays within noise of the uncompressed
//! scan.
//!
//! The asymmetric kernels (`deepjoin-simd`) never dequantize a row: for L2
//! the query is re-expressed as `t = q − offset` once and the per-row score
//! `Σ (t_d − s_d·c_d)²` equals the exact squared distance between the query
//! and the dequantized row; for dot-ranked metrics the constant
//! `q₀ = Σ q_d·offset_d` and the folded query `t₂ = q ∘ s` reduce each row
//! to one f32×u8 dot.

use crate::budget::{Budget, BudgetedSearch, Effort, TRUNCATED_SCAN_ROWS};
use crate::distance::Metric;
use crate::index::TopK;
use crate::plane::PodVec;
use crate::tombstones::TombSet;

/// Candidate over-fetch for the quantized first stage: the quantized scan
/// keeps `RESCORE_FACTOR · k` rows for the exact rescore. 4 is generous —
/// SQ8 surrogate error is a fraction of typical inter-neighbor gaps — and
/// keeps the rescore cost negligible next to the scan.
pub const RESCORE_FACTOR: usize = 4;

/// Rows scored per block in the quantized scan (matches the flat scan's
/// block so budget polling granularity is comparable).
const SCAN_BLOCK: usize = 256;

/// Per-dimension affine-quantized (`u8`) copy of an embedding matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Plane {
    dim: usize,
    /// Per-dimension step size `(max − min) / 255` (0 for constant dims).
    /// All four arrays are [`PodVec`]s: heap after quantization, zero-copy
    /// views when decoded from a mapped v2 artifact section.
    scale: PodVec<f32>,
    /// Per-dimension minimum (the value code 0 decodes to).
    offset: PodVec<f32>,
    /// Row-major `n × dim` codes.
    codes: PodVec<u8>,
    /// L2 norm of each *dequantized* row, for cosine without the unit-norm
    /// promise.
    row_norm: PodVec<f32>,
}

impl Sq8Plane {
    /// Quantize a row-major `n × dim` matrix. Each dimension gets its own
    /// min/max affine map; a constant dimension gets `scale = 0` and decodes
    /// exactly.
    pub fn quantize(data: &[f32], dim: usize) -> Self {
        let (scale, offset) = Self::affine_from(data, dim);
        let mut plane = Self::with_affine(dim, scale, offset);
        plane.codes.make_mut().reserve(data.len());
        plane.row_norm.make_mut().reserve(data.len() / dim.max(1));
        for row in data.chunks_exact(dim) {
            plane.push(row);
        }
        plane
    }

    /// Learn per-dimension affine parameters (min/max map) from a training
    /// matrix without encoding it — for planes that grow row by row via
    /// [`Sq8Plane::push`] (the IVFPQ refinement layer trains here and
    /// encodes at `add` time).
    pub fn affine_from(data: &[f32], dim: usize) -> (Vec<f32>, Vec<f32>) {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "row-major shape mismatch");
        let n = data.len() / dim;
        let mut lo = vec![f32::INFINITY; dim];
        let mut hi = vec![f32::NEG_INFINITY; dim];
        for row in data.chunks_exact(dim) {
            for (d, &x) in row.iter().enumerate() {
                lo[d] = lo[d].min(x);
                hi[d] = hi[d].max(x);
            }
        }
        let mut scale = vec![0f32; dim];
        let mut offset = vec![0f32; dim];
        for d in 0..dim {
            if n == 0 {
                continue;
            }
            offset[d] = lo[d];
            let range = hi[d] - lo[d];
            if range > 0.0 {
                scale[d] = range / 255.0;
            }
        }
        (scale, offset)
    }

    /// Empty plane with fixed affine parameters; rows are appended with
    /// [`Sq8Plane::push`].
    pub fn with_affine(dim: usize, scale: Vec<f32>, offset: Vec<f32>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(scale.len(), dim, "scale length mismatch");
        assert_eq!(offset.len(), dim, "offset length mismatch");
        Self {
            dim,
            scale: scale.into(),
            offset: offset.into(),
            codes: PodVec::new(),
            row_norm: PodVec::new(),
        }
    }

    /// Encode and append one row under the plane's fixed affine map.
    /// Values outside the trained range saturate at codes 0/255.
    pub fn push(&mut self, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let mut norm_sq = 0f32;
        let codes = self.codes.make_mut();
        for (d, &x) in vector.iter().enumerate() {
            let c = if self.scale[d] > 0.0 {
                ((x - self.offset[d]) / self.scale[d])
                    .round()
                    .clamp(0.0, 255.0) as u8
            } else {
                0
            };
            codes.push(c);
            let deq = self.offset[d] + self.scale[d] * c as f32;
            norm_sq += deq * deq;
        }
        self.row_norm.make_mut().push(norm_sq.sqrt());
    }

    /// Reassemble a plane from decoded parts (the `DJQ1`/`DJQ2` codecs).
    /// Accepts owned `Vec`s or zero-copy [`PodVec`] views alike. Shape
    /// validation is the codec's job; this only debug-asserts.
    pub fn from_parts(
        dim: usize,
        scale: impl Into<PodVec<f32>>,
        offset: impl Into<PodVec<f32>>,
        codes: impl Into<PodVec<u8>>,
        row_norm: impl Into<PodVec<f32>>,
    ) -> Self {
        let (scale, offset, codes, row_norm) =
            (scale.into(), offset.into(), codes.into(), row_norm.into());
        debug_assert_eq!(scale.len(), dim);
        debug_assert_eq!(offset.len(), dim);
        debug_assert_eq!(codes.len(), row_norm.len() * dim.max(1));
        Self {
            dim,
            scale,
            offset,
            codes,
            row_norm,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of quantized rows.
    pub fn len(&self) -> usize {
        self.codes.len() / self.dim
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-dimension scales.
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Per-dimension offsets.
    pub fn offset(&self) -> &[f32] {
        &self.offset
    }

    /// Raw row-major codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Dequantized row norms.
    pub fn row_norms(&self) -> &[f32] {
        &self.row_norm
    }

    /// Code row by id.
    pub fn code(&self, id: u32) -> &[u8] {
        let i = id as usize * self.dim;
        &self.codes[i..i + self.dim]
    }

    /// Dequantize row `id` into `out` (`x̂_d = offset_d + scale_d · c_d`).
    pub fn dequantize_into(&self, id: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "dimension mismatch");
        for (d, (&c, o)) in self.code(id).iter().zip(out.iter_mut()).enumerate() {
            *o = self.offset[d] + self.scale[d] * c as f32;
        }
    }

    /// Heap bytes resident for this plane (codes + per-dim maps + row
    /// norms). Mapped arrays count zero — their pages are file-backed.
    pub fn resident_bytes(&self) -> usize {
        self.codes.resident_bytes()
            + self.scale.resident_bytes()
            + self.offset.resident_bytes()
            + self.row_norm.resident_bytes()
    }

    /// True when the code matrix is a zero-copy view of a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.codes.is_mapped()
    }

    /// Fold a query into the precomputed form the asymmetric kernels
    /// consume. One `prepare` amortizes over every row the query scores.
    pub fn prepare(&self, query: &[f32], metric: Metric, unit_norm: bool) -> Sq8Query {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let inner = match (metric, unit_norm) {
            (Metric::L2, _) => Prepared::L2 {
                t: query
                    .iter()
                    .zip(&self.offset)
                    .map(|(&q, &o)| q - o)
                    .collect(),
            },
            (Metric::InnerProduct, _) | (Metric::Cosine, true) => Prepared::Dot {
                t2: query.iter().zip(&self.scale).map(|(&q, &s)| q * s).collect(),
                q0: query
                    .iter()
                    .zip(&self.offset)
                    .map(|(&q, &o)| q * o)
                    .sum(),
            },
            (Metric::Cosine, false) => Prepared::CosineFull {
                t2: query.iter().zip(&self.scale).map(|(&q, &s)| q * s).collect(),
                q0: query
                    .iter()
                    .zip(&self.offset)
                    .map(|(&q, &o)| q * o)
                    .sum(),
                q_norm: deepjoin_simd::dot(query, query).sqrt(),
            },
        };
        Sq8Query { inner }
    }

    /// Quantized surrogate score for one row: the same ordering semantics
    /// as [`Metric::surrogate_un`] evaluated against the dequantized row.
    #[inline]
    pub fn surrogate(&self, prep: &Sq8Query, id: u32) -> f32 {
        let code = self.code(id);
        match &prep.inner {
            Prepared::L2 { t } => deepjoin_simd::l2_sq_f32u8(t, &self.scale, code),
            Prepared::Dot { t2, q0 } => -(q0 + deepjoin_simd::dot_f32u8(t2, code)),
            Prepared::CosineFull { t2, q0, q_norm } => {
                let denom = q_norm * self.row_norm[id as usize];
                if denom == 0.0 {
                    1.0
                } else {
                    1.0 - (q0 + deepjoin_simd::dot_f32u8(t2, code)) / denom
                }
            }
        }
    }

    /// Blocked quantized surrogates for rows `[base, base + out.len())`.
    fn surrogate_block(&self, prep: &Sq8Query, base: usize, out: &mut [f32]) {
        let rows = out.len();
        let codes = &self.codes[base * self.dim..(base + rows) * self.dim];
        match &prep.inner {
            Prepared::L2 { t } => {
                deepjoin_simd::l2_sq_f32u8_block(t, &self.scale, codes, out);
            }
            Prepared::Dot { t2, q0 } => {
                deepjoin_simd::dot_f32u8_block(t2, codes, out);
                for s in out.iter_mut() {
                    *s = -(q0 + *s);
                }
            }
            Prepared::CosineFull { t2, q0, q_norm } => {
                deepjoin_simd::dot_f32u8_block(t2, codes, out);
                for (i, s) in out.iter_mut().enumerate() {
                    let denom = q_norm * self.row_norm[base + i];
                    *s = if denom == 0.0 {
                        1.0
                    } else {
                        1.0 - (q0 + *s) / denom
                    };
                }
            }
        }
    }
}

/// A query folded against a plane's scale/offset (see
/// [`Sq8Plane::prepare`]).
#[derive(Debug, Clone)]
pub struct Sq8Query {
    inner: Prepared,
}

#[derive(Debug, Clone)]
enum Prepared {
    /// `t = q − offset`; score `Σ (t_d − s_d·c_d)²` is the exact squared
    /// L2 to the dequantized row.
    L2 { t: Vec<f32> },
    /// `t₂ = q ∘ s`, `q₀ = q · offset`; `q₀ + t₂·c` is the exact dot with
    /// the dequantized row (negated to rank as a distance).
    Dot { t2: Vec<f32>, q0: f32 },
    /// Full cosine needs the dequantized row norms on top of the dot.
    CosineFull { t2: Vec<f32>, q0: f32, q_norm: f32 },
}

/// Two-stage budgeted scan: quantized candidate generation over the plane's
/// codes into a `RESCORE_FACTOR · k` pool, then exact f32 rescore of the
/// survivors against `exact` (the row-major uncompressed matrix, same row
/// ids). Returned distances are exact; `visited` counts quantized rows
/// scored plus rows rescored.
///
/// The budget is polled once per code block; on expiry the survivors found
/// so far are still rescored (exactness is preserved) and the result is
/// marked incomplete.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_budgeted(
    plane: &Sq8Plane,
    exact: &[f32],
    metric: Metric,
    unit_norm: bool,
    query: &[f32],
    k: usize,
    budget: &Budget,
    deleted: Option<&TombSet>,
) -> BudgetedSearch {
    let dim = plane.dim;
    debug_assert_eq!(exact.len(), plane.codes.len());
    let full_n = plane.len();
    // Brownout rung 3: bounded row prefix, same contract as the flat scan.
    let n = if budget.effort() >= Effort::Truncated {
        full_n.min(TRUNCATED_SCAN_ROWS)
    } else {
        full_n
    };
    let limited = budget.is_limited();
    let prep = plane.prepare(query, metric, unit_norm);
    // Brownout rung 2+ serves the quantized surrogate scores directly, so
    // there is no rescore pool to over-collect into.
    let rescore = budget.effort() < Effort::Surrogate;
    let pool = if rescore {
        k.saturating_mul(RESCORE_FACTOR).max(k)
    } else {
        k
    };
    let mut top = TopK::new(pool);
    let mut scores = [0f32; SCAN_BLOCK];
    let mut base = 0usize;
    let mut complete = n == full_n;
    while base < n {
        if limited && budget.expired() {
            complete = false;
            break;
        }
        let rows = SCAN_BLOCK.min(n - base);
        plane.surrogate_block(&prep, base, &mut scores[..rows]);
        // Tombstoned rows are dropped at candidate generation, before the
        // rescore pool — a dead row must not displace a live candidate.
        match deleted {
            Some(tombs) if !tombs.is_empty() => {
                for (i, &s) in scores[..rows].iter().enumerate() {
                    let id = (base + i) as u32;
                    if !tombs.contains(id) {
                        top.push(id, s);
                    }
                }
            }
            _ => {
                for (i, &s) in scores[..rows].iter().enumerate() {
                    top.push((base + i) as u32, s);
                }
            }
        }
        base += rows;
    }
    if !rescore {
        // Surrogate-only: report the quantized scores as-is. Distances
        // carry quantization error; the caller flags the reply degraded.
        let mut hits = top.into_sorted();
        hits.truncate(k);
        for h in &mut hits {
            h.distance = metric.distance_from_surrogate(h.distance, unit_norm);
        }
        return BudgetedSearch {
            hits,
            complete,
            visited: base,
        };
    }
    // Stage 2: exact rescore. Cheap (≤ RESCORE_FACTOR·k rows), so it runs
    // even on an expired budget — partial results stay exact.
    let survivors = top.into_sorted();
    let rescored = survivors.len();
    let mut final_top = TopK::new(k);
    for h in &survivors {
        let row = &exact[h.id as usize * dim..(h.id as usize + 1) * dim];
        final_top.push(h.id, metric.surrogate_un(query, row, unit_norm));
    }
    let mut hits = final_top.into_sorted();
    for h in &mut hits {
        h.distance = metric.distance_from_surrogate(h.distance, unit_norm);
    }
    BudgetedSearch {
        hits,
        complete,
        visited: base + rescored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn matrix(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// Round-trip error is bounded by half a quantization step per
    /// dimension: |x − x̂| ≤ scale_d / 2.
    #[test]
    fn dequantize_error_bounded_by_half_step_per_dim() {
        let (n, dim) = (200, 24);
        let data = matrix(n, dim, 7);
        let plane = Sq8Plane::quantize(&data, dim);
        let mut out = vec![0f32; dim];
        for i in 0..n {
            plane.dequantize_into(i as u32, &mut out);
            for d in 0..dim {
                let err = (data[i * dim + d] - out[d]).abs();
                let bound = plane.scale()[d] * 0.5 + 1e-6;
                assert!(
                    err <= bound,
                    "row {i} dim {d}: err {err} > half-step {bound}"
                );
            }
        }
    }

    #[test]
    fn constant_dimension_decodes_exactly() {
        // Dim 1 is constant 0.75 across all rows: scale 0, exact decode.
        let data = vec![0.1, 0.75, -0.3, 0.75, 0.9, 0.75];
        let plane = Sq8Plane::quantize(&data, 2);
        assert_eq!(plane.scale()[1], 0.0);
        let mut out = vec![0f32; 2];
        for i in 0..3 {
            plane.dequantize_into(i, &mut out);
            assert_eq!(out[1], 0.75);
        }
    }

    /// The quantized surrogate must equal `Metric::surrogate_un` evaluated
    /// against the dequantized row, for every metric × unit_norm combination
    /// — that is the property the two-stage scan's candidate ordering rests
    /// on.
    #[test]
    fn surrogate_matches_dequantized_f32_surrogate() {
        let (n, dim) = (60, 19);
        let data = matrix(n, dim, 11);
        let plane = Sq8Plane::quantize(&data, dim);
        let q = matrix(1, dim, 12);
        let mut deq = vec![0f32; dim];
        for (metric, unit_norm) in [
            (Metric::L2, false),
            (Metric::InnerProduct, false),
            (Metric::Cosine, true),
            (Metric::Cosine, false),
        ] {
            let prep = plane.prepare(&q, metric, unit_norm);
            for i in 0..n as u32 {
                plane.dequantize_into(i, &mut deq);
                let want = metric.surrogate_un(&q, &deq, unit_norm);
                let got = plane.surrogate(&prep, i);
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{metric:?} un={unit_norm} row {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn blocked_surrogates_match_per_row() {
        let (n, dim) = (300, 17);
        let data = matrix(n, dim, 13);
        let plane = Sq8Plane::quantize(&data, dim);
        let q = matrix(1, dim, 14);
        for (metric, unit_norm) in [
            (Metric::L2, false),
            (Metric::InnerProduct, false),
            (Metric::Cosine, true),
            (Metric::Cosine, false),
        ] {
            let prep = plane.prepare(&q, metric, unit_norm);
            let mut out = vec![0f32; n];
            // Whole-matrix block in SCAN_BLOCK chunks like the scan does.
            let mut base = 0;
            while base < n {
                let rows = SCAN_BLOCK.min(n - base);
                let (_, tail) = out.split_at_mut(base);
                plane.surrogate_block(&prep, base, &mut tail[..rows]);
                base += rows;
            }
            for i in 0..n as u32 {
                let want = plane.surrogate(&prep, i);
                let got = out[i as usize];
                assert!(
                    (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                    "{metric:?} un={unit_norm} row {i}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn two_stage_scan_returns_exact_distances() {
        let (n, dim) = (500, 16);
        let data = matrix(n, dim, 17);
        let plane = Sq8Plane::quantize(&data, dim);
        let q = matrix(1, dim, 18);
        let out = scan_budgeted(
            &plane,
            &data,
            Metric::L2,
            false,
            &q,
            5,
            &Budget::unlimited(),
            None,
        );
        assert!(out.complete);
        assert_eq!(out.hits.len(), 5);
        // Every returned distance is the exact f32 distance.
        for h in &out.hits {
            let row = &data[h.id as usize * dim..(h.id as usize + 1) * dim];
            let want = Metric::L2.distance(&q, row);
            assert!(
                (h.distance - want).abs() <= 1e-5 * want.max(1.0),
                "id {}: {} vs {want}",
                h.id,
                h.distance
            );
        }
    }

    #[test]
    fn surrogate_effort_skips_the_rescore_but_stays_near_exact() {
        let (n, dim) = (500, 16);
        let data = matrix(n, dim, 17);
        let plane = Sq8Plane::quantize(&data, dim);
        let q = matrix(1, dim, 18);
        let exact = scan_budgeted(
            &plane,
            &data,
            Metric::L2,
            false,
            &q,
            5,
            &Budget::unlimited(),
            None,
        );
        let cheap = scan_budgeted(
            &plane,
            &data,
            Metric::L2,
            false,
            &q,
            5,
            &Budget::unlimited().with_effort(Effort::Surrogate),
            None,
        );
        assert!(cheap.complete);
        assert_eq!(cheap.hits.len(), 5);
        // Surrogate mode skips the per-survivor f32 reads entirely.
        assert!(cheap.visited < exact.visited);
        // Quantized distances track the exact ones within SQ8 error.
        for (a, b) in exact.hits.iter().zip(&cheap.hits) {
            assert!(
                (a.distance - b.distance).abs() <= 0.05 * a.distance.max(1.0),
                "exact {} vs surrogate {}",
                a.distance,
                b.distance
            );
        }
    }

    #[test]
    fn expired_budget_yields_partial_but_exact_results() {
        let (n, dim) = (SCAN_BLOCK * 4, 8);
        let data = matrix(n, dim, 19);
        let plane = Sq8Plane::quantize(&data, dim);
        let q = matrix(1, dim, 20);
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = scan_budgeted(&plane, &data, Metric::L2, false, &q, 5, &expired, None);
        assert!(!out.complete);
        for h in &out.hits {
            let row = &data[h.id as usize * dim..(h.id as usize + 1) * dim];
            let want = Metric::L2.distance(&q, row);
            assert!((h.distance - want).abs() <= 1e-5 * want.max(1.0));
        }
    }

    #[test]
    fn resident_bytes_shrink_vs_f32() {
        let (n, dim) = (1000, 64);
        let data = matrix(n, dim, 23);
        let plane = Sq8Plane::quantize(&data, dim);
        let f32_bytes = data.len() * 4;
        assert!(
            (plane.resident_bytes() as f64) < f32_bytes as f64 / 3.5,
            "plane {} vs f32 {}",
            plane.resident_bytes(),
            f32_bytes
        );
    }

    #[test]
    fn empty_matrix_quantizes_to_empty_plane() {
        let plane = Sq8Plane::quantize(&[], 8);
        assert!(plane.is_empty());
        assert_eq!(plane.len(), 0);
        let out = scan_budgeted(
            &plane,
            &[],
            Metric::L2,
            false,
            &[0f32; 8],
            3,
            &Budget::unlimited(),
            None,
        );
        assert!(out.complete);
        assert!(out.hits.is_empty());
    }
}
