//! Cooperative cancellation for searches.
//!
//! A [`Budget`] is a cheap handle threaded into the search loops of the HNSW
//! and flat indexes: it carries an optional wall-clock deadline and an
//! optional shared cancellation flag. Search code polls it at coarse
//! intervals (per candidate batch / per scan block) and, when the budget is
//! exhausted, stops mid-traversal and returns the best results found so far
//! with `complete == false` — instead of burning a worker past its deadline.
//!
//! An unlimited budget (the default) costs nothing on the hot path: the
//! polling sites gate on [`Budget::is_limited`] before ever reading a clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::index::Neighbor;

/// Deadline + cancellation handle for one search.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget that never expires (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            cancel: None,
        }
    }

    /// A budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Attach a shared cancellation flag: the budget counts as expired as
    /// soon as the flag reads `true` (e.g. a disconnected client or a
    /// server drain).
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when this budget can ever expire. Search loops use this to skip
    /// clock reads entirely for unlimited budgets.
    #[inline]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// True when the budget is exhausted (deadline passed or cancelled).
    #[inline]
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// Result of a budgeted search: the hits gathered before the budget ran out
/// plus enough context for the caller to report degradation honestly.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedSearch {
    /// Best hits found, sorted ascending by (distance, id). When
    /// `complete` is false this is a best-effort partial top-k.
    pub hits: Vec<Neighbor>,
    /// True when the search ran to the end; false when it stopped early
    /// because the budget expired.
    pub complete: bool,
    /// Distance evaluations performed (the work actually done — useful for
    /// operators sizing deadlines).
    pub visited: usize,
}

/// Poll granularity: how many distance evaluations pass between budget
/// checks. Coarse enough that `Instant::now` never dominates, fine enough
/// that an expired request stops within microseconds.
pub(crate) const CHECK_EVERY: usize = 64;

/// Per-search polling state: counts distance evaluations and latches
/// expiry so a search stops at the next loop boundary.
#[derive(Debug)]
pub(crate) struct Ticker<'a> {
    budget: &'a Budget,
    limited: bool,
    pub(crate) visited: usize,
    pub(crate) expired: bool,
}

impl<'a> Ticker<'a> {
    pub(crate) fn new(budget: &'a Budget) -> Self {
        Self {
            limited: budget.is_limited(),
            // A pre-expired budget should stop the search before any work.
            expired: budget.is_limited() && budget.expired(),
            budget,
            visited: 0,
        }
    }

    /// Record one distance evaluation; returns true when the search should
    /// stop (budget exhausted).
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        self.visited += 1;
        if self.limited
            && !self.expired
            && self.visited.is_multiple_of(CHECK_EVERY)
            && self.budget.expired()
        {
            self.expired = true;
        }
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.expired());
    }

    #[test]
    fn past_deadline_is_expired() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.is_limited());
        assert!(b.expired());
        let mut t = Ticker::new(&b);
        assert!(t.expired, "pre-expired budget latches immediately");
        assert!(t.tick());
    }

    #[test]
    fn future_deadline_is_live() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(b.is_limited());
        assert!(!b.expired());
    }

    #[test]
    fn cancellation_flag_expires_budget() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancelled_by(flag.clone());
        assert!(b.is_limited());
        assert!(!b.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(b.expired());
    }

    #[test]
    fn ticker_latches_expiry_at_check_interval() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancelled_by(flag.clone());
        let mut t = Ticker::new(&b);
        for _ in 0..CHECK_EVERY - 1 {
            assert!(!t.tick());
        }
        flag.store(true, Ordering::Relaxed);
        // The next multiple-of-interval tick observes the flag.
        let mut stopped = false;
        for _ in 0..CHECK_EVERY + 1 {
            if t.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert!(t.visited >= CHECK_EVERY);
    }
}
