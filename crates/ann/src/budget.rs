//! Cooperative cancellation for searches.
//!
//! A [`Budget`] is a cheap handle threaded into the search loops of the HNSW
//! and flat indexes: it carries an optional wall-clock deadline and an
//! optional shared cancellation flag. Search code polls it at coarse
//! intervals (per candidate batch / per scan block) and, when the budget is
//! exhausted, stops mid-traversal and returns the best results found so far
//! with `complete == false` — instead of burning a worker past its deadline.
//!
//! An unlimited budget (the default) costs nothing on the hot path: the
//! polling sites gate on [`Budget::is_limited`] before ever reading a clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::index::Neighbor;

/// How much work a search is allowed to spend — the brownout ladder's
/// per-query knob. Rung 0 is the normal full-effort search; each higher
/// rung trades answer quality for latency under overload. The rung rides
/// inside [`Budget`] so it reaches every search loop without new
/// plumbing, and servers flag any rung > 0 reply as degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Effort {
    /// Full-quality search (the default).
    #[default]
    Full,
    /// Rung 1: HNSW beams shrink (ef_search / 4) — cheaper traversal,
    /// mildly lower recall.
    ReducedBeam,
    /// Rung 2: additionally skip the exact f32 rescore over SQ8 planes —
    /// distances come from the quantized surrogate.
    Surrogate,
    /// Rung 3: additionally truncate flat scans to a bounded row prefix —
    /// bounded work no matter the corpus size.
    Truncated,
}

impl Effort {
    /// The rung as a small integer (0 = full … 3 = truncated) for wire
    /// formats and stats counters.
    pub fn rung(self) -> u8 {
        match self {
            Effort::Full => 0,
            Effort::ReducedBeam => 1,
            Effort::Surrogate => 2,
            Effort::Truncated => 3,
        }
    }

    /// Inverse of [`Effort::rung`]; values past the ladder clamp to the
    /// deepest rung.
    pub fn from_rung(rung: u8) -> Self {
        match rung {
            0 => Effort::Full,
            1 => Effort::ReducedBeam,
            2 => Effort::Surrogate,
            _ => Effort::Truncated,
        }
    }
}

/// Flat scans under [`Effort::Truncated`] stop after this many rows: the
/// deepest brownout rung answers from a bounded prefix so per-query cost
/// stays constant no matter how large the corpus grows.
pub const TRUNCATED_SCAN_ROWS: usize = 16 * 1024;

/// Deadline + cancellation handle for one search.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    effort: Effort,
}

impl Budget {
    /// A budget that never expires (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// A budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// Attach a shared cancellation flag: the budget counts as expired as
    /// soon as the flag reads `true` (e.g. a disconnected client or a
    /// server drain).
    pub fn cancelled_by(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Set the brownout effort rung for this search (default
    /// [`Effort::Full`]). Search loops read it via [`Budget::effort`].
    pub fn with_effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// The effort rung this search should spend.
    #[inline]
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// The deadline, when one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when this budget can ever expire. Search loops use this to skip
    /// clock reads entirely for unlimited budgets.
    #[inline]
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// True when the budget is exhausted (deadline passed or cancelled).
    #[inline]
    pub fn expired(&self) -> bool {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }
}

/// Result of a budgeted search: the hits gathered before the budget ran out
/// plus enough context for the caller to report degradation honestly.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetedSearch {
    /// Best hits found, sorted ascending by (distance, id). When
    /// `complete` is false this is a best-effort partial top-k.
    pub hits: Vec<Neighbor>,
    /// True when the search ran to the end; false when it stopped early
    /// because the budget expired.
    pub complete: bool,
    /// Distance evaluations performed (the work actually done — useful for
    /// operators sizing deadlines).
    pub visited: usize,
}

/// Poll granularity: how many distance evaluations pass between budget
/// checks. Coarse enough that `Instant::now` never dominates, fine enough
/// that an expired request stops within microseconds.
pub(crate) const CHECK_EVERY: usize = 64;

/// Per-search polling state: counts distance evaluations and latches
/// expiry so a search stops at the next loop boundary.
#[derive(Debug)]
pub(crate) struct Ticker<'a> {
    budget: &'a Budget,
    limited: bool,
    pub(crate) visited: usize,
    pub(crate) expired: bool,
}

impl<'a> Ticker<'a> {
    pub(crate) fn new(budget: &'a Budget) -> Self {
        Self {
            limited: budget.is_limited(),
            // A pre-expired budget should stop the search before any work.
            expired: budget.is_limited() && budget.expired(),
            budget,
            visited: 0,
        }
    }

    /// Record one distance evaluation; returns true when the search should
    /// stop (budget exhausted).
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        self.visited += 1;
        if self.limited
            && !self.expired
            && self.visited.is_multiple_of(CHECK_EVERY)
            && self.budget.expired()
        {
            self.expired = true;
        }
        self.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let b = Budget::unlimited();
        assert!(!b.is_limited());
        assert!(!b.expired());
    }

    #[test]
    fn past_deadline_is_expired() {
        let b = Budget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(b.is_limited());
        assert!(b.expired());
        let mut t = Ticker::new(&b);
        assert!(t.expired, "pre-expired budget latches immediately");
        assert!(t.tick());
    }

    #[test]
    fn future_deadline_is_live() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(b.is_limited());
        assert!(!b.expired());
    }

    #[test]
    fn cancellation_flag_expires_budget() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancelled_by(flag.clone());
        assert!(b.is_limited());
        assert!(!b.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(b.expired());
    }

    #[test]
    fn effort_defaults_to_full_and_round_trips_through_rungs() {
        assert_eq!(Budget::unlimited().effort(), Effort::Full);
        assert_eq!(
            Budget::with_timeout(Duration::from_secs(1)).effort(),
            Effort::Full
        );
        for rung in 0..=3u8 {
            assert_eq!(Effort::from_rung(rung).rung(), rung);
        }
        // Past-the-ladder rungs clamp to the deepest degradation.
        assert_eq!(Effort::from_rung(200), Effort::Truncated);
        let b = Budget::unlimited().with_effort(Effort::Surrogate);
        assert_eq!(b.effort(), Effort::Surrogate);
        assert!(!b.is_limited(), "effort alone never expires a budget");
    }

    #[test]
    fn ticker_latches_expiry_at_check_interval() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::unlimited().cancelled_by(flag.clone());
        let mut t = Ticker::new(&b);
        for _ in 0..CHECK_EVERY - 1 {
            assert!(!t.tick());
        }
        flag.store(true, Ordering::Relaxed);
        // The next multiple-of-interval tick observes the flag.
        let mut stopped = false;
        for _ in 0..CHECK_EVERY + 1 {
            if t.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert!(t.visited >= CHECK_EVERY);
    }
}
