//! # deepjoin-ann
//!
//! Approximate nearest-neighbor search substrate (the Faiss stand-in,
//! DESIGN.md §1): a from-scratch HNSW graph index (Malkov & Yashunin),
//! IVFPQ (k-means coarse quantizer + product quantization with ADC), and an
//! exact flat index that serves as the correctness oracle. All three
//! implement [`VectorIndex`], so DeepJoin and the benchmarks can swap
//! backends, as §3.3 of the paper describes.

#![warn(missing_docs)]

pub mod budget;
pub mod distance;
pub mod graph;
pub mod io;
pub mod flat;
pub mod hnsw;
pub mod index;
pub mod ivfpq;
pub mod kmeans;
pub mod plane;
pub mod pq;
pub mod segmented;
pub mod sq8;
pub mod tombstones;

pub use budget::{Budget, BudgetedSearch, Effort, TRUNCATED_SCAN_ROWS};
pub use distance::Metric;
pub use flat::FlatIndex;
pub use graph::Graph;
pub use hnsw::{HnswConfig, HnswIndex};
pub use index::{Neighbor, VectorIndex};
pub use ivfpq::{IvfPqConfig, IvfPqIndex};
pub use kmeans::{Kmeans, KmeansConfig};
pub use plane::{ByteOwner, Pod, PodVec};
pub use pq::{PqConfig, ProductQuantizer};
pub use segmented::search_segments;
pub use sq8::{Sq8Plane, Sq8Query, RESCORE_FACTOR};
pub use tombstones::TombSet;
