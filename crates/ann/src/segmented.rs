//! Scatter-gather search over a segmented index.
//!
//! A segmented index is N immutable segments (mapped DJAR files, live-lake
//! flush segments, a memtable snapshot) that each answer a top-k query
//! independently. [`search_segments`] scatters the per-segment searches
//! across a [`Pool`], then gathers every partial result through the same
//! bounded [`TopK`] selector the per-index scans use — so the merged result
//! is **deterministic** (independent of thread count and completion order)
//! and exactly what a serial loop over the segments would produce.
//!
//! The per-segment closure returns global ids: segments number their rows
//! locally, so the closure is where slab-local → global id translation
//! happens (the caller owns that mapping; see `LiveView::search`).

use crate::budget::BudgetedSearch;
use crate::index::TopK;
use deepjoin_par::Pool;

/// Search every segment via `f`, merging the partial top-k lists into one
/// bounded top-k. Per-segment searches run scattered on `pool` (serial pools
/// degrade gracefully to the old loop); results are gathered in segment
/// order, so hits, `complete`, and `visited` are identical across thread
/// counts. `f` must return hits with **global** ids, ascending by
/// `(distance, id)` as every budgeted search in this crate does.
pub fn search_segments<S, F>(pool: &Pool, segments: &[S], k: usize, f: F) -> BudgetedSearch
where
    S: Sync,
    F: Fn(&S) -> BudgetedSearch + Sync,
{
    // One partial per chunk of segments, in chunk order (deterministic).
    let partials: Vec<BudgetedSearch> = pool.map(segments.len(), 1, |range| {
        let mut top = TopK::new(k);
        let mut complete = true;
        let mut visited = 0usize;
        for seg in &segments[range] {
            let r = f(seg);
            complete &= r.complete;
            visited += r.visited;
            for n in r.hits {
                top.push(n.id, n.distance);
            }
        }
        BudgetedSearch {
            hits: top.into_sorted(),
            complete,
            visited,
        }
    });

    let mut top = TopK::new(k);
    let mut complete = true;
    let mut visited = 0usize;
    for p in partials {
        complete &= p.complete;
        visited += p.visited;
        for n in p.hits {
            top.push(n.id, n.distance);
        }
    }
    BudgetedSearch {
        hits: top.into_sorted(),
        complete,
        visited,
    }
}

/// Batched [`search_segments`]: a whole wave of `nq` queries answered with
/// one visit to each segment. `f` returns one [`BudgetedSearch`] per query
/// (global ids, same ordering contract as the single-query variant) — so a
/// segment's rows are pulled through the cache once per wave instead of
/// once per query (see `flat::scan_budgeted_batch`). Per-query merges run
/// through the same bounded [`TopK`] in segment order, so each query's
/// result is bit-identical to calling [`search_segments`] for it alone.
pub fn search_segments_batch<S, F>(
    pool: &Pool,
    segments: &[S],
    nq: usize,
    k: usize,
    f: F,
) -> Vec<BudgetedSearch>
where
    S: Sync,
    F: Fn(&S) -> Vec<BudgetedSearch> + Sync,
{
    // One per-query partial per chunk of segments, in chunk order.
    let partials: Vec<Vec<BudgetedSearch>> = pool.map(segments.len(), 1, |range| {
        let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
        let mut complete = vec![true; nq];
        let mut visited = vec![0usize; nq];
        for seg in &segments[range] {
            let per_query = f(seg);
            assert_eq!(per_query.len(), nq, "segment answered a different wave size");
            for (qi, r) in per_query.into_iter().enumerate() {
                complete[qi] &= r.complete;
                visited[qi] += r.visited;
                for n in r.hits {
                    tops[qi].push(n.id, n.distance);
                }
            }
        }
        tops.into_iter()
            .zip(complete)
            .zip(visited)
            .map(|((top, complete), visited)| BudgetedSearch {
                hits: top.into_sorted(),
                complete,
                visited,
            })
            .collect()
    });

    let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
    let mut complete = vec![true; nq];
    let mut visited = vec![0usize; nq];
    for chunk in partials {
        for (qi, p) in chunk.into_iter().enumerate() {
            complete[qi] &= p.complete;
            visited[qi] += p.visited;
            for n in p.hits {
                tops[qi].push(n.id, n.distance);
            }
        }
    }
    tops.into_iter()
        .zip(complete)
        .zip(visited)
        .map(|((top, complete), visited)| BudgetedSearch {
            hits: top.into_sorted(),
            complete,
            visited,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::distance::Metric;
    use crate::flat::FlatIndex;
    use crate::index::{Neighbor, VectorIndex};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A toy segment: a flat index plus the global id of its first row.
    struct Seg {
        base: u32,
        index: FlatIndex,
    }

    fn build_segments(n_segs: usize, rows_per: usize, dim: usize) -> (Vec<Seg>, FlatIndex) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut all = FlatIndex::new(dim, Metric::L2);
        let mut segs = Vec::new();
        for s in 0..n_segs {
            let data: Vec<f32> = (0..rows_per * dim)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect();
            let mut idx = FlatIndex::new(dim, Metric::L2);
            idx.add_batch(&data);
            all.add_batch(&data);
            segs.push(Seg {
                base: (s * rows_per) as u32,
                index: idx,
            });
        }
        (segs, all)
    }

    fn search_all(pool: &Pool, segs: &[Seg], q: &[f32], k: usize) -> BudgetedSearch {
        let budget = Budget::unlimited();
        search_segments(pool, segs, k, |seg| {
            let mut r = seg.index.search_budgeted_filtered(q, k, &budget, None);
            for n in &mut r.hits {
                n.id += seg.base;
            }
            r
        })
    }

    #[test]
    fn scatter_gather_matches_one_big_index() {
        let (segs, all) = build_segments(7, 50, 6);
        let q: Vec<f32> = vec![0.1; 6];
        let merged = search_all(&Pool::global(), &segs, &q, 10);
        let oracle: Vec<Neighbor> = all.search(&q, 10);
        assert_eq!(merged.hits, oracle);
        assert!(merged.complete);
        assert_eq!(merged.visited, 7 * 50);
    }

    #[test]
    fn result_is_thread_count_independent() {
        let (segs, _) = build_segments(9, 40, 5);
        let q: Vec<f32> = vec![-0.3; 5];
        let serial = search_all(&Pool::serial(), &segs, &q, 8);
        for threads in [2, 3, 8] {
            let parallel = search_all(&Pool::new(threads), &segs, &q, 8);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_segment_list_yields_empty_complete_result() {
        let segs: Vec<Seg> = Vec::new();
        let r = search_all(&Pool::global(), &segs, &[0.0; 4], 5);
        assert!(r.hits.is_empty());
        assert!(r.complete);
        assert_eq!(r.visited, 0);
    }

    #[test]
    fn batched_scatter_gather_matches_per_query_single_searches() {
        let (segs, _) = build_segments(7, 50, 6);
        let budget = Budget::unlimited();
        let queries: Vec<Vec<f32>> = (0..5)
            .map(|i| (0..6).map(|d| ((i * 6 + d) as f32 * 0.31).sin()).collect())
            .collect();
        let flat: Vec<f32> = queries.iter().flatten().copied().collect();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let wave = search_segments_batch(&pool, &segs, queries.len(), 10, |seg| {
                let mut rs = seg.index.search_budgeted_batch_filtered(&flat, 10, &budget, None);
                for r in &mut rs {
                    for n in &mut r.hits {
                        n.id += seg.base;
                    }
                }
                rs
            });
            for (q, got) in queries.iter().zip(&wave) {
                let single = search_all(&pool, &segs, q, 10);
                assert_eq!(&single, got, "threads={threads}");
            }
        }
        // An empty wave over real segments yields no results.
        assert!(search_segments_batch(&Pool::global(), &segs, 0, 10, |_| Vec::new()).is_empty());
    }

    #[test]
    fn incomplete_partials_mark_the_merge_incomplete() {
        let (segs, _) = build_segments(3, 30, 4);
        let q = vec![0.0; 4];
        // An already-expired budget: every scan stops before any work.
        let budget = Budget::with_deadline(std::time::Instant::now());
        let r = search_segments(&Pool::global(), &segs, 5, |seg| {
            seg.index.search_budgeted_filtered(&q, 5, &budget, None)
        });
        assert!(!r.complete);
    }
}
