//! The common index interface every ANNS backend implements, so DeepJoin can
//! swap Flat / HNSW / IVFPQ per §3.3.

use crate::distance::Metric;

/// One search hit: internal id + distance (smaller = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id assigned at insertion order (0-based).
    pub id: u32,
    /// Distance under the index metric.
    pub distance: f32,
}

/// A k-nearest-neighbor index over fixed-dimension `f32` vectors.
pub trait VectorIndex {
    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// The metric the index ranks by.
    fn metric(&self) -> Metric;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one vector, returning its id (= current `len`).
    fn add(&mut self, vector: &[f32]) -> u32;

    /// Insert many vectors (row-major, `n x dim`).
    fn add_batch(&mut self, vectors: &[f32]) {
        assert_eq!(vectors.len() % self.dim(), 0, "row-major shape mismatch");
        for row in vectors.chunks_exact(self.dim()) {
            self.add(row);
        }
    }

    /// The `k` (approximate) nearest neighbors of `query`, sorted by
    /// ascending distance with ascending-id tie-break.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;
}

/// Sort hits ascending by distance, break ties by id, truncate to k.
pub fn finalize_hits(mut hits: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    hits.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    hits.truncate(k);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sorts_and_truncates() {
        let hits = vec![
            Neighbor { id: 2, distance: 0.5 },
            Neighbor { id: 1, distance: 0.1 },
            Neighbor { id: 0, distance: 0.5 },
        ];
        let out = finalize_hits(hits, 2);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 0, "tie broken by id");
        assert_eq!(out.len(), 2);
    }
}
