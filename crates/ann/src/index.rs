//! The common index interface every ANNS backend implements, so DeepJoin can
//! swap Flat / HNSW / IVFPQ per §3.3.

use std::collections::BinaryHeap;

use crate::distance::Metric;

/// One search hit: internal id + distance (smaller = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id assigned at insertion order (0-based).
    pub id: u32,
    /// Distance under the index metric.
    pub distance: f32,
}

/// A k-nearest-neighbor index over fixed-dimension `f32` vectors.
pub trait VectorIndex {
    /// Dimensionality of indexed vectors.
    fn dim(&self) -> usize;

    /// The metric the index ranks by.
    fn metric(&self) -> Metric;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one vector, returning its id (= current `len`).
    fn add(&mut self, vector: &[f32]) -> u32;

    /// Insert many vectors (row-major, `n x dim`).
    fn add_batch(&mut self, vectors: &[f32]) {
        assert_eq!(vectors.len() % self.dim(), 0, "row-major shape mismatch");
        for row in vectors.chunks_exact(self.dim()) {
            self.add(row);
        }
    }

    /// The `k` (approximate) nearest neighbors of `query`, sorted by
    /// ascending distance with ascending-id tie-break.
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor>;
}

/// Sort hits ascending by distance, break ties by id, truncate to k.
pub fn finalize_hits(mut hits: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    hits.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.id.cmp(&b.id))
    });
    hits.truncate(k);
    hits
}

/// Max-heap entry ordered by (distance, id) so the *worst* kept hit is on
/// top and ties prefer the smaller id (matching [`finalize_hits`]).
#[derive(PartialEq)]
struct WorstFirst(Neighbor);

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .distance
            .total_cmp(&other.0.distance)
            .then_with(|| self.0.id.cmp(&other.0.id))
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded top-k selector: streams candidates and keeps only the `k` best
/// (smallest distance, ascending-id tie-break), so an exact scan never
/// materializes or sorts all `n` hits. Results match
/// [`finalize_hits`]-over-everything for non-NaN distances.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// Selector keeping the best `k` hits.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer one candidate.
    #[inline]
    pub fn push(&mut self, id: u32, distance: f32) {
        if self.k == 0 {
            return;
        }
        let cand = WorstFirst(Neighbor { id, distance });
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if cand < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.pop();
            self.heap.push(cand);
        }
    }

    /// The kept hits, ascending by (distance, id).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_iter().map(|w| w.0).collect();
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then_with(|| a.id.cmp(&b.id)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_sorts_and_truncates() {
        let hits = vec![
            Neighbor { id: 2, distance: 0.5 },
            Neighbor { id: 1, distance: 0.1 },
            Neighbor { id: 0, distance: 0.5 },
        ];
        let out = finalize_hits(hits, 2);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[1].id, 0, "tie broken by id");
        assert_eq!(out.len(), 2);
    }
}
