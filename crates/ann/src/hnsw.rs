//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, TPAMI'20)
//! — the ANNS backend DeepJoin's retrieval rides on (paper §3.3).
//!
//! Implements the paper's algorithms:
//! * Alg. 1 `INSERT` — exponential level sampling (`mL = 1/ln(M)`), greedy
//!   descent through upper layers, `efConstruction`-wide search on the
//!   insertion layers, bidirectional linking with degree-bounded shrinking;
//! * Alg. 2 `SEARCH-LAYER` — best-first expansion with a bounded result set;
//! * Alg. 4 `SELECT-NEIGHBORS-HEURISTIC` — diversity-aware neighbor
//!   selection (with fill-from-discarded), which is what keeps the graph
//!   navigable on clustered data;
//! * Alg. 5 `K-NN-SEARCH` — descent + `efSearch`-wide bottom-layer search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use deepjoin_par::Pool;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetedSearch, Effort, Ticker};
use crate::distance::Metric;
use crate::graph::{Graph, Node};
use crate::index::{finalize_hits, Neighbor, VectorIndex};
use crate::plane::PodVec;
use crate::sq8::{Sq8Plane, Sq8Query};
use crate::tombstones::TombSet;

/// Batch size for [`HnswIndex::add_batch_parallel`]. A constant (never a
/// function of the thread count) so the produced graph is identical for any
/// pool size.
const PAR_BATCH: usize = 512;

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max out-degree on layers above 0 (`M`).
    pub m: usize,
    /// Max out-degree on layer 0 (`Mmax0`, conventionally `2M`).
    pub m0: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Beam width during search (`efSearch`); raised to `k` when smaller.
    pub ef_search: usize,
    /// Metric to rank by.
    pub metric: Metric,
    /// Seed for level sampling.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            m0: 32,
            ef_construction: 200,
            ef_search: 96,
            metric: Metric::L2,
            seed: 0x45_7D,
        }
    }
}

/// Candidate ordered as a *min*-heap entry by distance (ties by id for
/// determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinCand {
    dist: f32,
    id: u32,
}

impl Eq for MinCand {}

impl Ord for MinCand {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for MinCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Candidate ordered as a *max*-heap entry by distance.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MaxCand {
    dist: f32,
    id: u32,
}

impl Eq for MaxCand {}

impl Ord for MaxCand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for MaxCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable per-thread query scratch: an epoch-stamped visited set plus the
/// candidate/result heaps of the layer search. Replaces the per-query
/// `vec![false; n]` bitmap and two fresh `BinaryHeap`s — after warm-up a
/// search allocates nothing. Visited membership is `stamp[id] == epoch`;
/// starting a query bumps the epoch, which clears the set in O(1). The
/// (astronomically rare) epoch wraparound hard-resets the stamps so stale
/// marks can never alias a new query.
#[derive(Debug, Default)]
struct SearchScratch {
    epoch: u32,
    stamp: Vec<u32>,
    candidates: BinaryHeap<MinCand>,
    results: BinaryHeap<MaxCand>,
}

impl SearchScratch {
    /// Arm the scratch for one layer search over `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            // New slots carry the *current* epoch value, which the bump
            // below immediately invalidates.
            let epoch = self.epoch;
            self.stamp.resize(n, epoch);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.candidates.clear();
        self.results.clear();
    }

    #[inline]
    fn is_visited(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }

    #[inline]
    fn mark_visited(&mut self, id: u32) {
        self.stamp[id as usize] = self.epoch;
    }
}

/// Run `f` with this thread's scratch. Pool worker threads are long-lived,
/// so the buffers amortize across every query a thread ever serves.
fn with_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    thread_local! {
        static SCRATCH: std::cell::RefCell<SearchScratch> =
            std::cell::RefCell::new(SearchScratch::default());
    }
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// How a traversal scores a node against the query: exact f32, or the SQ8
/// quantized surrogate when a plane is attached (candidates are then
/// rescored exactly before ranking, see [`HnswIndex::search_budgeted`]).
enum QueryDist<'a> {
    Exact(&'a [f32]),
    Sq8 {
        plane: &'a Sq8Plane,
        prep: Sq8Query,
    },
}

impl QueryDist<'_> {
    #[inline]
    fn dist(&self, index: &HnswIndex, id: u32) -> f32 {
        match self {
            QueryDist::Exact(q) => index.dist(q, id),
            QueryDist::Sq8 { plane, prep } => plane.surrogate(prep, id),
        }
    }
}

/// The HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    config: HnswConfig,
    dim: usize,
    /// Row-major vectors: heap after a build, zero-copy view of a mapped
    /// v2 artifact section after a load (see [`crate::plane`]).
    vectors: PodVec<f32>,
    /// Layered adjacency: heap nested lists during construction, CSR
    /// (possibly mapped) after a v2 load (see [`crate::graph`]).
    graph: Graph,
    entry: Option<u32>,
    max_level: usize,
    level_mult: f64,
    rng_state: u64,
    /// True when every indexed vector (and every query) is promised to be
    /// L2-normalized; enables the cosine `-dot` fast path. Build-time only,
    /// not persisted — reloaded indexes fall back to full cosine.
    #[serde(skip)]
    unit_norm: bool,
    /// Optional SQ8 plane: when attached (always *after* the build — the
    /// build stays exact so graphs are reproducible), traversal scores
    /// candidates against the quantized codes and the final beam is
    /// rescored exactly. Persisted as its own `SQ8V` section, not via serde.
    #[serde(skip)]
    sq8: Option<Sq8Plane>,
}

impl HnswIndex {
    /// Empty index.
    pub fn new(dim: usize, config: HnswConfig) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(config.m >= 2, "M must be at least 2");
        Self {
            level_mult: 1.0 / (config.m as f64).ln(),
            config,
            dim,
            vectors: PodVec::new(),
            graph: Graph::new(),
            entry: None,
            max_level: 0,
            rng_state: config.seed,
            unit_norm: false,
            sq8: None,
        }
    }

    /// Config accessor.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Declare (at build time) that every vector added *and every query* is
    /// L2-normalized, enabling the cosine fast path. The promise is the
    /// caller's to keep (DeepJoin's encoder normalizes all embeddings).
    pub fn with_unit_norm(mut self, unit_norm: bool) -> Self {
        self.unit_norm = unit_norm;
        self
    }

    /// Whether the index assumes unit-norm vectors.
    pub fn unit_norm(&self) -> bool {
        self.unit_norm
    }

    /// The adjacency structure (heap or CSR — see [`Graph`]), for the
    /// persistence codecs and diagnostics.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The raw row-major vector plane.
    pub fn vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// The vector plane itself — clone it (cheap for mapped views) to hand
    /// the same backing to another structure without copying.
    pub fn vectors_plane(&self) -> &PodVec<f32> {
        &self.vectors
    }

    /// Entry point of the top layer, if the graph is non-empty.
    pub fn entry(&self) -> Option<u32> {
        self.entry
    }

    /// Level of the tallest node.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Level-sampling RNG state (persisted so growth resumes identically).
    pub fn rng_state(&self) -> u64 {
        self.rng_state
    }

    /// True when any plane (vectors, graph, SQ8 codes) is a zero-copy view
    /// of a mapped artifact (reported by `dj info`).
    pub fn is_mapped(&self) -> bool {
        self.vectors.is_mapped()
            || self.graph.is_mapped()
            || self.sq8.as_ref().is_some_and(|p| p.is_mapped())
    }

    /// Rebuild an index from decoded parts (via the [`crate::io`] codecs):
    /// a vector plane (heap or mapped) and a [`Graph`] in either
    /// representation. The caller is responsible for structural consistency
    /// — the codecs validate shape and neighbor ranges before calling this.
    pub fn from_graph_parts(
        config: HnswConfig,
        dim: usize,
        vectors: impl Into<PodVec<f32>>,
        graph: Graph,
        entry: Option<u32>,
        max_level: usize,
        rng_state: u64,
    ) -> Self {
        Self {
            level_mult: 1.0 / (config.m as f64).ln(),
            config,
            dim,
            vectors: vectors.into(),
            graph,
            entry,
            max_level,
            rng_state,
            unit_norm: false,
            sq8: None,
        }
    }

    /// [`Self::from_graph_parts`] with nested per-node adjacency (the v1
    /// decode path).
    pub fn from_raw_parts(
        config: HnswConfig,
        dim: usize,
        vectors: Vec<f32>,
        nodes: Vec<Vec<Vec<u32>>>,
        entry: Option<u32>,
        max_level: usize,
        rng_state: u64,
    ) -> Self {
        Self::from_graph_parts(
            config,
            dim,
            vectors,
            Graph::from_adjacency(nodes),
            entry,
            max_level,
            rng_state,
        )
    }

    /// Quantize the stored vectors into an SQ8 plane and attach it:
    /// traversal switches to quantized scoring with an exact rescore of the
    /// final beam. Attach *after* building — a later [`VectorIndex::add`]
    /// drops the plane (its codes would be stale), and the build itself
    /// always links with exact distances so graphs stay reproducible.
    pub fn quantize_sq8(&mut self) {
        self.sq8 = Some(Sq8Plane::quantize(&self.vectors, self.dim));
    }

    /// Attach an already-built SQ8 plane (e.g. decoded from a snapshot's
    /// `SQ8V` section). Must cover exactly the stored rows.
    pub fn attach_sq8(&mut self, plane: Sq8Plane) {
        assert_eq!(plane.dim(), self.dim, "plane dimension mismatch");
        assert_eq!(plane.len(), self.len(), "plane row-count mismatch");
        self.sq8 = Some(plane);
    }

    /// Drop the SQ8 plane, reverting to exact f32 traversal.
    pub fn detach_sq8(&mut self) {
        self.sq8 = None;
    }

    /// The attached SQ8 plane, when one exists.
    pub fn sq8(&self) -> Option<&Sq8Plane> {
        self.sq8.as_ref()
    }

    /// Stored vector by id.
    #[inline]
    pub fn vector(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.vectors[i..i + self.dim]
    }

    #[inline]
    fn dist(&self, a: &[f32], id: u32) -> f32 {
        self.config
            .metric
            .surrogate_un(a, self.vector(id), self.unit_norm)
    }

    /// Draw the level for a new node: `floor(−ln(U) · mL)`.
    fn sample_level(&mut self) -> usize {
        // xorshift on the stored state keeps `add` deterministic without
        // holding a full RNG in the struct (serde-friendly).
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        let u = ((x >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
        ((-u.ln()) * self.level_mult).floor() as usize
    }

    /// Algorithm 2: best-first search on one layer, returning up to `ef`
    /// closest candidates (unsorted heap order). The ticker records every
    /// distance evaluation and, once its budget expires, stops the
    /// expansion at the next candidate boundary — the results gathered so
    /// far are returned as a best-effort partial answer. The scratch is
    /// re-armed at entry (epoch bump + heap clear), so one scratch serves
    /// any number of sequential calls without allocating.
    fn search_layer(
        &self,
        qd: &QueryDist<'_>,
        entry_points: &[MinCand],
        ef: usize,
        level: usize,
        scratch: &mut SearchScratch,
        ticker: &mut Ticker<'_>,
    ) -> Vec<MinCand> {
        scratch.begin(self.graph.len());
        for &ep in entry_points {
            if !scratch.is_visited(ep.id) {
                scratch.mark_visited(ep.id);
                scratch.candidates.push(ep);
                scratch.results.push(MaxCand {
                    dist: ep.dist,
                    id: ep.id,
                });
            }
        }
        while let Some(cur) = scratch.candidates.pop() {
            if ticker.expired {
                break;
            }
            let worst = scratch
                .results
                .peek()
                .map(|w| w.dist)
                .unwrap_or(f32::INFINITY);
            if cur.dist > worst && scratch.results.len() >= ef {
                break;
            }
            if level < self.graph.level_count(cur.id) {
                for &nb in self.graph.neighbors(cur.id, level) {
                    if scratch.is_visited(nb) {
                        continue;
                    }
                    scratch.mark_visited(nb);
                    let d = qd.dist(self, nb);
                    if ticker.tick() {
                        break;
                    }
                    let worst = scratch
                        .results
                        .peek()
                        .map(|w| w.dist)
                        .unwrap_or(f32::INFINITY);
                    if scratch.results.len() < ef || d < worst {
                        scratch.candidates.push(MinCand { dist: d, id: nb });
                        scratch.results.push(MaxCand { dist: d, id: nb });
                        if scratch.results.len() > ef {
                            scratch.results.pop();
                        }
                    }
                }
            }
        }
        scratch
            .results
            .drain()
            .map(|c| MinCand {
                dist: c.dist,
                id: c.id,
            })
            .collect()
    }

    /// Algorithm 4: diversity-aware neighbor selection. Candidates must be
    /// presented with their distance to the anchor.
    fn select_neighbors(&self, mut candidates: Vec<MinCand>, m: usize) -> Vec<u32> {
        candidates.sort_by(|a, b| a.dist.total_cmp(&b.dist).then_with(|| a.id.cmp(&b.id)));
        let mut selected: Vec<MinCand> = Vec::with_capacity(m);
        let mut discarded: Vec<MinCand> = Vec::new();
        for c in candidates {
            if selected.len() >= m {
                break;
            }
            // Keep c only if it is closer to the anchor than to every
            // already-selected neighbor (diversity criterion).
            let dominated = selected.iter().any(|s| {
                self.config
                    .metric
                    .surrogate_un(self.vector(c.id), self.vector(s.id), self.unit_norm)
                    < c.dist
            });
            if dominated {
                discarded.push(c);
            } else {
                selected.push(c);
            }
        }
        // keepPrunedConnections: fill remaining slots from the discarded
        // queue (closest first).
        for c in discarded {
            if selected.len() >= m {
                break;
            }
            selected.push(c);
        }
        selected.into_iter().map(|c| c.id).collect()
    }

    /// Shrink `node`'s out-list at `level` to the degree bound using the
    /// selection heuristic.
    fn shrink_neighbors(&mut self, node: u32, level: usize) {
        let bound = if level == 0 {
            self.config.m0
        } else {
            self.config.m
        };
        let list = self.graph.neighbors(node, level);
        if list.len() <= bound {
            return;
        }
        let anchor = self.vector(node);
        let cands: Vec<MinCand> = list
            .iter()
            .map(|&id| MinCand {
                dist: self
                    .config
                    .metric
                    .surrogate_un(anchor, self.vector(id), self.unit_norm),
                id,
            })
            .collect();
        let new_list = self.select_neighbors(cands, bound);
        self.graph.heap_mut()[node as usize].neighbors[level] = new_list;
    }

    /// Phase 1 of the batched build: search the *frozen* graph (the state
    /// before this batch) for candidate neighbors of node `id` on every
    /// insertion layer. Read-only, so it runs in parallel across the batch.
    /// Returns `found[lev]` for `lev` in `0..=level.min(frozen_max)`.
    fn frozen_candidates(
        &self,
        id: u32,
        level: usize,
        frozen_entry: u32,
        frozen_max: usize,
    ) -> Vec<Vec<MinCand>> {
        let query = self.vector(id);
        let qd = QueryDist::Exact(query);
        let mut ep = frozen_entry;
        let mut ep_dist = self.dist(query, ep);

        // Greedy descent through layers above the insertion level.
        let mut l = frozen_max;
        while l > level {
            let mut changed = true;
            while changed {
                changed = false;
                if l < self.graph.level_count(ep) {
                    for &nb in self.graph.neighbors(ep, l) {
                        let d = self.dist(query, nb);
                        if d < ep_dist {
                            ep = nb;
                            ep_dist = d;
                            changed = true;
                        }
                    }
                }
            }
            if l == 0 {
                break;
            }
            l -= 1;
        }

        let top = level.min(frozen_max);
        let mut entry_points = vec![MinCand {
            dist: ep_dist,
            id: ep,
        }];
        let mut out = vec![Vec::new(); top + 1];
        let budget = Budget::unlimited();
        let mut ticker = Ticker::new(&budget);
        // Each pool worker leases its own thread-local scratch, so the
        // parallel phase-1 searches never contend or allocate bitmaps.
        with_scratch(|scratch| {
            for lev in (0..=top).rev() {
                let found = self.search_layer(
                    &qd,
                    &entry_points,
                    self.config.ef_construction,
                    lev,
                    scratch,
                    &mut ticker,
                );
                out[lev] = found.clone();
                entry_points = found;
            }
        });
        out
    }

    /// Insert one pre-reserved batch: phase 1 searches the frozen graph in
    /// parallel; phase 2 links sequentially in id order, also considering
    /// in-batch predecessors so co-inserted near-duplicates still connect.
    fn insert_batch(&mut self, first_id: u32, levels: &[usize], pool: &Pool) {
        let frozen_entry = self.entry.expect("batch insert requires an entry point");
        let frozen_max = self.max_level;
        let batch = levels.len();

        let found: Vec<Vec<Vec<MinCand>>> = pool
            .map(batch, 4, |range| {
                range
                    .map(|b| {
                        self.frozen_candidates(
                            first_id + b as u32,
                            levels[b],
                            frozen_entry,
                            frozen_max,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();

        for b in 0..batch {
            let id = first_id + b as u32;
            let level = levels[b];
            let query = self.vector(id);
            // Distances to in-batch predecessors, computed once per node.
            // The borrow of `query` ends here, before the links below
            // mutate the adjacency lists.
            let in_batch: Vec<MinCand> = (0..b)
                .map(|j| MinCand {
                    dist: self.dist(query, first_id + j as u32),
                    id: first_id + j as u32,
                })
                .collect();
            let top = level.min(frozen_max);
            for lev in (0..=top).rev() {
                let mut cands = found[b][lev].clone();
                cands.extend(
                    in_batch
                        .iter()
                        .filter(|c| lev < self.graph.level_count(c.id))
                        .copied(),
                );
                let neighbors = self.select_neighbors(cands, self.config.m);
                for &nb in &neighbors {
                    let nodes = self.graph.heap_mut();
                    nodes[id as usize].neighbors[lev].push(nb);
                    nodes[nb as usize].neighbors[lev].push(id);
                    self.shrink_neighbors(nb, lev);
                }
            }
            if level > self.max_level {
                self.max_level = level;
                self.entry = Some(id);
            }
        }
    }

    /// Batched parallel construction. The candidate search for each batch
    /// runs read-only against the graph as of the previous batch
    /// (parallelized over the batch via `pool`); linking is a sequential
    /// pass in id order. The produced graph is **identical for any pool
    /// size** — batch boundaries and level sampling never depend on the
    /// thread count — though it legitimately differs from the graph the
    /// strictly sequential [`VectorIndex::add`] loop builds.
    pub fn add_batch_parallel(&mut self, vectors: &[f32], pool: &Pool) {
        assert_eq!(vectors.len() % self.dim, 0, "row-major shape mismatch");
        // Growing the matrix invalidates any attached SQ8 codes.
        self.sq8 = None;
        let n = vectors.len() / self.dim;
        let mut next = 0;
        // Bootstrap sequentially until the graph can seed frozen searches.
        while next < n && self.graph.len() < PAR_BATCH {
            self.add(&vectors[next * self.dim..(next + 1) * self.dim]);
            next += 1;
        }
        while next < n {
            let batch = PAR_BATCH.min(n - next);
            let first_id = self.graph.len() as u32;
            // Reserve ids: vectors, levels (sequential RNG draw — identical
            // to the order the sequential path would draw them), empty
            // adjacency. The new nodes are link-free until phase 2, so
            // frozen searches can never reach them.
            let levels: Vec<usize> = (0..batch).map(|_| self.sample_level()).collect();
            self.vectors
                .make_mut()
                .extend_from_slice(&vectors[next * self.dim..(next + batch) * self.dim]);
            for &l in &levels {
                self.graph.heap_mut().push(Node {
                    neighbors: vec![Vec::new(); l + 1],
                });
            }
            self.insert_batch(first_id, &levels, pool);
            next += batch;
        }
    }

    /// Algorithm 5 under a cooperative [`Budget`]: identical to
    /// [`VectorIndex::search`] while the budget lasts; when it expires
    /// mid-traversal the search stops at the next candidate boundary and
    /// returns the best hits gathered so far with `complete == false`.
    /// Unlimited budgets never read a clock, so the plain `search` path
    /// pays nothing for this hook.
    pub fn search_budgeted(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        self.search_budgeted_filtered(query, k, budget, None)
    }

    /// [`Self::search_budgeted`] with tombstone filtering. The graph keeps
    /// its dead nodes as *routing* waypoints (removing them would tear the
    /// small-world structure), so the beam is widened by the tombstone
    /// count — bounding the worst case where all deleted rows crowd the
    /// true top-k — and dead ids are dropped from the final hits.
    pub fn search_budgeted_filtered(
        &self,
        query: &[f32],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> BudgetedSearch {
        match deleted {
            Some(tombs) if !tombs.is_empty() => {
                let wide_k = k.saturating_add(tombs.len()).min(self.len().max(k));
                let mut out = self.search_budgeted_raw(query, wide_k, budget);
                out.hits.retain(|h| !tombs.contains(h.id));
                out.hits.truncate(k);
                out
            }
            _ => self.search_budgeted_raw(query, k, budget),
        }
    }

    fn search_budgeted_raw(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let Some(mut ep) = self.entry else {
            return BudgetedSearch {
                hits: Vec::new(),
                complete: true,
                visited: 0,
            };
        };
        let mut ticker = Ticker::new(budget);
        // With an SQ8 plane attached, the graph is traversed over the
        // quantized codes (≈4× less memory traffic per hop); the final ef
        // beam is then rescored against the exact f32 vectors before
        // truncating to k, so reported distances are always exact.
        let qd = match &self.sq8 {
            Some(plane) => QueryDist::Sq8 {
                plane,
                prep: plane.prepare(query, self.config.metric, self.unit_norm),
            },
            None => QueryDist::Exact(query),
        };
        let mut ep_dist = qd.dist(self, ep);
        let mut descent_cut = ticker.tick();
        // Greedy descent to layer 1 (skipped once the budget expires — the
        // current entry point is still a usable, if coarse, seed).
        for l in (1..=self.max_level).rev() {
            if descent_cut {
                break;
            }
            let mut changed = true;
            while changed && !descent_cut {
                changed = false;
                if l < self.graph.level_count(ep) {
                    for &nb in self.graph.neighbors(ep, l) {
                        let d = qd.dist(self, nb);
                        if ticker.tick() {
                            descent_cut = true;
                            break;
                        }
                        if d < ep_dist {
                            ep = nb;
                            ep_dist = d;
                            changed = true;
                        }
                    }
                }
            }
        }
        // Brownout rung 1+ shrinks the beam: a quarter of the configured
        // ef still navigates the graph but touches far fewer candidates;
        // the deepest rung drops to the minimum viable beam (k).
        let ef = match budget.effort() {
            Effort::Full => self.config.ef_search,
            Effort::ReducedBeam | Effort::Surrogate => (self.config.ef_search / 4).max(8),
            Effort::Truncated => k,
        }
        .max(k);
        let found = with_scratch(|scratch| {
            self.search_layer(
                &qd,
                &[MinCand {
                    dist: ep_dist,
                    id: ep,
                }],
                ef,
                0,
                scratch,
                &mut ticker,
            )
        });
        let mut visited = ticker.visited;
        // Rung 2+ serves the quantized surrogate directly: skipping the
        // exact rescore saves one f32 row read per beam survivor at the
        // cost of quantization error in the reported distances.
        let rescore = budget.effort() < Effort::Surrogate;
        let mut hits: Vec<Neighbor> = found
            .into_iter()
            .map(|c| Neighbor {
                id: c.id,
                distance: match qd {
                    // Exact rescore of the surviving beam: replace each
                    // quantized surrogate with the true f32 surrogate.
                    QueryDist::Sq8 { .. } if rescore => self.dist(query, c.id),
                    _ => c.dist,
                },
            })
            .collect();
        if rescore && matches!(qd, QueryDist::Sq8 { .. }) {
            visited += hits.len();
        }
        hits = finalize_hits(hits, k);
        for h in &mut hits {
            h.distance = self
                .config
                .metric
                .distance_from_surrogate(h.distance, self.unit_norm);
        }
        BudgetedSearch {
            hits,
            complete: !ticker.expired,
            visited,
        }
    }

    /// Budgeted exact scan over this index's stored vectors — the rescue
    /// rung of the degradation ladder when graph traversal itself fails
    /// (e.g. a panic on a structurally damaged graph): same vectors, no
    /// graph involved, same partial-results contract as
    /// [`crate::FlatIndex::search_budgeted`]. Deliberately ignores any
    /// attached SQ8 plane — the bottom of the ladder stays exact f32.
    pub fn flat_scan_budgeted(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        self.flat_scan_budgeted_filtered(query, k, budget, None)
    }

    /// [`Self::flat_scan_budgeted`] with tombstone filtering: the exact
    /// rescue path over live rows only.
    pub fn flat_scan_budgeted_filtered(
        &self,
        query: &[f32],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> BudgetedSearch {
        crate::flat::scan_budgeted(
            &self.vectors,
            self.dim,
            self.config.metric,
            self.unit_norm,
            query,
            k,
            budget,
            deleted,
        )
    }

    /// Search many row-major queries in parallel. Results are identical to
    /// per-query [`VectorIndex::search`] calls, in query order, for any
    /// pool size (searches are read-only).
    pub fn search_batch(&self, queries: &[f32], k: usize, pool: &Pool) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len() % self.dim, 0, "row-major shape mismatch");
        let nq = queries.len() / self.dim;
        pool.map(nq, 1, |range| {
            range
                .map(|q| self.search(&queries[q * self.dim..(q + 1) * self.dim], k))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl VectorIndex for HnswIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.config.metric
    }

    fn len(&self) -> usize {
        self.graph.len()
    }

    /// Algorithm 1: insert a vector. Construction always runs against the
    /// exact f32 vectors; any attached SQ8 plane is dropped because its
    /// codes would no longer cover the grown matrix.
    fn add(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        self.sq8 = None;
        let id = self.graph.len() as u32;
        self.vectors.make_mut().extend_from_slice(vector);
        let level = self.sample_level();
        self.graph.heap_mut().push(Node {
            neighbors: vec![Vec::new(); level + 1],
        });

        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        let mut ep_dist = self.dist(vector, ep);

        // Greedy descent through layers above the insertion level.
        let mut l = self.max_level;
        while l > level {
            let mut changed = true;
            while changed {
                changed = false;
                if l < self.graph.level_count(ep) {
                    for &nb in self.graph.neighbors(ep, l) {
                        let d = self.dist(vector, nb);
                        if d < ep_dist {
                            ep = nb;
                            ep_dist = d;
                            changed = true;
                        }
                    }
                }
            }
            if l == 0 {
                break;
            }
            l -= 1;
        }

        // Insertion layers: efConstruction search + heuristic linking.
        let top = level.min(self.max_level);
        let mut entry_points = vec![MinCand {
            dist: ep_dist,
            id: ep,
        }];
        let budget = Budget::unlimited();
        let mut ticker = Ticker::new(&budget);
        with_scratch(|scratch| {
            for lev in (0..=top).rev() {
                let found = self.search_layer(
                    &QueryDist::Exact(vector),
                    &entry_points,
                    self.config.ef_construction,
                    lev,
                    scratch,
                    &mut ticker,
                );
                let neighbors = self.select_neighbors(found.clone(), self.config.m);
                for &nb in &neighbors {
                    let nodes = self.graph.heap_mut();
                    nodes[id as usize].neighbors[lev].push(nb);
                    nodes[nb as usize].neighbors[lev].push(id);
                    self.shrink_neighbors(nb, lev);
                }
                entry_points = found;
            }
        });

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    /// Algorithm 5: k-NN search ([`HnswIndex::search_budgeted`] with an
    /// unlimited budget).
    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_budgeted(query, k, &Budget::unlimited()).hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    /// Clustered data (harder for graph navigability than uniform).
    fn clustered_data(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let c = &centers[i % clusters];
            for d in 0..dim {
                data.push(c[d] + rng.gen_range(-0.3f32..0.3));
            }
        }
        data
    }

    fn recall_at_k(data: &[f32], dim: usize, queries: &[f32], k: usize) -> f64 {
        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(data);
        let mut hnsw = HnswIndex::new(dim, HnswConfig::default());
        hnsw.add_batch(data);

        let nq = queries.len() / dim;
        let mut hit = 0usize;
        for q in queries.chunks_exact(dim) {
            let truth: std::collections::HashSet<u32> =
                flat.search(q, k).into_iter().map(|h| h.id).collect();
            let approx = hnsw.search(q, k);
            hit += approx.iter().filter(|h| truth.contains(&h.id)).count();
        }
        hit as f64 / (nq * k) as f64
    }

    #[test]
    fn high_recall_on_uniform_data() {
        let data = random_data(2000, 8, 1);
        let queries = random_data(20, 8, 2);
        let r = recall_at_k(&data, 8, &queries, 10);
        assert!(r >= 0.95, "recall {r}");
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let data = clustered_data(2000, 8, 16, 3);
        let queries = clustered_data(20, 8, 16, 4);
        let r = recall_at_k(&data, 8, &queries, 10);
        assert!(r >= 0.9, "recall {r}");
    }

    #[test]
    fn exact_match_is_found_first() {
        let data = random_data(500, 4, 5);
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        idx.add_batch(&data);
        let target = &data[17 * 4..18 * 4];
        let hits = idx.search(target, 1);
        assert_eq!(hits[0].id, 17);
        assert!(hits[0].distance < 1e-6);
    }

    #[test]
    fn filtered_search_never_returns_tombstoned_ids() {
        let data = random_data(800, 6, 8);
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&data);
        let q = &data[42 * 6..43 * 6];
        // Tombstone the query's own row plus its current top neighbors:
        // the worst case, where every dead row crowds the true top-k.
        let tombs: TombSet = idx.search(q, 10).into_iter().map(|h| h.id).collect();
        let hits = idx.search_budgeted_filtered(q, 10, &Budget::unlimited(), Some(&tombs));
        assert_eq!(hits.hits.len(), 10, "widened beam still fills k");
        for h in &hits.hits {
            assert!(!tombs.contains(h.id), "tombstoned id {} returned", h.id);
        }
        // The rescue scan obeys the same contract.
        let rescue = idx.flat_scan_budgeted_filtered(q, 10, &Budget::unlimited(), Some(&tombs));
        assert_eq!(rescue.hits.len(), 10);
        for h in &rescue.hits {
            assert!(!tombs.contains(h.id));
        }
    }

    #[test]
    fn degree_bounds_hold() {
        let data = random_data(1500, 6, 6);
        let cfg = HnswConfig::default();
        let mut idx = HnswIndex::new(6, cfg);
        idx.add_batch(&data);
        for id in 0..idx.len() as u32 {
            for l in 0..idx.graph().level_count(id) {
                let deg = idx.graph().neighbors(id, l).len();
                let bound = if l == 0 { cfg.m0 } else { cfg.m };
                assert!(deg <= bound, "layer {l} degree {deg}");
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let mut idx = HnswIndex::new(3, HnswConfig::default());
        assert!(idx.search(&[0., 0., 0.], 5).is_empty());
        idx.add(&[1., 2., 3.]);
        let hits = idx.search(&[1., 2., 3.], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn deterministic_build_and_search() {
        let data = random_data(800, 5, 9);
        let build = || {
            let mut idx = HnswIndex::new(5, HnswConfig::default());
            idx.add_batch(&data);
            idx.search(&data[0..5], 10)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parallel_build_is_pool_size_invariant() {
        // The graph (and therefore every search result) must be
        // bit-identical whether the batched build runs on 1 or many
        // threads.
        let data = random_data(1500, 8, 31);
        let queries = random_data(25, 8, 32);
        let build = |threads: usize| {
            let mut idx = HnswIndex::new(8, HnswConfig::default());
            idx.add_batch_parallel(&data, &Pool::new(threads));
            idx
        };
        let a = build(1);
        let b = build(4);
        let c = build(13);
        for q in queries.chunks_exact(8) {
            let ha = a.search(q, 10);
            assert_eq!(ha, b.search(q, 10), "1 vs 4 threads");
            assert_eq!(ha, c.search(q, 10), "1 vs 13 threads");
        }
    }

    #[test]
    fn parallel_build_keeps_recall() {
        let data = random_data(2000, 8, 33);
        let queries = random_data(20, 8, 34);
        let mut flat = FlatIndex::new(8, Metric::L2);
        flat.add_batch(&data);
        let mut hnsw = HnswIndex::new(8, HnswConfig::default());
        hnsw.add_batch_parallel(&data, &Pool::new(4));
        let mut hit = 0usize;
        for q in queries.chunks_exact(8) {
            let truth: std::collections::HashSet<u32> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            hit += hnsw.search(q, 10).iter().filter(|h| truth.contains(&h.id)).count();
        }
        let r = hit as f64 / 200.0;
        assert!(r >= 0.95, "parallel-build recall {r}");
    }

    #[test]
    fn parallel_batch_search_matches_sequential() {
        let data = random_data(1200, 6, 35);
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&data);
        let queries = random_data(17, 6, 36);
        let seq: Vec<_> = queries.chunks_exact(6).map(|q| idx.search(q, 7)).collect();
        for threads in [1, 3, 8] {
            assert_eq!(seq, idx.search_batch(&queries, 7, &Pool::new(threads)));
        }
    }

    #[test]
    fn degree_bounds_hold_for_parallel_build() {
        let data = random_data(1500, 6, 37);
        let cfg = HnswConfig::default();
        let mut idx = HnswIndex::new(6, cfg);
        idx.add_batch_parallel(&data, &Pool::new(4));
        for id in 0..idx.len() as u32 {
            for l in 0..idx.graph().level_count(id) {
                let deg = idx.graph().neighbors(id, l).len();
                let bound = if l == 0 { cfg.m0 } else { cfg.m };
                assert!(deg <= bound, "layer {l} degree {deg}");
            }
        }
    }

    #[test]
    fn budgeted_search_with_unlimited_budget_matches_search() {
        let data = random_data(1200, 6, 41);
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&data);
        let queries = random_data(10, 6, 42);
        for q in queries.chunks_exact(6) {
            let plain = idx.search(q, 8);
            let budgeted = idx.search_budgeted(q, 8, &Budget::unlimited());
            assert!(budgeted.complete);
            assert!(budgeted.visited > 0);
            assert_eq!(budgeted.hits, plain);
        }
    }

    #[test]
    fn expired_budget_returns_partial_results_not_nothing() {
        let data = random_data(2000, 8, 43);
        let mut idx = HnswIndex::new(8, HnswConfig::default());
        idx.add_batch(&data);
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = idx.search_budgeted(&data[0..8], 10, &expired);
        assert!(!out.complete, "expired budget must be reported");
        // The traversal stops almost immediately but still surfaces the
        // best candidates it touched (at least the entry point).
        assert!(!out.hits.is_empty());
        assert!(out.visited < 2000, "must not have scanned everything");
        for w in out.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn flat_scan_budgeted_matches_flat_index() {
        let data = random_data(900, 5, 44);
        let mut hnsw = HnswIndex::new(5, HnswConfig::default());
        hnsw.add_batch(&data);
        let mut flat = FlatIndex::new(5, Metric::L2);
        flat.add_batch(&data);
        let q = &data[35 * 5..36 * 5];
        let rescue = hnsw.flat_scan_budgeted(q, 7, &Budget::unlimited());
        assert!(rescue.complete);
        assert_eq!(rescue.visited, 900);
        assert_eq!(rescue.hits, flat.search(q, 7));
    }

    /// The epoch-stamped scratch must make repeated same-thread queries
    /// (reused scratch, bumped epochs) indistinguishable from queries run
    /// on a freshly spawned thread (brand-new scratch).
    #[test]
    fn scratch_reuse_matches_fresh_thread_results() {
        let data = random_data(1500, 7, 51);
        let mut idx = HnswIndex::new(7, HnswConfig::default());
        idx.add_batch(&data);
        let idx = std::sync::Arc::new(idx);
        let queries = random_data(40, 7, 52);
        // Warm the thread-local scratch heavily, then interleave checks:
        // each query also runs on a fresh thread whose scratch has never
        // been used, and the results must be identical.
        for q in queries.chunks_exact(7) {
            let warm = idx.search(q, 9);
            let again = idx.search(q, 9);
            let idx2 = idx.clone();
            let q2 = q.to_vec();
            let fresh = std::thread::spawn(move || idx2.search(&q2, 9))
                .join()
                .unwrap();
            assert_eq!(warm, again, "same-thread reuse must be idempotent");
            assert_eq!(warm, fresh, "reused scratch must match fresh scratch");
        }
    }

    /// Quantized traversal must keep recall against the exact-f32 graph
    /// search and must report *exact* f32 distances (the beam is rescored
    /// before truncation).
    #[test]
    fn sq8_traversal_keeps_recall_and_exact_distances() {
        let n = 2000;
        let dim = 16;
        let data = random_data(n, dim, 53);
        let queries = random_data(30, dim, 54);
        let mut exact = HnswIndex::new(dim, HnswConfig::default());
        exact.add_batch(&data);
        let mut quant = exact.clone();
        quant.quantize_sq8();
        assert!(quant.sq8().is_some());

        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(&data);

        let k = 10;
        let mut hit = 0usize;
        let nq = queries.len() / dim;
        for q in queries.chunks_exact(dim) {
            let truth: std::collections::HashSet<u32> =
                flat.search(q, k).into_iter().map(|h| h.id).collect();
            let hits = quant.search(q, k);
            hit += hits.iter().filter(|h| truth.contains(&h.id)).count();
            for h in &hits {
                let want = Metric::L2
                    .distance(q, &data[h.id as usize * dim..(h.id as usize + 1) * dim]);
                assert!(
                    (h.distance - want).abs() <= 1e-5 * want.max(1.0),
                    "distance must be exact f32 after rescore: {} vs {want}",
                    h.distance
                );
            }
        }
        let r = hit as f64 / (nq * k) as f64;
        assert!(r >= 0.93, "sq8 traversal recall {r}");
    }

    #[test]
    fn hnsw_add_after_quantize_drops_stale_plane() {
        let data = random_data(300, 5, 55);
        let mut idx = HnswIndex::new(5, HnswConfig::default());
        idx.add_batch(&data);
        idx.quantize_sq8();
        assert!(idx.sq8().is_some());
        idx.add(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert!(idx.sq8().is_none(), "grown matrix must drop stale codes");
        idx.quantize_sq8();
        idx.add_batch_parallel(&random_data(600, 5, 56), &Pool::new(2));
        assert!(idx.sq8().is_none(), "batched growth must drop stale codes");
    }

    #[test]
    fn level_distribution_is_geometricish() {
        let mut idx = HnswIndex::new(2, HnswConfig::default());
        let mut counts = [0usize; 8];
        for _ in 0..20_000 {
            let l = idx.sample_level().min(7);
            counts[l] += 1;
        }
        assert!(counts[0] > counts[1], "level 0 most common: {counts:?}");
        assert!(counts[1] > counts[2]);
        // Expected fraction at level 0 is 1 − 1/M ≈ 0.94 for M=16.
        let frac0 = counts[0] as f64 / 20_000.0;
        assert!((frac0 - 0.94).abs() < 0.05, "frac0 {frac0}");
    }
}
