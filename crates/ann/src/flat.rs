//! Exact brute-force index: the correctness oracle and small-scale fallback.
//!
//! The scan is *batched*: one query is scored against the whole store with
//! the blocked one-vs-many SIMD kernels (`deepjoin-simd`), filling a dense
//! score buffer in row blocks instead of calling a distance function per
//! vector. Multi-query workloads additionally parallelize over queries via
//! [`FlatIndex::search_batch`].

use deepjoin_par::Pool;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetedSearch, Effort, TRUNCATED_SCAN_ROWS};
use crate::distance::Metric;
use crate::index::{Neighbor, TopK, VectorIndex};
use crate::plane::PodVec;
use crate::sq8::Sq8Plane;
use crate::tombstones::TombSet;

/// Rows scored per block. Large enough to amortize dispatch, small enough
/// that the score buffer stays in L1.
const SCAN_BLOCK: usize = 256;

/// Budgeted blocked scan over row-major `data`, shared by
/// [`FlatIndex::search_budgeted`] and the HNSW flat-rescue path
/// (`HnswIndex::flat_scan_budgeted`). The budget is polled once per scan
/// block; on expiry the scan stops and returns the best-so-far top-k with
/// `complete == false`. `visited` counts the rows actually scored.
/// Tombstoned rows (`deleted`) are still scored by the block kernel but are
/// never offered to the selector, so they cannot appear in results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_budgeted(
    data: &[f32],
    dim: usize,
    metric: Metric,
    unit_norm: bool,
    query: &[f32],
    k: usize,
    budget: &Budget,
    deleted: Option<&TombSet>,
) -> BudgetedSearch {
    assert_eq!(query.len(), dim, "dimension mismatch");
    let full_n = data.len() / dim;
    // Brownout rung 3: answer from a bounded row prefix. The truncated
    // result is honest about it (`complete == false`) and the server flags
    // the reply with its rung.
    let n = if budget.effort() >= Effort::Truncated {
        full_n.min(TRUNCATED_SCAN_ROWS)
    } else {
        full_n
    };
    let limited = budget.is_limited();
    let mut top = TopK::new(k);
    let mut scores = [0f32; SCAN_BLOCK];
    let mut base = 0usize;
    let mut complete = n == full_n;
    while base < n {
        if limited && budget.expired() {
            complete = false;
            break;
        }
        let rows = SCAN_BLOCK.min(n - base);
        let block = &data[base * dim..(base + rows) * dim];
        metric.surrogate_block(query, block, unit_norm, &mut scores[..rows]);
        match deleted {
            Some(tombs) if !tombs.is_empty() => {
                for (i, &s) in scores[..rows].iter().enumerate() {
                    let id = (base + i) as u32;
                    if !tombs.contains(id) {
                        top.push(id, s);
                    }
                }
            }
            _ => {
                for (i, &s) in scores[..rows].iter().enumerate() {
                    top.push((base + i) as u32, s);
                }
            }
        }
        base += rows;
    }
    let mut hits = top.into_sorted();
    for h in &mut hits {
        h.distance = metric.distance_from_surrogate(h.distance, unit_norm);
    }
    BudgetedSearch {
        hits,
        complete,
        visited: base,
    }
}

/// Batched [`scan_budgeted`]: every query in the wave rides one pass over
/// the store. The loop is rows-outer, queries-inner — each `SCAN_BLOCK` of
/// vectors is pulled through the cache once and scored against all `nq`
/// queries while hot, instead of once per query — which is where a wave's
/// memory-bandwidth amortization comes from. Per `(query, block)` the exact
/// same kernel call and selector pushes run as in the single-query scan, so
/// with an unexpired budget results are bit-identical to `nq` sequential
/// scans. One budget governs the whole wave (the caller passes the min of
/// its members' deadlines); expiry stops all queries at the same block
/// boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_budgeted_batch(
    data: &[f32],
    dim: usize,
    metric: Metric,
    unit_norm: bool,
    queries: &[f32],
    k: usize,
    budget: &Budget,
    deleted: Option<&TombSet>,
) -> Vec<BudgetedSearch> {
    assert_eq!(queries.len() % dim, 0, "row-major shape mismatch");
    let nq = queries.len() / dim;
    if nq == 0 {
        return Vec::new();
    }
    let full_n = data.len() / dim;
    let n = if budget.effort() >= Effort::Truncated {
        full_n.min(TRUNCATED_SCAN_ROWS)
    } else {
        full_n
    };
    let limited = budget.is_limited();
    let mut tops: Vec<TopK> = (0..nq).map(|_| TopK::new(k)).collect();
    let mut scores = [0f32; SCAN_BLOCK];
    let mut base = 0usize;
    let mut complete = n == full_n;
    while base < n {
        if limited && budget.expired() {
            complete = false;
            break;
        }
        let rows = SCAN_BLOCK.min(n - base);
        let block = &data[base * dim..(base + rows) * dim];
        for (qi, top) in tops.iter_mut().enumerate() {
            let query = &queries[qi * dim..(qi + 1) * dim];
            metric.surrogate_block(query, block, unit_norm, &mut scores[..rows]);
            match deleted {
                Some(tombs) if !tombs.is_empty() => {
                    for (i, &s) in scores[..rows].iter().enumerate() {
                        let id = (base + i) as u32;
                        if !tombs.contains(id) {
                            top.push(id, s);
                        }
                    }
                }
                _ => {
                    for (i, &s) in scores[..rows].iter().enumerate() {
                        top.push((base + i) as u32, s);
                    }
                }
            }
        }
        base += rows;
    }
    tops.into_iter()
        .map(|top| {
            let mut hits = top.into_sorted();
            for h in &mut hits {
                h.distance = metric.distance_from_surrogate(h.distance, unit_norm);
            }
            BudgetedSearch {
                hits,
                complete,
                visited: base,
            }
        })
        .collect()
}

/// Linear-scan exact kNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    /// Row-major vectors: heap-owned after a build, or a zero-copy view
    /// into a mapped v2 artifact section (see [`crate::plane`]). Every scan
    /// goes through `as_slice`, so both backings search byte-identically.
    data: PodVec<f32>,
    /// True when every stored vector is promised to be unit-norm (set at
    /// build time by the caller, e.g. DeepJoin's normalizing encoder). Lets
    /// cosine rank by the cheap `-dot` surrogate. Not persisted: decoded
    /// indexes conservatively fall back to the full cosine path.
    #[serde(skip)]
    unit_norm: bool,
    /// Optional SQ8 plane: when attached, scans run two-stage (quantized
    /// candidate generation + exact f32 rescore, see `sq8`). Persisted as
    /// its own `SQ8V` section, not through serde.
    #[serde(skip)]
    sq8: Option<Sq8Plane>,
}

impl FlatIndex {
    /// Empty index of dimension `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self {
            dim,
            metric,
            data: PodVec::new(),
            unit_norm: false,
            sq8: None,
        }
    }

    /// Index over an existing vector plane (heap or mapped): `data` holds
    /// `data.len() / dim` row-major vectors. Used by the artifact decoders.
    pub fn from_plane(dim: usize, metric: Metric, data: PodVec<f32>) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "plane length not a multiple of dim");
        Self {
            dim,
            metric,
            data,
            unit_norm: false,
            sq8: None,
        }
    }

    /// The raw row-major vector plane.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The vector plane itself — clone it (cheap for mapped views) to hand
    /// the same backing to another structure without copying.
    pub fn plane(&self) -> &PodVec<f32> {
        &self.data
    }

    /// True when the vector plane is a zero-copy view of a mapped artifact
    /// rather than heap-resident (reported by `dj info`).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Declare (at build time) that every vector added is L2-normalized,
    /// enabling the cosine fast path. The promise is the caller's to keep.
    pub fn with_unit_norm(mut self, unit_norm: bool) -> Self {
        self.unit_norm = unit_norm;
        self
    }

    /// Whether the index assumes unit-norm vectors.
    pub fn unit_norm(&self) -> bool {
        self.unit_norm
    }

    /// Stored vector by id.
    pub fn vector(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Quantize the stored vectors into an SQ8 plane and attach it: scans
    /// switch to the two-stage quantized-then-rescored path. Call after the
    /// index is fully populated — a later [`VectorIndex::add`] drops the
    /// plane (its codes would be stale).
    pub fn quantize_sq8(&mut self) {
        self.sq8 = Some(Sq8Plane::quantize(&self.data, self.dim));
    }

    /// Attach an already-built SQ8 plane (e.g. decoded from a snapshot's
    /// `SQ8V` section). The plane must cover exactly the stored rows.
    pub fn attach_sq8(&mut self, plane: Sq8Plane) {
        assert_eq!(plane.dim(), self.dim, "plane dimension mismatch");
        assert_eq!(plane.len(), self.len(), "plane row-count mismatch");
        self.sq8 = Some(plane);
    }

    /// Drop the SQ8 plane, reverting to exact f32 scans.
    pub fn detach_sq8(&mut self) {
        self.sq8 = None;
    }

    /// The attached SQ8 plane, when one exists.
    pub fn sq8(&self) -> Option<&Sq8Plane> {
        self.sq8.as_ref()
    }

    /// [`VectorIndex::search`] under a cooperative [`Budget`]: the scan
    /// polls the budget between blocks and, on expiry, returns the best
    /// top-k over the rows scored so far (`complete == false`).
    pub fn search_budgeted(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        self.search_budgeted_filtered(query, k, budget, None)
    }

    /// [`Self::search_budgeted`] with tombstone filtering: ids in `deleted`
    /// never appear in the results, in either the exact or the SQ8
    /// two-stage path.
    pub fn search_budgeted_filtered(
        &self,
        query: &[f32],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> BudgetedSearch {
        if let Some(plane) = &self.sq8 {
            return crate::sq8::scan_budgeted(
                plane,
                &self.data,
                self.metric,
                self.unit_norm,
                query,
                k,
                budget,
                deleted,
            );
        }
        scan_budgeted(
            &self.data,
            self.dim,
            self.metric,
            self.unit_norm,
            query,
            k,
            budget,
            deleted,
        )
    }

    /// Batched [`Self::search_budgeted_filtered`]: the whole wave of
    /// row-major queries answered in one pass over the store (see
    /// [`scan_budgeted_batch`]). Results per query are bit-identical to the
    /// single-query path under the same (unexpired) budget. With an SQ8
    /// plane attached the candidate pass already runs over 1-byte codes, so
    /// the wave loops the existing two-stage scan per query — still one
    /// call site, identical answers.
    pub fn search_budgeted_batch_filtered(
        &self,
        queries: &[f32],
        k: usize,
        budget: &Budget,
        deleted: Option<&TombSet>,
    ) -> Vec<BudgetedSearch> {
        assert_eq!(queries.len() % self.dim, 0, "row-major shape mismatch");
        if self.sq8.is_some() {
            return queries
                .chunks_exact(self.dim)
                .map(|q| self.search_budgeted_filtered(q, k, budget, deleted))
                .collect();
        }
        scan_budgeted_batch(
            &self.data,
            self.dim,
            self.metric,
            self.unit_norm,
            queries,
            k,
            budget,
            deleted,
        )
    }

    /// Search many row-major queries (`queries.len() / dim` of them),
    /// parallelized over queries with `pool`. Results are identical to
    /// calling [`VectorIndex::search`] per query, in query order, for any
    /// pool size.
    pub fn search_batch(&self, queries: &[f32], k: usize, pool: &Pool) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len() % self.dim, 0, "row-major shape mismatch");
        let nq = queries.len() / self.dim;
        pool.map(nq, 1, |range| {
            range
                .map(|q| self.search(&queries[q * self.dim..(q + 1) * self.dim], k))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn add(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        // An attached plane no longer covers the new row; drop it rather
        // than serve stale codes. Re-quantize after bulk loading.
        self.sq8 = None;
        let id = self.len() as u32;
        // A mapped plane materializes to heap on first mutation.
        self.data.make_mut().extend_from_slice(vector);
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        // Rank by the cheap surrogate, computed block-at-a-time with the
        // one-vs-many kernels into a bounded top-k selector (never
        // materializing all n hits), then convert survivors to distances.
        // The unlimited budget never reads a clock (see `budget`).
        self.search_budgeted(query, k, &Budget::unlimited()).hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_effort_scans_a_bounded_prefix_and_reports_incomplete() {
        let dim = 2;
        let n = TRUNCATED_SCAN_ROWS + 512;
        let mut data = vec![0f32; n * dim];
        for (i, row) in data.chunks_mut(dim).enumerate() {
            row[0] = i as f32;
        }
        // The true nearest neighbor to this query lives past the truncation
        // horizon — a truncated scan must miss it and say so.
        let query = vec![(n - 1) as f32, 0.0];
        let full = scan_budgeted(
            &data,
            dim,
            Metric::L2,
            false,
            &query,
            1,
            &Budget::unlimited(),
            None,
        );
        assert!(full.complete);
        assert_eq!(full.hits[0].id, (n - 1) as u32);
        let cut = scan_budgeted(
            &data,
            dim,
            Metric::L2,
            false,
            &query,
            1,
            &Budget::unlimited().with_effort(Effort::Truncated),
            None,
        );
        assert!(!cut.complete, "truncated scans are honest about coverage");
        assert_eq!(cut.visited, TRUNCATED_SCAN_ROWS);
        assert_eq!(cut.hits[0].id, (TRUNCATED_SCAN_ROWS - 1) as u32);
    }

    #[test]
    fn finds_exact_neighbors() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        idx.add_batch(&[0., 0., 1., 0., 0., 1., 5., 5.]);
        let hits = idx.search(&[0.1, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
        assert!((hits[0].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        idx.add(&[1.0]);
        assert_eq!(idx.search(&[0.0], 10).len(), 1);
    }

    #[test]
    fn inner_product_ranks_by_dot() {
        let mut idx = FlatIndex::new(2, Metric::InnerProduct);
        idx.add_batch(&[1., 0., 0., 1., 2., 2.]);
        let hits = idx.search(&[1., 1.], 3);
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn ids_are_insertion_order() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        assert_eq!(idx.add(&[1.0]), 0);
        assert_eq!(idx.add(&[2.0]), 1);
        assert_eq!(idx.vector(1), &[2.0]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn scan_crosses_block_boundaries() {
        // More vectors than one scan block, with the nearest one placed in
        // the final partial block.
        let n = SCAN_BLOCK * 2 + 37;
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..n {
            let x = if i == n - 1 { 0.5 } else { 10.0 + i as f32 };
            idx.add(&[x, 0.0]);
        }
        let hits = idx.search(&[0.0, 0.0], 3);
        assert_eq!(hits[0].id, (n - 1) as u32);
        assert!((hits[0].distance - 0.5).abs() < 1e-6);
    }

    #[test]
    fn unit_norm_cosine_matches_full_cosine() {
        // Unit vectors on a circle: ranking and distances must agree
        // between the fast path and the full path.
        let mut fast = FlatIndex::new(2, Metric::Cosine).with_unit_norm(true);
        let mut full = FlatIndex::new(2, Metric::Cosine);
        for i in 0..300 {
            let t = i as f32 * 0.021;
            fast.add(&[t.cos(), t.sin()]);
            full.add(&[t.cos(), t.sin()]);
        }
        let q = [0.6f32.cos(), 0.6f32.sin()];
        let a = fast.search(&q, 10);
        let b = full.search(&q, 10);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
        for (x, y) in a.iter().zip(&b) {
            assert!((x.distance - y.distance).abs() < 1e-5);
        }
    }

    #[test]
    fn budgeted_search_with_unlimited_budget_matches_search() {
        let mut idx = FlatIndex::new(3, Metric::L2);
        let data: Vec<f32> = (0..SCAN_BLOCK * 3 * 3).map(|i| (i as f32 * 0.17).sin()).collect();
        idx.add_batch(&data);
        let q = [0.1f32, -0.2, 0.3];
        let plain = idx.search(&q, 7);
        let budgeted = idx.search_budgeted(&q, 7, &Budget::unlimited());
        assert!(budgeted.complete);
        assert_eq!(budgeted.hits, plain);
        assert_eq!(budgeted.visited, idx.len());
    }

    #[test]
    fn expired_budget_stops_scan_with_partial_results() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..SCAN_BLOCK * 4 {
            idx.add(&[i as f32, 0.0]);
        }
        let expired = Budget::with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let out = idx.search_budgeted(&[0.0, 0.0], 5, &expired);
        assert!(!out.complete, "expired budget must report a partial scan");
        assert!(out.visited < idx.len(), "scan must stop early");
        // Whatever was scored is still correctly ranked.
        for w in out.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn cancelled_budget_stops_scan() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..SCAN_BLOCK * 2 {
            idx.add(&[i as f32, 1.0]);
        }
        let flag = Arc::new(AtomicBool::new(true));
        let budget = Budget::unlimited().cancelled_by(flag.clone());
        let out = idx.search_budgeted(&[0.0, 0.0], 3, &budget);
        assert!(!out.complete);
        flag.store(false, Ordering::Relaxed);
        let out = idx.search_budgeted(&[0.0, 0.0], 3, &budget);
        assert!(out.complete);
        assert_eq!(out.visited, idx.len());
    }

    /// Recall@10 of the SQ8 two-stage scan vs the exact f32 scan on a
    /// seeded corpus: the rescored path must stay within 0.01 of exact.
    #[test]
    fn sq8_rescored_recall_at_10_within_1_percent_of_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (n, dim, nq, k) = (3000usize, 32usize, 50usize, 10usize);
        let mut rng = StdRng::seed_from_u64(0x5A8);
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut exact = FlatIndex::new(dim, Metric::L2);
        exact.add_batch(&data);
        let mut quant = exact.clone();
        quant.quantize_sq8();
        assert!(quant.sq8().is_some());
        let mut matched = 0usize;
        for _ in 0..nq {
            let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let truth: std::collections::HashSet<u32> =
                exact.search(&q, k).iter().map(|h| h.id).collect();
            for h in quant.search(&q, k) {
                if truth.contains(&h.id) {
                    matched += 1;
                }
            }
        }
        let recall = matched as f64 / (nq * k) as f64;
        assert!(recall >= 0.99, "SQ8 recall@10 {recall} below 0.99");
    }

    #[test]
    fn sq8_distances_are_exact_f32_distances() {
        let mut idx = FlatIndex::new(3, Metric::L2);
        let data: Vec<f32> = (0..3 * 200).map(|i| (i as f32 * 0.37).sin()).collect();
        idx.add_batch(&data);
        let plain = idx.search(&[0.3, -0.1, 0.8], 5);
        idx.quantize_sq8();
        let quant = idx.search(&[0.3, -0.1, 0.8], 5);
        for (p, q) in plain.iter().zip(&quant) {
            assert_eq!(p.id, q.id);
            assert!((p.distance - q.distance).abs() < 1e-6, "rescored distance must be exact");
        }
    }

    #[test]
    fn add_after_quantize_drops_stale_plane() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        idx.add_batch(&[0., 0., 1., 1.]);
        idx.quantize_sq8();
        assert!(idx.sq8().is_some());
        idx.add(&[2., 2.]);
        assert!(idx.sq8().is_none(), "stale plane must not survive an add");
        // And the new row is searchable.
        assert_eq!(idx.search(&[2., 2.], 1)[0].id, 2);
    }

    #[test]
    fn filtered_scan_excludes_tombstones_in_both_scan_paths() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..600 {
            idx.add(&[i as f32, 0.0]);
        }
        let tombs: TombSet = [0u32, 1, 2, 5, 300].into_iter().collect();
        // Exact path: the nearest live rows are 3, 4, 6, 7.
        let hits =
            idx.search_budgeted_filtered(&[0.0, 0.0], 4, &Budget::unlimited(), Some(&tombs));
        assert_eq!(hits.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 4, 6, 7]);
        // SQ8 two-stage path: same contract.
        idx.quantize_sq8();
        let hits =
            idx.search_budgeted_filtered(&[0.0, 0.0], 4, &Budget::unlimited(), Some(&tombs));
        assert_eq!(hits.hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 4, 6, 7]);
        // An empty tombset behaves exactly like no tombset.
        let none = idx.search_budgeted(&[0.0, 0.0], 4, &Budget::unlimited());
        let empty = idx.search_budgeted_filtered(
            &[0.0, 0.0],
            4,
            &Budget::unlimited(),
            Some(&TombSet::new()),
        );
        assert_eq!(none.hits, empty.hits);
    }

    #[test]
    fn budgeted_batch_scan_is_bit_identical_to_sequential_scans() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        let data: Vec<f32> = (0..(SCAN_BLOCK * 2 + 19) * 4)
            .map(|i| (i as f32 * 0.13).sin())
            .collect();
        idx.add_batch(&data);
        let queries: Vec<f32> = (0..6 * 4).map(|i| (i as f32 * 0.29).cos()).collect();
        let tombs: TombSet = [3u32, 77, 512].into_iter().collect();
        for deleted in [None, Some(&tombs)] {
            let seq: Vec<BudgetedSearch> = queries
                .chunks_exact(4)
                .map(|q| idx.search_budgeted_filtered(q, 5, &Budget::unlimited(), deleted))
                .collect();
            let wave =
                idx.search_budgeted_batch_filtered(&queries, 5, &Budget::unlimited(), deleted);
            assert_eq!(seq, wave);
        }
        // SQ8 two-stage path keeps the same contract.
        idx.quantize_sq8();
        let seq: Vec<BudgetedSearch> = queries
            .chunks_exact(4)
            .map(|q| idx.search_budgeted_filtered(q, 5, &Budget::unlimited(), None))
            .collect();
        let wave = idx.search_budgeted_batch_filtered(&queries, 5, &Budget::unlimited(), None);
        assert_eq!(seq, wave);
        // Empty wave: no queries, no results.
        assert!(idx
            .search_budgeted_batch_filtered(&[], 5, &Budget::unlimited(), None)
            .is_empty());
    }

    #[test]
    fn budgeted_batch_scan_expiry_stops_every_member_at_one_boundary() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..SCAN_BLOCK * 4 {
            idx.add(&[i as f32, 0.0]);
        }
        let queries = vec![0.0f32, 0.0, 1.0, 0.0, 2.0, 0.0];
        let expired = Budget::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let wave = idx.search_budgeted_batch_filtered(&queries, 5, &expired, None);
        assert_eq!(wave.len(), 3);
        let visited = wave[0].visited;
        for r in &wave {
            assert!(!r.complete, "expired wave must report partial scans");
            assert_eq!(r.visited, visited, "one block boundary for the wave");
        }
    }

    #[test]
    fn batch_search_matches_sequential_for_any_pool() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        let data: Vec<f32> = (0..400).map(|i| (i as f32 * 0.13).sin()).collect();
        idx.add_batch(&data);
        let queries: Vec<f32> = (0..40).map(|i| (i as f32 * 0.29).cos()).collect();
        let seq: Vec<Vec<Neighbor>> = queries
            .chunks_exact(4)
            .map(|q| idx.search(q, 5))
            .collect();
        for threads in [1, 2, 8] {
            let par = idx.search_batch(&queries, 5, &Pool::new(threads));
            assert_eq!(seq, par, "threads {threads}");
        }
    }
}
