//! Exact brute-force index: the correctness oracle and small-scale fallback.

use serde::{Deserialize, Serialize};

use crate::distance::Metric;
use crate::index::{finalize_hits, Neighbor, VectorIndex};

/// Linear-scan exact kNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    data: Vec<f32>,
}

impl FlatIndex {
    /// Empty index of dimension `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self {
            dim,
            metric,
            data: Vec::new(),
        }
    }

    /// Stored vector by id.
    pub fn vector(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn add(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(vector);
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        // Rank by the cheap surrogate, then convert to true distances.
        let mut hits: Vec<Neighbor> = self
            .data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, v)| Neighbor {
                id: i as u32,
                distance: self.metric.surrogate(query, v),
            })
            .collect();
        hits = finalize_hits(hits, k);
        if self.metric == Metric::L2 {
            for h in &mut hits {
                h.distance = h.distance.sqrt();
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        idx.add_batch(&[0., 0., 1., 0., 0., 1., 5., 5.]);
        let hits = idx.search(&[0.1, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
        assert!((hits[0].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        idx.add(&[1.0]);
        assert_eq!(idx.search(&[0.0], 10).len(), 1);
    }

    #[test]
    fn inner_product_ranks_by_dot() {
        let mut idx = FlatIndex::new(2, Metric::InnerProduct);
        idx.add_batch(&[1., 0., 0., 1., 2., 2.]);
        let hits = idx.search(&[1., 1.], 3);
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn ids_are_insertion_order() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        assert_eq!(idx.add(&[1.0]), 0);
        assert_eq!(idx.add(&[2.0]), 1);
        assert_eq!(idx.vector(1), &[2.0]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }
}
