//! Exact brute-force index: the correctness oracle and small-scale fallback.
//!
//! The scan is *batched*: one query is scored against the whole store with
//! the blocked one-vs-many SIMD kernels (`deepjoin-simd`), filling a dense
//! score buffer in row blocks instead of calling a distance function per
//! vector. Multi-query workloads additionally parallelize over queries via
//! [`FlatIndex::search_batch`].

use deepjoin_par::Pool;
use serde::{Deserialize, Serialize};

use crate::budget::{Budget, BudgetedSearch};
use crate::distance::Metric;
use crate::index::{Neighbor, TopK, VectorIndex};

/// Rows scored per block. Large enough to amortize dispatch, small enough
/// that the score buffer stays in L1.
const SCAN_BLOCK: usize = 256;

/// Budgeted blocked scan over row-major `data`, shared by
/// [`FlatIndex::search_budgeted`] and the HNSW flat-rescue path
/// (`HnswIndex::flat_scan_budgeted`). The budget is polled once per scan
/// block; on expiry the scan stops and returns the best-so-far top-k with
/// `complete == false`. `visited` counts the rows actually scored.
pub(crate) fn scan_budgeted(
    data: &[f32],
    dim: usize,
    metric: Metric,
    unit_norm: bool,
    query: &[f32],
    k: usize,
    budget: &Budget,
) -> BudgetedSearch {
    assert_eq!(query.len(), dim, "dimension mismatch");
    let n = data.len() / dim;
    let limited = budget.is_limited();
    let mut top = TopK::new(k);
    let mut scores = [0f32; SCAN_BLOCK];
    let mut base = 0usize;
    let mut complete = true;
    while base < n {
        if limited && budget.expired() {
            complete = false;
            break;
        }
        let rows = SCAN_BLOCK.min(n - base);
        let block = &data[base * dim..(base + rows) * dim];
        metric.surrogate_block(query, block, unit_norm, &mut scores[..rows]);
        for (i, &s) in scores[..rows].iter().enumerate() {
            top.push((base + i) as u32, s);
        }
        base += rows;
    }
    let mut hits = top.into_sorted();
    for h in &mut hits {
        h.distance = metric.distance_from_surrogate(h.distance, unit_norm);
    }
    BudgetedSearch {
        hits,
        complete,
        visited: base,
    }
}

/// Linear-scan exact kNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    data: Vec<f32>,
    /// True when every stored vector is promised to be unit-norm (set at
    /// build time by the caller, e.g. DeepJoin's normalizing encoder). Lets
    /// cosine rank by the cheap `-dot` surrogate. Not persisted: decoded
    /// indexes conservatively fall back to the full cosine path.
    #[serde(skip)]
    unit_norm: bool,
}

impl FlatIndex {
    /// Empty index of dimension `dim`.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self {
            dim,
            metric,
            data: Vec::new(),
            unit_norm: false,
        }
    }

    /// Declare (at build time) that every vector added is L2-normalized,
    /// enabling the cosine fast path. The promise is the caller's to keep.
    pub fn with_unit_norm(mut self, unit_norm: bool) -> Self {
        self.unit_norm = unit_norm;
        self
    }

    /// Whether the index assumes unit-norm vectors.
    pub fn unit_norm(&self) -> bool {
        self.unit_norm
    }

    /// Stored vector by id.
    pub fn vector(&self, id: u32) -> &[f32] {
        let i = id as usize * self.dim;
        &self.data[i..i + self.dim]
    }

    /// [`VectorIndex::search`] under a cooperative [`Budget`]: the scan
    /// polls the budget between blocks and, on expiry, returns the best
    /// top-k over the rows scored so far (`complete == false`).
    pub fn search_budgeted(&self, query: &[f32], k: usize, budget: &Budget) -> BudgetedSearch {
        scan_budgeted(
            &self.data,
            self.dim,
            self.metric,
            self.unit_norm,
            query,
            k,
            budget,
        )
    }

    /// Search many row-major queries (`queries.len() / dim` of them),
    /// parallelized over queries with `pool`. Results are identical to
    /// calling [`VectorIndex::search`] per query, in query order, for any
    /// pool size.
    pub fn search_batch(&self, queries: &[f32], k: usize, pool: &Pool) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.len() % self.dim, 0, "row-major shape mismatch");
        let nq = queries.len() / self.dim;
        pool.map(nq, 1, |range| {
            range
                .map(|q| self.search(&queries[q * self.dim..(q + 1) * self.dim], k))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl VectorIndex for FlatIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn add(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(vector);
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        // Rank by the cheap surrogate, computed block-at-a-time with the
        // one-vs-many kernels into a bounded top-k selector (never
        // materializing all n hits), then convert survivors to distances.
        // The unlimited budget never reads a clock (see `budget`).
        self.search_budgeted(query, k, &Budget::unlimited()).hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        idx.add_batch(&[0., 0., 1., 0., 0., 1., 5., 5.]);
        let hits = idx.search(&[0.1, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
        assert!((hits[0].distance - 0.1).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_len() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        idx.add(&[1.0]);
        assert_eq!(idx.search(&[0.0], 10).len(), 1);
    }

    #[test]
    fn inner_product_ranks_by_dot() {
        let mut idx = FlatIndex::new(2, Metric::InnerProduct);
        idx.add_batch(&[1., 0., 0., 1., 2., 2.]);
        let hits = idx.search(&[1., 1.], 3);
        assert_eq!(hits[0].id, 2);
    }

    #[test]
    fn ids_are_insertion_order() {
        let mut idx = FlatIndex::new(1, Metric::L2);
        assert_eq!(idx.add(&[1.0]), 0);
        assert_eq!(idx.add(&[2.0]), 1);
        assert_eq!(idx.vector(1), &[2.0]);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn scan_crosses_block_boundaries() {
        // More vectors than one scan block, with the nearest one placed in
        // the final partial block.
        let n = SCAN_BLOCK * 2 + 37;
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..n {
            let x = if i == n - 1 { 0.5 } else { 10.0 + i as f32 };
            idx.add(&[x, 0.0]);
        }
        let hits = idx.search(&[0.0, 0.0], 3);
        assert_eq!(hits[0].id, (n - 1) as u32);
        assert!((hits[0].distance - 0.5).abs() < 1e-6);
    }

    #[test]
    fn unit_norm_cosine_matches_full_cosine() {
        // Unit vectors on a circle: ranking and distances must agree
        // between the fast path and the full path.
        let mut fast = FlatIndex::new(2, Metric::Cosine).with_unit_norm(true);
        let mut full = FlatIndex::new(2, Metric::Cosine);
        for i in 0..300 {
            let t = i as f32 * 0.021;
            fast.add(&[t.cos(), t.sin()]);
            full.add(&[t.cos(), t.sin()]);
        }
        let q = [0.6f32.cos(), 0.6f32.sin()];
        let a = fast.search(&q, 10);
        let b = full.search(&q, 10);
        assert_eq!(
            a.iter().map(|h| h.id).collect::<Vec<_>>(),
            b.iter().map(|h| h.id).collect::<Vec<_>>()
        );
        for (x, y) in a.iter().zip(&b) {
            assert!((x.distance - y.distance).abs() < 1e-5);
        }
    }

    #[test]
    fn budgeted_search_with_unlimited_budget_matches_search() {
        let mut idx = FlatIndex::new(3, Metric::L2);
        let data: Vec<f32> = (0..SCAN_BLOCK * 3 * 3).map(|i| (i as f32 * 0.17).sin()).collect();
        idx.add_batch(&data);
        let q = [0.1f32, -0.2, 0.3];
        let plain = idx.search(&q, 7);
        let budgeted = idx.search_budgeted(&q, 7, &Budget::unlimited());
        assert!(budgeted.complete);
        assert_eq!(budgeted.hits, plain);
        assert_eq!(budgeted.visited, idx.len());
    }

    #[test]
    fn expired_budget_stops_scan_with_partial_results() {
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..SCAN_BLOCK * 4 {
            idx.add(&[i as f32, 0.0]);
        }
        let expired = Budget::with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let out = idx.search_budgeted(&[0.0, 0.0], 5, &expired);
        assert!(!out.complete, "expired budget must report a partial scan");
        assert!(out.visited < idx.len(), "scan must stop early");
        // Whatever was scored is still correctly ranked.
        for w in out.hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn cancelled_budget_stops_scan() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut idx = FlatIndex::new(2, Metric::L2);
        for i in 0..SCAN_BLOCK * 2 {
            idx.add(&[i as f32, 1.0]);
        }
        let flag = Arc::new(AtomicBool::new(true));
        let budget = Budget::unlimited().cancelled_by(flag.clone());
        let out = idx.search_budgeted(&[0.0, 0.0], 3, &budget);
        assert!(!out.complete);
        flag.store(false, Ordering::Relaxed);
        let out = idx.search_budgeted(&[0.0, 0.0], 3, &budget);
        assert!(out.complete);
        assert_eq!(out.visited, idx.len());
    }

    #[test]
    fn batch_search_matches_sequential_for_any_pool() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        let data: Vec<f32> = (0..400).map(|i| (i as f32 * 0.13).sin()).collect();
        idx.add_batch(&data);
        let queries: Vec<f32> = (0..40).map(|i| (i as f32 * 0.29).cos()).collect();
        let seq: Vec<Vec<Neighbor>> = queries
            .chunks_exact(4)
            .map(|q| idx.search(q, 5))
            .collect();
        for threads in [1, 2, 8] {
            let par = idx.search_batch(&queries, 5, &Pool::new(threads));
            assert_eq!(seq, par, "threads {threads}");
        }
    }
}
