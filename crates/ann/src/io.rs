//! Binary persistence for the flat and HNSW indexes.
//!
//! Built on the `deepjoin-store` codec: little-endian, length-prefixed,
//! with a magic header and version byte per payload. Indexes are large and
//! numeric, so a dense custom codec is the *right* tool — no intermediate
//! tree, one pass in, one pass out.
//!
//! Three payload kinds live here:
//!
//! * `DJF1` — a flat (exact) index: metric, dim, row-major vectors;
//! * `DJH1` — a self-contained HNSW index (config + vectors + graph), the
//!   v1 on-disk format, still read and written for standalone index files;
//! * `DJG1` — the HNSW *graph only* (config + adjacency, no vectors), used
//!   by the sectioned model container so the vectors can live in their own
//!   checksummed section and survive graph corruption.
//!
//! Every decoder is total: corrupt bytes yield a located [`DecodeError`],
//! never a panic — length prefixes are validated against the remaining
//! buffer before allocation, and graph structure (neighbor ids, node/vector
//! counts, degenerate configs) is validated before an index is built, since
//! an out-of-range neighbor id would otherwise panic at search time.

use deepjoin_store::codec::{DecodeErrorKind, Reader, Writer};
pub use deepjoin_store::DecodeError;

use crate::distance::Metric;
use crate::flat::FlatIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::index::VectorIndex;
use crate::sq8::Sq8Plane;
use crate::tombstones::TombSet;

/// Magic bytes of a flat-index payload.
pub const MAGIC_FLAT: &[u8; 4] = b"DJF1";
/// Magic bytes of a self-contained HNSW payload.
pub const MAGIC_HNSW: &[u8; 4] = b"DJH1";
/// Magic bytes of a graph-only HNSW payload.
pub const MAGIC_HNSW_GRAPH: &[u8; 4] = b"DJG1";
/// Magic bytes of an SQ8 quantized-plane payload.
pub const MAGIC_SQ8: &[u8; 4] = b"DJQ1";
/// Magic bytes of a tombstone-bitmap payload.
pub const MAGIC_TOMBS: &[u8; 4] = b"DJT1";
const VERSION: u8 = 1;

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from(r: &Reader<'_>, tag: u8) -> Result<Metric, DecodeError> {
    match tag {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    }
}

/// Serialize a [`FlatIndex`].
pub fn encode_flat(index: &FlatIndex) -> Vec<u8> {
    let mut out = Writer::with_capacity(32 + index.len() * index.dim() * 4);
    out.put_slice(MAGIC_FLAT);
    out.put_u8(VERSION);
    out.put_u8(metric_tag(index.metric()));
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.len() as u64);
    for id in 0..index.len() as u32 {
        for &x in index.vector(id) {
            out.put_f32_le(x);
        }
    }
    out.into_vec()
}

/// Deserialize a [`FlatIndex`], attributing errors to `section`.
pub fn decode_flat_in(buf: &[u8], section: &'static str) -> Result<FlatIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_FLAT)?;
    r.expect_version(VERSION)?;
    let metric = {
        let tag = r.u8()?;
        metric_from(&r, tag)?
    };
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("flat index dim must be positive")));
    }
    let n = r.count(dim.saturating_mul(4))?;
    let mut index = FlatIndex::new(dim, metric);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = r.f32_le()?;
        }
        index.add(&row);
    }
    Ok(index)
}

/// Deserialize a [`FlatIndex`].
pub fn decode_flat(buf: &[u8]) -> Result<FlatIndex, DecodeError> {
    decode_flat_in(buf, "FLAT")
}

fn put_hnsw_config(out: &mut Writer, config: &HnswConfig) {
    out.put_u64_le(config.m as u64);
    out.put_u64_le(config.m0 as u64);
    out.put_u64_le(config.ef_construction as u64);
    out.put_u64_le(config.ef_search as u64);
    out.put_u8(metric_tag(config.metric));
    out.put_u64_le(config.seed);
}

fn get_hnsw_config(r: &mut Reader<'_>) -> Result<HnswConfig, DecodeError> {
    let m = r.u64_le()? as usize;
    let m0 = r.u64_le()? as usize;
    let ef_construction = r.u64_le()? as usize;
    let ef_search = r.u64_le()? as usize;
    let metric = {
        let tag = r.u8()?;
        metric_from(r, tag)?
    };
    let seed = r.u64_le()?;
    if m < 2 {
        // `level_mult = 1/ln(m)` would be infinite or negative, which turns
        // level sampling into unbounded allocations on the next insert.
        return Err(r.error(DecodeErrorKind::Invalid("HNSW M must be at least 2")));
    }
    // Cap the tuning knobs at values far beyond any sane configuration:
    // they size allocations and search frontiers, so a corrupt high byte
    // would otherwise turn the first insert or search into an OOM or a
    // near-infinite loop rather than a clean decode error.
    const MAX_KNOB: usize = 1 << 20;
    if m > MAX_KNOB || m0 > MAX_KNOB || ef_construction > MAX_KNOB || ef_search > MAX_KNOB {
        return Err(r.error(DecodeErrorKind::Invalid(
            "HNSW config parameter implausibly large",
        )));
    }
    Ok(HnswConfig {
        m,
        m0,
        ef_construction,
        ef_search,
        metric,
        seed,
    })
}

/// The graph state shared by the `DJH1` and `DJG1` payloads.
struct GraphParts {
    config: HnswConfig,
    dim: usize,
    max_level: usize,
    rng_state: u64,
    entry: Option<u32>,
    nodes: Vec<Vec<Vec<u32>>>,
}

fn put_graph_state(
    out: &mut Writer,
    config: &HnswConfig,
    dim: usize,
    max_level: usize,
    rng_state: u64,
    entry: Option<u32>,
    nodes: &[&Vec<Vec<u32>>],
) {
    put_hnsw_config(out, config);
    out.put_u64_le(dim as u64);
    out.put_u64_le(max_level as u64);
    out.put_u64_le(rng_state);
    match entry {
        Some(e) => {
            out.put_u8(1);
            out.put_u32_le(e);
        }
        None => out.put_u8(0),
    }
    out.put_u64_le(nodes.len() as u64);
    for levels in nodes {
        out.put_u32_le(levels.len() as u32);
        for nbrs in levels.iter() {
            out.put_u32_le(nbrs.len() as u32);
            for &n in nbrs {
                out.put_u32_le(n);
            }
        }
    }
}

/// Header shared by `DJH1` and `DJG1`: config, dim, max_level, rng state,
/// entry point.
fn get_graph_header(
    r: &mut Reader<'_>,
) -> Result<(HnswConfig, usize, usize, u64, Option<u32>), DecodeError> {
    let config = get_hnsw_config(r)?;
    let dim = r.u64_le()? as usize;
    let max_level = r.u64_le()? as usize;
    let rng_state = r.u64_le()?;
    let entry = match r.u8()? {
        0 => None,
        1 => Some(r.u32_le()?),
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    Ok((config, dim, max_level, rng_state, entry))
}

/// Per-node adjacency lists, validating every neighbor id against the node
/// count so a decoded graph can never index out of range at search time.
fn get_nodes(r: &mut Reader<'_>) -> Result<Vec<Vec<Vec<u32>>>, DecodeError> {
    // Each node costs at least 4 bytes (its level count), which bounds how
    // many a well-formed remainder can hold.
    let num_nodes = r.count(4)?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let levels = r.count_u32(4)?;
        let mut node = Vec::with_capacity(levels);
        for _ in 0..levels {
            let deg = r.count_u32(4)?;
            let mut nbrs = Vec::with_capacity(deg);
            for _ in 0..deg {
                let nb = r.u32_le()?;
                if nb as usize >= num_nodes {
                    return Err(r.error(DecodeErrorKind::Invalid(
                        "neighbor id out of range for node count",
                    )));
                }
                nbrs.push(nb);
            }
            node.push(nbrs);
        }
        nodes.push(node);
    }
    Ok(nodes)
}

/// Serialize an [`HnswIndex`] including vectors and graph (`DJH1`).
pub fn encode_hnsw(index: &HnswIndex) -> Vec<u8> {
    let (config, dim, vectors, nodes, entry, max_level, rng_state) = index.raw_parts();
    let mut out = Writer::with_capacity(96 + vectors.len() * 4 + nodes.len() * 16);
    out.put_slice(MAGIC_HNSW);
    out.put_u8(VERSION);
    put_hnsw_config(&mut out, config);
    out.put_u64_le(dim as u64);
    out.put_u64_le(max_level as u64);
    out.put_u64_le(rng_state);
    match entry {
        Some(e) => {
            out.put_u8(1);
            out.put_u32_le(e);
        }
        None => out.put_u8(0),
    }
    out.put_f32s(vectors);
    out.put_u64_le(nodes.len() as u64);
    for levels in nodes {
        out.put_u32_le(levels.len() as u32);
        for nbrs in levels {
            out.put_u32_le(nbrs.len() as u32);
            for &n in nbrs {
                out.put_u32_le(n);
            }
        }
    }
    out.into_vec()
}

/// Deserialize a `DJH1` [`HnswIndex`], attributing errors to `section`.
pub fn decode_hnsw_in(buf: &[u8], section: &'static str) -> Result<HnswIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_HNSW)?;
    r.expect_version(VERSION)?;
    let (config, dim, max_level, rng_state, entry) = get_graph_header(&mut r)?;
    let vectors = r.f32s()?;
    let nodes = get_nodes(&mut r)?;
    assemble_hnsw(
        &r,
        GraphParts {
            config,
            dim,
            max_level,
            rng_state,
            entry,
            nodes,
        },
        vectors,
    )
}

/// Deserialize a `DJH1` [`HnswIndex`].
pub fn decode_hnsw(buf: &[u8]) -> Result<HnswIndex, DecodeError> {
    decode_hnsw_in(buf, "HNSW")
}

/// Serialize only the graph half of an [`HnswIndex`] (`DJG1`). Pair with a
/// separately stored vector payload (see [`decode_hnsw_graph`]).
pub fn encode_hnsw_graph(index: &HnswIndex) -> Vec<u8> {
    let (config, dim, _vectors, nodes, entry, max_level, rng_state) = index.raw_parts();
    let mut out = Writer::with_capacity(96 + nodes.len() * 16);
    out.put_slice(MAGIC_HNSW_GRAPH);
    out.put_u8(VERSION);
    put_graph_state(&mut out, config, dim, max_level, rng_state, entry, &nodes);
    out.into_vec()
}

/// Rebuild an [`HnswIndex`] from a `DJG1` graph payload plus the vectors it
/// indexes (row-major, `nodes * dim`). Fails — rather than building an
/// index that would panic at search time — when the graph and vectors
/// disagree on shape.
pub fn decode_hnsw_graph(
    buf: &[u8],
    section: &'static str,
    vectors: Vec<f32>,
) -> Result<HnswIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_HNSW_GRAPH)?;
    r.expect_version(VERSION)?;
    let (config, dim, max_level, rng_state, entry) = get_graph_header(&mut r)?;
    let nodes = get_nodes(&mut r)?;
    assemble_hnsw(
        &r,
        GraphParts {
            config,
            dim,
            max_level,
            rng_state,
            entry,
            nodes,
        },
        vectors,
    )
}

/// Serialize an [`Sq8Plane`] (`DJQ1`): dim, row count, per-dim scale and
/// offset, dequantized row norms, then the raw row-major codes.
pub fn encode_sq8(plane: &Sq8Plane) -> Vec<u8> {
    let dim = plane.dim();
    let n = plane.len();
    let mut out = Writer::with_capacity(24 + dim * 8 + n * 4 + n * dim);
    out.put_slice(MAGIC_SQ8);
    out.put_u8(VERSION);
    out.put_u64_le(dim as u64);
    out.put_u64_le(n as u64);
    for &s in plane.scale() {
        out.put_f32_le(s);
    }
    for &o in plane.offset() {
        out.put_f32_le(o);
    }
    for &rn in plane.row_norms() {
        out.put_f32_le(rn);
    }
    out.put_slice(plane.codes());
    out.into_vec()
}

/// Deserialize an [`Sq8Plane`], attributing errors to `section`. The
/// payload size is validated against the header *before* any allocation, so
/// a corrupt row count cannot trigger an OOM.
pub fn decode_sq8_in(buf: &[u8], section: &'static str) -> Result<Sq8Plane, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_SQ8)?;
    r.expect_version(VERSION)?;
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 plane dim must be positive")));
    }
    let n = r.u64_le()? as usize;
    if n > u32::MAX as usize {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 row count exceeds id space")));
    }
    // scale + offset (dim f32s each) + row norms (n f32s) + codes (n·dim).
    let need = dim
        .checked_mul(8)
        .and_then(|x| n.checked_mul(4).and_then(|y| x.checked_add(y)))
        .and_then(|x| n.checked_mul(dim).and_then(|y| x.checked_add(y)));
    if need != Some(r.remaining()) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "SQ8 payload size disagrees with header",
        )));
    }
    let mut scale = vec![0f32; dim];
    for s in &mut scale {
        *s = r.f32_le()?;
    }
    let mut offset = vec![0f32; dim];
    for o in &mut offset {
        *o = r.f32_le()?;
    }
    let mut row_norm = vec![0f32; n];
    for rn in &mut row_norm {
        *rn = r.f32_le()?;
    }
    let codes = r.bytes(n * dim)?.to_vec();
    Ok(Sq8Plane::from_parts(dim, scale, offset, codes, row_norm))
}

/// Deserialize an [`Sq8Plane`].
pub fn decode_sq8(buf: &[u8]) -> Result<Sq8Plane, DecodeError> {
    decode_sq8_in(buf, "SQ8")
}

/// Serialize a [`TombSet`] (`DJT1`): word count, then the raw bitset words.
pub fn encode_tombs(tombs: &TombSet) -> Vec<u8> {
    let mut out = Writer::with_capacity(16 + tombs.words().len() * 8);
    out.put_slice(MAGIC_TOMBS);
    out.put_u8(VERSION);
    out.put_u64_le(tombs.words().len() as u64);
    for &w in tombs.words() {
        out.put_u64_le(w);
    }
    out.into_vec()
}

/// Deserialize a [`TombSet`], attributing errors to `section`.
pub fn decode_tombs_in(buf: &[u8], section: &'static str) -> Result<TombSet, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_TOMBS)?;
    r.expect_version(VERSION)?;
    let n = r.count(8)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u64_le()?);
    }
    if !r.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid(
            "tombstone payload has trailing bytes",
        )));
    }
    Ok(TombSet::from_words(words))
}

/// Deserialize a [`TombSet`].
pub fn decode_tombs(buf: &[u8]) -> Result<TombSet, DecodeError> {
    decode_tombs_in(buf, "TOMB")
}

fn assemble_hnsw(
    r: &Reader<'_>,
    parts: GraphParts,
    vectors: Vec<f32>,
) -> Result<HnswIndex, DecodeError> {
    if let Some(e) = parts.entry {
        if e as usize >= parts.nodes.len() {
            return Err(r.error(DecodeErrorKind::Invalid("entry point out of range")));
        }
    }
    if parts.dim == 0 && !parts.nodes.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("non-empty index with dim 0")));
    }
    // `max_level` must be the tallest node's level: search iterates every
    // layer from `max_level` down, so a corrupt (huge) value would loop for
    // eons without this check even though it cannot panic.
    let tallest = parts.nodes.iter().map(Vec::len).max().unwrap_or(0);
    if parts.max_level != tallest.saturating_sub(1) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "max_level disagrees with the tallest node",
        )));
    }
    if vectors.len() != parts.nodes.len().saturating_mul(parts.dim) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "vector payload does not match graph shape",
        )));
    }
    Ok(HnswIndex::from_raw_parts(
        parts.config,
        parts.dim,
        vectors,
        parts.nodes,
        parts.entry,
        parts.max_level,
        parts.rng_state,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_store::codec::DecodeErrorKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn flat_roundtrip_preserves_search() {
        let mut idx = FlatIndex::new(8, Metric::L2);
        idx.add_batch(&random_data(200, 8));
        let bytes = encode_flat(&idx);
        let back = decode_flat(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        let q = random_data(1, 8);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn hnsw_roundtrip_preserves_search_and_growth() {
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&random_data(500, 6));
        let bytes = encode_hnsw(&idx);
        let mut back = decode_hnsw(&bytes).unwrap();
        let q = random_data(1, 6);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
        // The decoded index keeps working for inserts (rng state restored).
        let mut orig = idx.clone();
        let v = random_data(1, 6);
        assert_eq!(orig.add(&v), back.add(&v));
        assert_eq!(orig.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn graph_only_roundtrip_matches_full_roundtrip() {
        let mut idx = HnswIndex::new(5, HnswConfig::default());
        idx.add_batch(&random_data(300, 5));
        let (_, _, vectors, ..) = idx.raw_parts();
        let vectors = vectors.to_vec();
        let graph = encode_hnsw_graph(&idx);
        let mut back = decode_hnsw_graph(&graph, "HNSW", vectors).unwrap();
        let q = random_data(1, 5);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
        let mut orig = idx.clone();
        let v = random_data(1, 5);
        assert_eq!(orig.add(&v), back.add(&v));
    }

    #[test]
    fn graph_with_mismatched_vectors_is_rejected() {
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        idx.add_batch(&random_data(50, 4));
        let graph = encode_hnsw_graph(&idx);
        let err = decode_hnsw_graph(&graph, "HNSW", vec![0.0; 7]).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Invalid(_)));
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        idx.add_batch(&random_data(10, 4));
        let bytes = encode_flat(&idx);

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_flat(&bad).unwrap_err().kind, DecodeErrorKind::BadMagic);

        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(
            decode_flat(&bad).unwrap_err().kind,
            DecodeErrorKind::BadVersion(99)
        );

        // Truncation, with offset context.
        let err = decode_flat(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Truncated { .. }));
        assert_eq!(err.section, "FLAT");
    }

    #[test]
    fn hnsw_magic_mismatch_is_rejected() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        idx.add(&[0.0; 4]);
        let bytes = encode_flat(&idx);
        assert_eq!(
            decode_hnsw(&bytes).unwrap_err().kind,
            DecodeErrorKind::BadMagic
        );
    }

    #[test]
    fn empty_hnsw_roundtrips() {
        let idx = HnswIndex::new(3, HnswConfig::default());
        let back = decode_hnsw(&encode_hnsw(&idx)).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.search(&[0.0; 3], 5).is_empty());
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let mut idx = HnswIndex::new(3, HnswConfig::default());
        idx.add_batch(&random_data(40, 3));
        let bytes = encode_hnsw(&idx);
        for cut in 0..bytes.len() {
            assert!(decode_hnsw(&bytes[..cut]).is_err());
        }
        let flat_bytes = encode_flat(&{
            let mut f = FlatIndex::new(3, Metric::L2);
            f.add_batch(&random_data(40, 3));
            f
        });
        for cut in 0..flat_bytes.len() {
            assert!(decode_flat(&flat_bytes[..cut]).is_err());
        }
    }

    #[test]
    fn sq8_roundtrip_is_lossless() {
        let data = random_data(120, 9);
        let plane = Sq8Plane::quantize(&data, 9);
        let bytes = encode_sq8(&plane);
        let back = decode_sq8(&bytes).unwrap();
        assert_eq!(back, plane);
    }

    #[test]
    fn sq8_empty_plane_roundtrips() {
        let plane = Sq8Plane::quantize(&[], 4);
        let back = decode_sq8(&encode_sq8(&plane)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), 4);
    }

    #[test]
    fn sq8_truncation_at_every_offset_never_panics() {
        let data = random_data(40, 5);
        let bytes = encode_sq8(&Sq8Plane::quantize(&data, 5));
        for cut in 0..bytes.len() {
            assert!(decode_sq8(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn sq8_single_byte_corruption_never_panics() {
        let data = random_data(20, 3);
        let plane = Sq8Plane::quantize(&data, 3);
        let bytes = encode_sq8(&plane);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            // Either a clean decode error, or a structurally valid plane
            // (flipped code/scale bytes decode fine — the container CRC is
            // what detects those).
            if let Ok(back) = decode_sq8(&bad) {
                assert_eq!(back.len(), plane.len());
                assert_eq!(back.dim(), plane.dim());
            }
        }
    }

    #[test]
    fn tombs_roundtrip_and_reject_corruption() {
        let tombs: TombSet = [0u32, 5, 64, 9000].into_iter().collect();
        let bytes = encode_tombs(&tombs);
        assert_eq!(decode_tombs(&bytes).unwrap(), tombs);
        for cut in 0..bytes.len() {
            assert!(decode_tombs(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_tombs(&trailing).is_err());
        let empty = encode_tombs(&TombSet::new());
        assert!(decode_tombs(&empty).unwrap().is_empty());
    }

    #[test]
    fn single_byte_corruption_never_panics_search() {
        // Flip each byte of a small snapshot; decode must error or produce
        // an index whose search doesn't panic (validated graph).
        let mut idx = HnswIndex::new(3, HnswConfig::default());
        idx.add_batch(&random_data(25, 3));
        let bytes = encode_hnsw(&idx);
        let q = random_data(1, 3);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            if let Ok(back) = decode_hnsw(&bad) {
                let _ = back.search(&q, 5);
            }
        }
    }
}
