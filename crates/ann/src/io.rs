//! Binary persistence for the flat and HNSW indexes.
//!
//! Built on the `deepjoin-store` codec: little-endian, length-prefixed,
//! with a magic header and version byte per payload. Indexes are large and
//! numeric, so a dense custom codec is the *right* tool — no intermediate
//! tree, one pass in, one pass out.
//!
//! Three payload kinds live here:
//!
//! * `DJF1` — a flat (exact) index: metric, dim, row-major vectors;
//! * `DJH1` — a self-contained HNSW index (config + vectors + graph), the
//!   v1 on-disk format, still read and written for standalone index files;
//! * `DJG1` — the HNSW *graph only* (config + adjacency, no vectors), used
//!   by the sectioned model container so the vectors can live in their own
//!   checksummed section and survive graph corruption.
//!
//! Every decoder is total: corrupt bytes yield a located [`DecodeError`],
//! never a panic — length prefixes are validated against the remaining
//! buffer before allocation, and graph structure (neighbor ids, node/vector
//! counts, degenerate configs) is validated before an index is built, since
//! an out-of-range neighbor id would otherwise panic at search time.

use deepjoin_store::codec::{DecodeErrorKind, Reader, Writer};
use deepjoin_store::SECTION_ALIGN;
pub use deepjoin_store::DecodeError;

use crate::distance::Metric;
use crate::flat::FlatIndex;
use crate::graph::Graph;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::index::VectorIndex;
use crate::plane::{ByteOwner, PodVec};
use crate::sq8::Sq8Plane;
use crate::tombstones::TombSet;

/// Magic bytes of a flat-index payload.
pub const MAGIC_FLAT: &[u8; 4] = b"DJF1";
/// Magic bytes of a self-contained HNSW payload.
pub const MAGIC_HNSW: &[u8; 4] = b"DJH1";
/// Magic bytes of a graph-only HNSW payload.
pub const MAGIC_HNSW_GRAPH: &[u8; 4] = b"DJG1";
/// Magic bytes of an SQ8 quantized-plane payload.
pub const MAGIC_SQ8: &[u8; 4] = b"DJQ1";
/// Magic bytes of a tombstone-bitmap payload.
pub const MAGIC_TOMBS: &[u8; 4] = b"DJT1";
const VERSION: u8 = 1;

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from(r: &Reader<'_>, tag: u8) -> Result<Metric, DecodeError> {
    match tag {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    }
}

/// Serialize a [`FlatIndex`].
pub fn encode_flat(index: &FlatIndex) -> Vec<u8> {
    let mut out = Writer::with_capacity(32 + index.len() * index.dim() * 4);
    out.put_slice(MAGIC_FLAT);
    out.put_u8(VERSION);
    out.put_u8(metric_tag(index.metric()));
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.len() as u64);
    for id in 0..index.len() as u32 {
        for &x in index.vector(id) {
            out.put_f32_le(x);
        }
    }
    out.into_vec()
}

/// Deserialize a [`FlatIndex`], attributing errors to `section`.
pub fn decode_flat_in(buf: &[u8], section: &'static str) -> Result<FlatIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_FLAT)?;
    r.expect_version(VERSION)?;
    let metric = {
        let tag = r.u8()?;
        metric_from(&r, tag)?
    };
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("flat index dim must be positive")));
    }
    let n = r.count(dim.saturating_mul(4))?;
    let mut index = FlatIndex::new(dim, metric);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = r.f32_le()?;
        }
        index.add(&row);
    }
    Ok(index)
}

/// Deserialize a [`FlatIndex`].
pub fn decode_flat(buf: &[u8]) -> Result<FlatIndex, DecodeError> {
    decode_flat_in(buf, "FLAT")
}

fn put_hnsw_config(out: &mut Writer, config: &HnswConfig) {
    out.put_u64_le(config.m as u64);
    out.put_u64_le(config.m0 as u64);
    out.put_u64_le(config.ef_construction as u64);
    out.put_u64_le(config.ef_search as u64);
    out.put_u8(metric_tag(config.metric));
    out.put_u64_le(config.seed);
}

fn get_hnsw_config(r: &mut Reader<'_>) -> Result<HnswConfig, DecodeError> {
    let m = r.u64_le()? as usize;
    let m0 = r.u64_le()? as usize;
    let ef_construction = r.u64_le()? as usize;
    let ef_search = r.u64_le()? as usize;
    let metric = {
        let tag = r.u8()?;
        metric_from(r, tag)?
    };
    let seed = r.u64_le()?;
    if m < 2 {
        // `level_mult = 1/ln(m)` would be infinite or negative, which turns
        // level sampling into unbounded allocations on the next insert.
        return Err(r.error(DecodeErrorKind::Invalid("HNSW M must be at least 2")));
    }
    // Cap the tuning knobs at values far beyond any sane configuration:
    // they size allocations and search frontiers, so a corrupt high byte
    // would otherwise turn the first insert or search into an OOM or a
    // near-infinite loop rather than a clean decode error.
    const MAX_KNOB: usize = 1 << 20;
    if m > MAX_KNOB || m0 > MAX_KNOB || ef_construction > MAX_KNOB || ef_search > MAX_KNOB {
        return Err(r.error(DecodeErrorKind::Invalid(
            "HNSW config parameter implausibly large",
        )));
    }
    Ok(HnswConfig {
        m,
        m0,
        ef_construction,
        ef_search,
        metric,
        seed,
    })
}

/// The graph state shared by the `DJH1` and `DJG1` payloads.
struct GraphParts {
    config: HnswConfig,
    dim: usize,
    max_level: usize,
    rng_state: u64,
    entry: Option<u32>,
    nodes: Vec<Vec<Vec<u32>>>,
}

fn put_entry(out: &mut Writer, entry: Option<u32>) {
    match entry {
        Some(e) => {
            out.put_u8(1);
            out.put_u32_le(e);
        }
        None => out.put_u8(0),
    }
}

/// v1 nested adjacency: node count, then per node the level count and each
/// layer's length-prefixed out-list. Works off the [`Graph`] accessors, so
/// a CSR-backed (even mapped) index re-encodes to identical bytes.
fn put_adjacency(out: &mut Writer, graph: &Graph) {
    out.put_u64_le(graph.len() as u64);
    for id in 0..graph.len() as u32 {
        let levels = graph.level_count(id);
        out.put_u32_le(levels as u32);
        for level in 0..levels {
            let nbrs = graph.neighbors(id, level);
            out.put_u32_le(nbrs.len() as u32);
            for &n in nbrs {
                out.put_u32_le(n);
            }
        }
    }
}

/// Header shared by `DJH1` and `DJG1`: config, dim, max_level, rng state,
/// entry point.
fn get_graph_header(
    r: &mut Reader<'_>,
) -> Result<(HnswConfig, usize, usize, u64, Option<u32>), DecodeError> {
    let config = get_hnsw_config(r)?;
    let dim = r.u64_le()? as usize;
    let max_level = r.u64_le()? as usize;
    let rng_state = r.u64_le()?;
    let entry = match r.u8()? {
        0 => None,
        1 => Some(r.u32_le()?),
        other => return Err(r.error(DecodeErrorKind::BadDiscriminant(other))),
    };
    Ok((config, dim, max_level, rng_state, entry))
}

/// Per-node adjacency lists, validating every neighbor id against the node
/// count so a decoded graph can never index out of range at search time.
fn get_nodes(r: &mut Reader<'_>) -> Result<Vec<Vec<Vec<u32>>>, DecodeError> {
    // Each node costs at least 4 bytes (its level count), which bounds how
    // many a well-formed remainder can hold.
    let num_nodes = r.count(4)?;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let levels = r.count_u32(4)?;
        let mut node = Vec::with_capacity(levels);
        for _ in 0..levels {
            let deg = r.count_u32(4)?;
            let mut nbrs = Vec::with_capacity(deg);
            for _ in 0..deg {
                let nb = r.u32_le()?;
                if nb as usize >= num_nodes {
                    return Err(r.error(DecodeErrorKind::Invalid(
                        "neighbor id out of range for node count",
                    )));
                }
                nbrs.push(nb);
            }
            node.push(nbrs);
        }
        nodes.push(node);
    }
    Ok(nodes)
}

/// Serialize an [`HnswIndex`] including vectors and graph (`DJH1`).
pub fn encode_hnsw(index: &HnswIndex) -> Vec<u8> {
    let graph = index.graph();
    let mut out = Writer::with_capacity(96 + index.vectors().len() * 4 + graph.len() * 16);
    out.put_slice(MAGIC_HNSW);
    out.put_u8(VERSION);
    put_hnsw_config(&mut out, index.config());
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.max_level() as u64);
    out.put_u64_le(index.rng_state());
    put_entry(&mut out, index.entry());
    out.put_f32s(index.vectors());
    put_adjacency(&mut out, graph);
    out.into_vec()
}

/// Deserialize a `DJH1` [`HnswIndex`], attributing errors to `section`.
pub fn decode_hnsw_in(buf: &[u8], section: &'static str) -> Result<HnswIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_HNSW)?;
    r.expect_version(VERSION)?;
    let (config, dim, max_level, rng_state, entry) = get_graph_header(&mut r)?;
    let vectors = r.f32s()?;
    let nodes = get_nodes(&mut r)?;
    assemble_hnsw(
        &r,
        GraphParts {
            config,
            dim,
            max_level,
            rng_state,
            entry,
            nodes,
        },
        vectors,
    )
}

/// Deserialize a `DJH1` [`HnswIndex`].
pub fn decode_hnsw(buf: &[u8]) -> Result<HnswIndex, DecodeError> {
    decode_hnsw_in(buf, "HNSW")
}

/// Serialize only the graph half of an [`HnswIndex`] (`DJG1`). Pair with a
/// separately stored vector payload (see [`decode_hnsw_graph`]).
pub fn encode_hnsw_graph(index: &HnswIndex) -> Vec<u8> {
    let graph = index.graph();
    let mut out = Writer::with_capacity(96 + graph.len() * 16);
    out.put_slice(MAGIC_HNSW_GRAPH);
    out.put_u8(VERSION);
    put_hnsw_config(&mut out, index.config());
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.max_level() as u64);
    out.put_u64_le(index.rng_state());
    put_entry(&mut out, index.entry());
    put_adjacency(&mut out, graph);
    out.into_vec()
}

/// Rebuild an [`HnswIndex`] from a `DJG1` graph payload plus the vectors it
/// indexes (row-major, `nodes * dim`). Fails — rather than building an
/// index that would panic at search time — when the graph and vectors
/// disagree on shape.
pub fn decode_hnsw_graph(
    buf: &[u8],
    section: &'static str,
    vectors: Vec<f32>,
) -> Result<HnswIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_HNSW_GRAPH)?;
    r.expect_version(VERSION)?;
    let (config, dim, max_level, rng_state, entry) = get_graph_header(&mut r)?;
    let nodes = get_nodes(&mut r)?;
    assemble_hnsw(
        &r,
        GraphParts {
            config,
            dim,
            max_level,
            rng_state,
            entry,
            nodes,
        },
        vectors,
    )
}

/// Serialize an [`Sq8Plane`] (`DJQ1`): dim, row count, per-dim scale and
/// offset, dequantized row norms, then the raw row-major codes.
pub fn encode_sq8(plane: &Sq8Plane) -> Vec<u8> {
    let dim = plane.dim();
    let n = plane.len();
    let mut out = Writer::with_capacity(24 + dim * 8 + n * 4 + n * dim);
    out.put_slice(MAGIC_SQ8);
    out.put_u8(VERSION);
    out.put_u64_le(dim as u64);
    out.put_u64_le(n as u64);
    for &s in plane.scale() {
        out.put_f32_le(s);
    }
    for &o in plane.offset() {
        out.put_f32_le(o);
    }
    for &rn in plane.row_norms() {
        out.put_f32_le(rn);
    }
    out.put_slice(plane.codes());
    out.into_vec()
}

/// Deserialize an [`Sq8Plane`], attributing errors to `section`. The
/// payload size is validated against the header *before* any allocation, so
/// a corrupt row count cannot trigger an OOM.
pub fn decode_sq8_in(buf: &[u8], section: &'static str) -> Result<Sq8Plane, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_SQ8)?;
    r.expect_version(VERSION)?;
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 plane dim must be positive")));
    }
    let n = r.u64_le()? as usize;
    if n > u32::MAX as usize {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 row count exceeds id space")));
    }
    // scale + offset (dim f32s each) + row norms (n f32s) + codes (n·dim).
    let need = dim
        .checked_mul(8)
        .and_then(|x| n.checked_mul(4).and_then(|y| x.checked_add(y)))
        .and_then(|x| n.checked_mul(dim).and_then(|y| x.checked_add(y)));
    if need != Some(r.remaining()) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "SQ8 payload size disagrees with header",
        )));
    }
    let mut scale = vec![0f32; dim];
    for s in &mut scale {
        *s = r.f32_le()?;
    }
    let mut offset = vec![0f32; dim];
    for o in &mut offset {
        *o = r.f32_le()?;
    }
    let mut row_norm = vec![0f32; n];
    for rn in &mut row_norm {
        *rn = r.f32_le()?;
    }
    let codes = r.bytes(n * dim)?.to_vec();
    Ok(Sq8Plane::from_parts(dim, scale, offset, codes, row_norm))
}

/// Deserialize an [`Sq8Plane`].
pub fn decode_sq8(buf: &[u8]) -> Result<Sq8Plane, DecodeError> {
    decode_sq8_in(buf, "SQ8")
}

/// Serialize a [`TombSet`] (`DJT1`): word count, then the raw bitset words.
pub fn encode_tombs(tombs: &TombSet) -> Vec<u8> {
    let mut out = Writer::with_capacity(16 + tombs.words().len() * 8);
    out.put_slice(MAGIC_TOMBS);
    out.put_u8(VERSION);
    out.put_u64_le(tombs.words().len() as u64);
    for &w in tombs.words() {
        out.put_u64_le(w);
    }
    out.into_vec()
}

/// Deserialize a [`TombSet`], attributing errors to `section`.
pub fn decode_tombs_in(buf: &[u8], section: &'static str) -> Result<TombSet, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_TOMBS)?;
    r.expect_version(VERSION)?;
    let n = r.count(8)?;
    let mut words = Vec::with_capacity(n);
    for _ in 0..n {
        words.push(r.u64_le()?);
    }
    if !r.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid(
            "tombstone payload has trailing bytes",
        )));
    }
    Ok(TombSet::from_words(words))
}

/// Deserialize a [`TombSet`].
pub fn decode_tombs(buf: &[u8]) -> Result<TombSet, DecodeError> {
    decode_tombs_in(buf, "TOMB")
}

// ---------------------------------------------------------------------------
// v2 aligned payloads (`DJF2` / `DJQ2` / `DJG2`)
//
// The v1 payloads are element streams: decoding means re-reading every
// number through the codec and re-allocating every structure. The v2
// payloads instead place each hot array as a raw little-endian blob at a
// 64-byte-aligned offset *within the payload*; inside a v2 aligned
// container (whose section payloads start at 64-byte-aligned file offsets)
// every blob therefore lands 64-byte-aligned in a page-aligned mapping, and
// the decoders below can hand out zero-copy [`PodVec`] views instead of
// copies. Each decoder takes an optional [`MappedPayload`]; without one (or
// on a big-endian host, or when a view is refused) it decodes onto the heap
// — same numbers, same index behavior, no zero-copy.
// ---------------------------------------------------------------------------

/// Magic bytes of a v2 aligned flat-vector payload.
pub const MAGIC_FLAT_V2: &[u8; 4] = b"DJF2";
/// Magic bytes of a v2 aligned SQ8 payload.
pub const MAGIC_SQ8_V2: &[u8; 4] = b"DJQ2";
/// Magic bytes of a v2 CSR graph-only payload.
pub const MAGIC_HNSW_GRAPH_V2: &[u8; 4] = b"DJG2";

/// Where a payload lives inside a pinned byte buffer: the buffer (e.g. an
/// `Arc<Mmap>` of a whole artifact) plus the byte offset of the payload's
/// first byte within it. Lets the v2 decoders build [`PodVec`] views that
/// keep the mapping alive instead of copying.
#[derive(Clone)]
pub struct MappedPayload {
    /// The pinned buffer the payload is a sub-range of.
    pub owner: ByteOwner,
    /// Byte offset of the payload's first byte within `owner`.
    pub base: usize,
}

/// Zero-pad `out` to the next `SECTION_ALIGN` boundary (relative to the
/// payload start — the container layout aligns the payload start itself).
fn put_pad(out: &mut Writer) {
    while !out.len().is_multiple_of(SECTION_ALIGN) {
        out.put_u8(0);
    }
}

/// Consume the zero pad up to the next alignment boundary, rejecting
/// nonzero bytes (they would mean a mislaid blob, not benign padding).
fn skip_pad(r: &mut Reader<'_>) -> Result<(), DecodeError> {
    while !r.offset().is_multiple_of(SECTION_ALIGN) {
        if r.u8()? != 0 {
            return Err(r.error(DecodeErrorKind::Invalid("nonzero padding byte")));
        }
    }
    Ok(())
}

/// View `len` elements of `T` at the reader's current offset zero-copy when
/// a mapped source allows it, else decode them onto the heap. Either way
/// the reader is advanced past the `len * size_of::<T>()` bytes.
fn take_pod_vec<T: crate::plane::Pod>(
    r: &mut Reader<'_>,
    src: Option<&MappedPayload>,
    len: usize,
) -> Result<PodVec<T>, DecodeError> {
    let offset = r.offset();
    let byte_len = len
        .checked_mul(std::mem::size_of::<T>())
        .ok_or_else(|| r.error(DecodeErrorKind::Invalid("blob length overflows")))?;
    let bytes = r.bytes(byte_len)?;
    if let Some(src) = src {
        if let Some(view) = PodVec::from_bytes(src.owner.clone(), src.base + offset, len) {
            return Ok(view);
        }
    }
    // Heap fallback. On little-endian targets the wire blob already *is*
    // the in-memory representation, so the decode is a single bulk copy —
    // at plane scale (hundreds of MB) the difference between this and a
    // per-element loop is the difference between memcpy speed and tens of
    // MB/s of bounds-checked pushes.
    #[cfg(target_endian = "little")]
    {
        let mut out: Vec<T> = Vec::with_capacity(len);
        // Safety: `bytes` holds exactly `byte_len = len * size_of::<T>()`
        // bytes, T is a sealed Pod (u8/u32/f32/u64 — every bit pattern is
        // a value), the fresh Vec is aligned for T, and byte pointers
        // carry no alignment requirement on the source.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), byte_len);
            out.set_len(len);
        }
        Ok(out.into())
    }
    #[cfg(target_endian = "big")]
    {
        let mut out = Vec::with_capacity(len);
        match std::mem::size_of::<T>() {
            1 => {
                for &b in bytes {
                    // Safety: T is u8, the only 1-byte Pod.
                    out.push(unsafe { std::mem::transmute_copy::<u8, T>(&b) });
                }
            }
            4 => {
                for c in bytes.chunks_exact(4) {
                    let raw = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                    // Safety: T is a 4-byte Pod (u32 or f32); both are plain
                    // bit patterns, so a bitwise move is the LE decode.
                    out.push(unsafe { std::mem::transmute_copy::<u32, T>(&raw) });
                }
            }
            8 => {
                for c in bytes.chunks_exact(8) {
                    let raw =
                        u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
                    // Safety: T is the 8-byte Pod (u64).
                    out.push(unsafe { std::mem::transmute_copy::<u64, T>(&raw) });
                }
            }
            _ => unreachable!("Pod is sealed to 1/4/8-byte types"),
        }
        Ok(out.into())
    }
}

/// Serialize a [`FlatIndex`] as a v2 aligned payload (`DJF2`): header, zero
/// pad to the 64-byte boundary, then the raw row-major f32 blob.
pub fn encode_flat_v2(index: &FlatIndex) -> Vec<u8> {
    let data = index.data();
    let mut out = Writer::with_capacity(SECTION_ALIGN + data.len() * 4);
    out.put_slice(MAGIC_FLAT_V2);
    out.put_u8(VERSION);
    out.put_u8(metric_tag(index.metric()));
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.len() as u64);
    put_pad(&mut out);
    for &x in data {
        out.put_f32_le(x);
    }
    out.into_vec()
}

/// Deserialize a `DJF2` [`FlatIndex`], zero-copy when `src` is given and
/// the blob is viewable in place.
pub fn decode_flat_v2_in(
    buf: &[u8],
    section: &'static str,
    src: Option<&MappedPayload>,
) -> Result<FlatIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_FLAT_V2)?;
    r.expect_version(VERSION)?;
    let metric = {
        let tag = r.u8()?;
        metric_from(&r, tag)?
    };
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("flat index dim must be positive")));
    }
    let n = r.u64_le()? as usize;
    if n > u32::MAX as usize {
        return Err(r.error(DecodeErrorKind::Invalid("row count exceeds id space")));
    }
    skip_pad(&mut r)?;
    let elems = n
        .checked_mul(dim)
        .ok_or_else(|| r.error(DecodeErrorKind::Invalid("vector blob size overflows")))?;
    if r.remaining() != elems * 4 {
        return Err(r.error(DecodeErrorKind::Invalid(
            "vector payload size disagrees with header",
        )));
    }
    let data = take_pod_vec::<f32>(&mut r, src, elems)?;
    Ok(FlatIndex::from_plane(dim, metric, data))
}

/// Serialize an [`Sq8Plane`] as a v2 aligned payload (`DJQ2`): header, then
/// each array (scale, offset, row norms, codes) at its own aligned offset.
pub fn encode_sq8_v2(plane: &Sq8Plane) -> Vec<u8> {
    let dim = plane.dim();
    let n = plane.len();
    let mut out = Writer::with_capacity(4 * SECTION_ALIGN + dim * 8 + n * 4 + n * dim);
    out.put_slice(MAGIC_SQ8_V2);
    out.put_u8(VERSION);
    out.put_u64_le(dim as u64);
    out.put_u64_le(n as u64);
    put_pad(&mut out);
    for &s in plane.scale() {
        out.put_f32_le(s);
    }
    put_pad(&mut out);
    for &o in plane.offset() {
        out.put_f32_le(o);
    }
    put_pad(&mut out);
    for &rn in plane.row_norms() {
        out.put_f32_le(rn);
    }
    put_pad(&mut out);
    out.put_slice(plane.codes());
    out.into_vec()
}

/// Deserialize a `DJQ2` [`Sq8Plane`], zero-copy when `src` is given.
pub fn decode_sq8_v2_in(
    buf: &[u8],
    section: &'static str,
    src: Option<&MappedPayload>,
) -> Result<Sq8Plane, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_SQ8_V2)?;
    r.expect_version(VERSION)?;
    let dim = r.u64_le()? as usize;
    if dim == 0 {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 plane dim must be positive")));
    }
    let n = r.u64_le()? as usize;
    if n > u32::MAX as usize {
        return Err(r.error(DecodeErrorKind::Invalid("SQ8 row count exceeds id space")));
    }
    let codes_len = n
        .checked_mul(dim)
        .ok_or_else(|| r.error(DecodeErrorKind::Invalid("SQ8 code blob size overflows")))?;
    skip_pad(&mut r)?;
    let scale = take_pod_vec::<f32>(&mut r, src, dim)?;
    skip_pad(&mut r)?;
    let offset = take_pod_vec::<f32>(&mut r, src, dim)?;
    skip_pad(&mut r)?;
    let row_norm = take_pod_vec::<f32>(&mut r, src, n)?;
    skip_pad(&mut r)?;
    if r.remaining() != codes_len {
        return Err(r.error(DecodeErrorKind::Invalid(
            "SQ8 payload size disagrees with header",
        )));
    }
    let codes = take_pod_vec::<u8>(&mut r, src, codes_len)?;
    Ok(Sq8Plane::from_parts(dim, scale, offset, codes, row_norm))
}

/// Serialize only the graph half of an [`HnswIndex`] as a v2 CSR payload
/// (`DJG2`): header, then the three flat `u32` arrays (`node_off`,
/// `adj_off`, `neighbors`) at aligned offsets. Pairs with a `DJF2` vector
/// payload the way `DJG1` pairs with raw vectors.
pub fn encode_hnsw_graph_v2(index: &HnswIndex) -> Vec<u8> {
    let (node_off, adj_off, neighbors) = index.graph().to_csr();
    let mut out = Writer::with_capacity(
        3 * SECTION_ALIGN + 96 + (node_off.len() + adj_off.len() + neighbors.len()) * 4,
    );
    out.put_slice(MAGIC_HNSW_GRAPH_V2);
    out.put_u8(VERSION);
    put_hnsw_config(&mut out, index.config());
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.max_level() as u64);
    out.put_u64_le(index.rng_state());
    put_entry(&mut out, index.entry());
    out.put_u64_le((node_off.len() - 1) as u64); // node count
    out.put_u64_le((adj_off.len() - 1) as u64); // (node, layer) row count
    out.put_u64_le(neighbors.len() as u64); // edge count
    for (arr, _) in [(&node_off, "no"), (&adj_off, "ao"), (&neighbors, "nb")] {
        put_pad(&mut out);
        for &v in arr {
            out.put_u32_le(v);
        }
    }
    out.into_vec()
}

/// Rebuild an [`HnswIndex`] from a `DJG2` CSR graph payload plus the vector
/// plane it indexes (from a `DJF2` payload — heap or mapped). All structural
/// invariants (offset-table consistency, neighbor ranges, entry point,
/// `max_level`) are validated before the index is built; `src` makes the
/// three CSR arrays zero-copy views.
pub fn decode_hnsw_graph_v2(
    buf: &[u8],
    section: &'static str,
    vectors: PodVec<f32>,
    src: Option<&MappedPayload>,
) -> Result<HnswIndex, DecodeError> {
    let mut r = Reader::new(buf, section);
    r.expect_magic(MAGIC_HNSW_GRAPH_V2)?;
    r.expect_version(VERSION)?;
    let (config, dim, max_level, rng_state, entry) = get_graph_header(&mut r)?;
    let n = r.u64_le()? as usize;
    if n > u32::MAX as usize {
        return Err(r.error(DecodeErrorKind::Invalid("node count exceeds id space")));
    }
    let rows = r.u64_le()? as usize;
    let edges = r.u64_le()? as usize;
    // Total blob size check up front, so truncation is caught before any
    // allocation no matter which array it lands in.
    let blobs = [n + 1, rows + 1, edges];
    let mut need = 0usize;
    let mut at = r.offset();
    for len in blobs {
        at += (SECTION_ALIGN - at % SECTION_ALIGN) % SECTION_ALIGN;
        at = at
            .checked_add(len.checked_mul(4).ok_or_else(|| {
                r.error(DecodeErrorKind::Invalid("CSR blob size overflows"))
            })?)
            .ok_or_else(|| r.error(DecodeErrorKind::Invalid("CSR blob size overflows")))?;
        need = at;
    }
    if need != r.offset() + r.remaining() {
        return Err(r.error(DecodeErrorKind::Invalid(
            "CSR payload size disagrees with header",
        )));
    }
    skip_pad(&mut r)?;
    let node_off = take_pod_vec::<u32>(&mut r, src, n + 1)?;
    skip_pad(&mut r)?;
    let adj_off = take_pod_vec::<u32>(&mut r, src, rows + 1)?;
    skip_pad(&mut r)?;
    let neighbors = take_pod_vec::<u32>(&mut r, src, edges)?;
    let graph = Graph::from_csr(node_off, adj_off, neighbors)
        .map_err(|_| r.error(DecodeErrorKind::Invalid("CSR graph fails validation")))?;
    if let Some(e) = entry {
        if e as usize >= graph.len() {
            return Err(r.error(DecodeErrorKind::Invalid("entry point out of range")));
        }
    }
    if dim == 0 && !graph.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("non-empty index with dim 0")));
    }
    let tallest = (0..graph.len() as u32)
        .map(|id| graph.level_count(id))
        .max()
        .unwrap_or(0);
    if max_level != tallest.saturating_sub(1) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "max_level disagrees with the tallest node",
        )));
    }
    if vectors.len() != graph.len().saturating_mul(dim) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "vector payload does not match graph shape",
        )));
    }
    Ok(HnswIndex::from_graph_parts(
        config, dim, vectors, graph, entry, max_level, rng_state,
    ))
}

fn assemble_hnsw(
    r: &Reader<'_>,
    parts: GraphParts,
    vectors: Vec<f32>,
) -> Result<HnswIndex, DecodeError> {
    if let Some(e) = parts.entry {
        if e as usize >= parts.nodes.len() {
            return Err(r.error(DecodeErrorKind::Invalid("entry point out of range")));
        }
    }
    if parts.dim == 0 && !parts.nodes.is_empty() {
        return Err(r.error(DecodeErrorKind::Invalid("non-empty index with dim 0")));
    }
    // `max_level` must be the tallest node's level: search iterates every
    // layer from `max_level` down, so a corrupt (huge) value would loop for
    // eons without this check even though it cannot panic.
    let tallest = parts.nodes.iter().map(Vec::len).max().unwrap_or(0);
    if parts.max_level != tallest.saturating_sub(1) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "max_level disagrees with the tallest node",
        )));
    }
    if vectors.len() != parts.nodes.len().saturating_mul(parts.dim) {
        return Err(r.error(DecodeErrorKind::Invalid(
            "vector payload does not match graph shape",
        )));
    }
    Ok(HnswIndex::from_raw_parts(
        parts.config,
        parts.dim,
        vectors,
        parts.nodes,
        parts.entry,
        parts.max_level,
        parts.rng_state,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepjoin_store::codec::DecodeErrorKind;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn flat_roundtrip_preserves_search() {
        let mut idx = FlatIndex::new(8, Metric::L2);
        idx.add_batch(&random_data(200, 8));
        let bytes = encode_flat(&idx);
        let back = decode_flat(&bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        let q = random_data(1, 8);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn hnsw_roundtrip_preserves_search_and_growth() {
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&random_data(500, 6));
        let bytes = encode_hnsw(&idx);
        let mut back = decode_hnsw(&bytes).unwrap();
        let q = random_data(1, 6);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
        // The decoded index keeps working for inserts (rng state restored).
        let mut orig = idx.clone();
        let v = random_data(1, 6);
        assert_eq!(orig.add(&v), back.add(&v));
        assert_eq!(orig.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn graph_only_roundtrip_matches_full_roundtrip() {
        let mut idx = HnswIndex::new(5, HnswConfig::default());
        idx.add_batch(&random_data(300, 5));
        let vectors = idx.vectors().to_vec();
        let graph = encode_hnsw_graph(&idx);
        let mut back = decode_hnsw_graph(&graph, "HNSW", vectors).unwrap();
        let q = random_data(1, 5);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
        let mut orig = idx.clone();
        let v = random_data(1, 5);
        assert_eq!(orig.add(&v), back.add(&v));
    }

    #[test]
    fn graph_with_mismatched_vectors_is_rejected() {
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        idx.add_batch(&random_data(50, 4));
        let graph = encode_hnsw_graph(&idx);
        let err = decode_hnsw_graph(&graph, "HNSW", vec![0.0; 7]).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Invalid(_)));
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        idx.add_batch(&random_data(10, 4));
        let bytes = encode_flat(&idx);

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_flat(&bad).unwrap_err().kind, DecodeErrorKind::BadMagic);

        // Wrong version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert_eq!(
            decode_flat(&bad).unwrap_err().kind,
            DecodeErrorKind::BadVersion(99)
        );

        // Truncation, with offset context.
        let err = decode_flat(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Truncated { .. }));
        assert_eq!(err.section, "FLAT");
    }

    #[test]
    fn hnsw_magic_mismatch_is_rejected() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        idx.add(&[0.0; 4]);
        let bytes = encode_flat(&idx);
        assert_eq!(
            decode_hnsw(&bytes).unwrap_err().kind,
            DecodeErrorKind::BadMagic
        );
    }

    #[test]
    fn empty_hnsw_roundtrips() {
        let idx = HnswIndex::new(3, HnswConfig::default());
        let back = decode_hnsw(&encode_hnsw(&idx)).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.search(&[0.0; 3], 5).is_empty());
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let mut idx = HnswIndex::new(3, HnswConfig::default());
        idx.add_batch(&random_data(40, 3));
        let bytes = encode_hnsw(&idx);
        for cut in 0..bytes.len() {
            assert!(decode_hnsw(&bytes[..cut]).is_err());
        }
        let flat_bytes = encode_flat(&{
            let mut f = FlatIndex::new(3, Metric::L2);
            f.add_batch(&random_data(40, 3));
            f
        });
        for cut in 0..flat_bytes.len() {
            assert!(decode_flat(&flat_bytes[..cut]).is_err());
        }
    }

    #[test]
    fn sq8_roundtrip_is_lossless() {
        let data = random_data(120, 9);
        let plane = Sq8Plane::quantize(&data, 9);
        let bytes = encode_sq8(&plane);
        let back = decode_sq8(&bytes).unwrap();
        assert_eq!(back, plane);
    }

    #[test]
    fn sq8_empty_plane_roundtrips() {
        let plane = Sq8Plane::quantize(&[], 4);
        let back = decode_sq8(&encode_sq8(&plane)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), 4);
    }

    #[test]
    fn sq8_truncation_at_every_offset_never_panics() {
        let data = random_data(40, 5);
        let bytes = encode_sq8(&Sq8Plane::quantize(&data, 5));
        for cut in 0..bytes.len() {
            assert!(decode_sq8(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn sq8_single_byte_corruption_never_panics() {
        let data = random_data(20, 3);
        let plane = Sq8Plane::quantize(&data, 3);
        let bytes = encode_sq8(&plane);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            // Either a clean decode error, or a structurally valid plane
            // (flipped code/scale bytes decode fine — the container CRC is
            // what detects those).
            if let Ok(back) = decode_sq8(&bad) {
                assert_eq!(back.len(), plane.len());
                assert_eq!(back.dim(), plane.dim());
            }
        }
    }

    #[test]
    fn tombs_roundtrip_and_reject_corruption() {
        let tombs: TombSet = [0u32, 5, 64, 9000].into_iter().collect();
        let bytes = encode_tombs(&tombs);
        assert_eq!(decode_tombs(&bytes).unwrap(), tombs);
        for cut in 0..bytes.len() {
            assert!(decode_tombs(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_tombs(&trailing).is_err());
        let empty = encode_tombs(&TombSet::new());
        assert!(decode_tombs(&empty).unwrap().is_empty());
    }

    #[test]
    fn single_byte_corruption_never_panics_search() {
        // Flip each byte of a small snapshot; decode must error or produce
        // an index whose search doesn't panic (validated graph).
        let mut idx = HnswIndex::new(3, HnswConfig::default());
        idx.add_batch(&random_data(25, 3));
        let bytes = encode_hnsw(&idx);
        let q = random_data(1, 3);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            if let Ok(back) = decode_hnsw(&bad) {
                let _ = back.search(&q, 5);
            }
        }
    }

    // ---------------- v2 aligned payloads ----------------

    use std::sync::Arc;

    /// Wrap encoded payload bytes as a mapped source. Heap `Vec<u8>`
    /// allocations are at least word-aligned in practice, so the 64-byte
    /// payload-relative offsets land on valid u32/f32 addresses, same as a
    /// page-aligned mmap.
    fn mapped(bytes: &[u8]) -> (Vec<u8>, MappedPayload) {
        let copy = bytes.to_vec();
        let owner: ByteOwner = Arc::new(copy.clone());
        (copy, MappedPayload { owner, base: 0 })
    }

    #[test]
    fn flat_v2_heap_and_mapped_decodes_are_identical() {
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let mut idx = FlatIndex::new(8, metric);
            idx.add_batch(&random_data(200, 8));
            let bytes = encode_flat_v2(&idx);
            let heap = decode_flat_v2_in(&bytes, "VECS", None).unwrap();
            let (_keep, src) = mapped(&bytes);
            let view = decode_flat_v2_in(&bytes, "VECS", Some(&src)).unwrap();
            assert!(!heap.is_mapped());
            assert!(view.is_mapped());
            assert_eq!(heap.data(), idx.data());
            assert_eq!(view.data(), idx.data());
            let q = random_data(1, 8);
            assert_eq!(idx.search(&q, 10), heap.search(&q, 10));
            assert_eq!(idx.search(&q, 10), view.search(&q, 10));
        }
    }

    #[test]
    fn sq8_v2_heap_and_mapped_decodes_are_identical() {
        let data = random_data(120, 9);
        let plane = Sq8Plane::quantize(&data, 9);
        let bytes = encode_sq8_v2(&plane);
        let heap = decode_sq8_v2_in(&bytes, "SQ8V", None).unwrap();
        let (_keep, src) = mapped(&bytes);
        let view = decode_sq8_v2_in(&bytes, "SQ8V", Some(&src)).unwrap();
        assert!(!heap.is_mapped());
        assert!(view.is_mapped());
        assert_eq!(heap, plane);
        assert_eq!(view, plane);
    }

    #[test]
    fn hnsw_graph_v2_heap_and_mapped_decodes_are_identical() {
        let mut idx = HnswIndex::new(5, HnswConfig::default());
        idx.add_batch(&random_data(300, 5));
        let graph_bytes = encode_hnsw_graph_v2(&idx);
        let vec_bytes = encode_flat_v2(&{
            let mut f = FlatIndex::new(5, Metric::L2);
            f.add_batch(idx.vectors());
            f
        });

        let heap_vecs = decode_flat_v2_in(&vec_bytes, "VECS", None).unwrap();
        let mut heap =
            decode_hnsw_graph_v2(&graph_bytes, "HNSW", heap_vecs.data().to_vec().into(), None)
                .unwrap();
        assert!(!heap.is_mapped());

        let (_kv, vsrc) = mapped(&vec_bytes);
        let (_kg, gsrc) = mapped(&graph_bytes);
        let view_vecs = decode_flat_v2_in(&vec_bytes, "VECS", Some(&vsrc)).unwrap();
        let mut view = decode_hnsw_graph_v2(
            &graph_bytes,
            "HNSW",
            decode_flat_v2_in(&vec_bytes, "VECS", Some(&vsrc))
                .map(|f| f.data().to_vec())
                .unwrap()
                .into(),
            Some(&gsrc),
        )
        .unwrap();
        assert!(view_vecs.is_mapped());
        assert!(view.is_mapped()); // graph arrays mapped even with heap vectors

        let q = random_data(1, 5);
        assert_eq!(idx.search(&q, 10), heap.search(&q, 10));
        assert_eq!(idx.search(&q, 10), view.search(&q, 10));

        // A mapped index still grows: mutation materializes, rng continues.
        let mut orig = idx.clone();
        let v = random_data(1, 5);
        let id = orig.add(&v);
        assert_eq!(id, heap.add(&v));
        assert_eq!(id, view.add(&v));
        assert_eq!(orig.search(&q, 10), view.search(&q, 10));
    }

    #[test]
    fn v2_blobs_are_section_aligned() {
        let mut idx = FlatIndex::new(7, Metric::L2);
        idx.add_batch(&random_data(33, 7));
        let bytes = encode_flat_v2(&idx);
        // Header is 26 bytes; first vector byte must sit at the boundary.
        let first = idx.data()[0].to_le_bytes();
        assert_eq!(&bytes[SECTION_ALIGN..SECTION_ALIGN + 4], &first);

        let plane = Sq8Plane::quantize(&random_data(10, 6), 6);
        let q = encode_sq8_v2(&plane);
        assert_eq!(
            &q[SECTION_ALIGN..SECTION_ALIGN + 4],
            &plane.scale()[0].to_le_bytes()
        );
    }

    #[test]
    fn v2_empty_structures_roundtrip() {
        let idx = FlatIndex::new(4, Metric::L2);
        let back = decode_flat_v2_in(&encode_flat_v2(&idx), "VECS", None).unwrap();
        assert_eq!(back.len(), 0);

        let plane = Sq8Plane::quantize(&[], 4);
        let back = decode_sq8_v2_in(&encode_sq8_v2(&plane), "SQ8V", None).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.dim(), 4);

        let hnsw = HnswIndex::new(3, HnswConfig::default());
        let back = decode_hnsw_graph_v2(
            &encode_hnsw_graph_v2(&hnsw),
            "HNSW",
            PodVec::new(),
            None,
        )
        .unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.search(&[0.0; 3], 5).is_empty());
    }

    #[test]
    fn v2_truncation_at_every_offset_never_panics() {
        let mut flat = FlatIndex::new(3, Metric::L2);
        flat.add_batch(&random_data(40, 3));
        let fb = encode_flat_v2(&flat);
        for cut in 0..fb.len() {
            assert!(decode_flat_v2_in(&fb[..cut], "VECS", None).is_err(), "cut {cut}");
        }

        let plane = Sq8Plane::quantize(&random_data(40, 5), 5);
        let qb = encode_sq8_v2(&plane);
        for cut in 0..qb.len() {
            assert!(decode_sq8_v2_in(&qb[..cut], "SQ8V", None).is_err(), "cut {cut}");
        }

        let mut hnsw = HnswIndex::new(3, HnswConfig::default());
        hnsw.add_batch(&random_data(40, 3));
        let vectors: PodVec<f32> = hnsw.vectors().to_vec().into();
        let gb = encode_hnsw_graph_v2(&hnsw);
        for cut in 0..gb.len() {
            assert!(
                decode_hnsw_graph_v2(&gb[..cut], "HNSW", vectors.clone(), None).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn v2_single_byte_corruption_never_panics() {
        let mut hnsw = HnswIndex::new(3, HnswConfig::default());
        hnsw.add_batch(&random_data(25, 3));
        let vectors: PodVec<f32> = hnsw.vectors().to_vec().into();
        let gb = encode_hnsw_graph_v2(&hnsw);
        let q = random_data(1, 3);
        for i in 0..gb.len() {
            let mut bad = gb.clone();
            bad[i] ^= 0x55;
            // Same contract as v1, on both decode paths: error out cleanly
            // or produce a structurally valid index whose search is total.
            if let Ok(back) = decode_hnsw_graph_v2(&bad, "HNSW", vectors.clone(), None) {
                let _ = back.search(&q, 5);
            }
            let (_keep, src) = mapped(&bad);
            if let Ok(back) = decode_hnsw_graph_v2(&bad, "HNSW", vectors.clone(), Some(&src)) {
                let _ = back.search(&q, 5);
            }
        }
    }

    #[test]
    fn v2_nonzero_padding_is_rejected() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        idx.add_batch(&random_data(3, 4));
        let mut bytes = encode_flat_v2(&idx);
        // Byte 30 sits inside the header→blob pad (header is 26 bytes).
        bytes[30] = 1;
        let err = decode_flat_v2_in(&bytes, "VECS", None).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Invalid(_)));
    }

    #[test]
    fn v2_mapped_graph_rejects_structural_damage() {
        // Corrupt a neighbor id to point past the node count; from_csr must
        // catch it on the mapped path too (no trusting the mapping).
        let mut hnsw = HnswIndex::new(3, HnswConfig::default());
        hnsw.add_batch(&random_data(30, 3));
        let vectors: PodVec<f32> = hnsw.vectors().to_vec().into();
        let mut gb = encode_hnsw_graph_v2(&hnsw);
        let n = gb.len();
        // The neighbors array is the final blob; overwrite its last id.
        gb[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let (_keep, src) = mapped(&gb);
        let err = decode_hnsw_graph_v2(&gb, "HNSW", vectors, Some(&src)).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Invalid(_)));
    }

    #[test]
    fn ivfpq_over_heap_and_mapped_planes_searches_identically() {
        use crate::ivfpq::{IvfPqConfig, IvfPqIndex};
        // IVFPQ never decodes from disk itself; it trains and rescores
        // over the raw vector plane — which may be a zero-copy view. The
        // whole pipeline (coarse k-means, PQ codebooks, ADC scan, SQ8
        // refinement, tombstone filtering) must be byte-identical on
        // either backing.
        let dim = 16;
        let mut orig = FlatIndex::new(dim, Metric::L2);
        let mut state = 0x9E37_79B9u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state % 1000) as f32 / 500.0 - 1.0
        };
        for _ in 0..96 {
            let v: Vec<f32> = (0..dim).map(|_| next()).collect();
            orig.add(&v);
        }
        let bytes = encode_flat_v2(&orig);
        let heap = decode_flat_v2_in(&bytes, "VECS", None).unwrap();
        let (pinned, src) = mapped(&bytes);
        let view = decode_flat_v2_in(&pinned, "VECS", Some(&src)).unwrap();
        assert!(!heap.is_mapped());
        assert!(view.is_mapped());

        let build = |plane: &FlatIndex| {
            let mut idx = IvfPqIndex::new(
                dim,
                IvfPqConfig {
                    nlist: 8,
                    nprobe: 4,
                    ..Default::default()
                },
            );
            idx.train(plane.data());
            idx.add_batch(plane.data());
            idx
        };
        let (a, b) = (build(&heap), build(&view));
        let tombs: TombSet = [3u32, 17, 40].into_iter().collect();
        for qid in [0u32, 5, 41] {
            let q = orig.vector(qid).to_vec();
            for deleted in [None, Some(&tombs)] {
                let ha = a.search_filtered(&q, 10, deleted);
                let hb = b.search_filtered(&q, 10, deleted);
                assert_eq!(ha.len(), hb.len());
                for (x, y) in ha.iter().zip(&hb) {
                    assert_eq!((x.id, x.distance.to_bits()), (y.id, y.distance.to_bits()));
                }
            }
        }
    }
}
