//! Binary persistence for the flat and HNSW indexes.
//!
//! The approved dependency set has `serde` but no wire format crate, so the
//! on-disk format is a small hand-rolled binary codec built on [`bytes`]:
//! little-endian, length-prefixed, with a magic header and version byte.
//! Indexes are large and numeric, so a dense custom codec is also the
//! *right* tool here — no intermediate tree, one pass in, one pass out.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::distance::Metric;
use crate::flat::FlatIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use crate::index::VectorIndex;

/// Errors while decoding a serialized index.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// An enum discriminant had no defined meaning.
    BadDiscriminant(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic bytes"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadDiscriminant(d) => write!(f, "bad discriminant {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC_FLAT: &[u8; 4] = b"DJF1";
const MAGIC_HNSW: &[u8; 4] = b"DJH1";
const VERSION: u8 = 1;

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::L2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn metric_from(tag: u8) -> Result<Metric, DecodeError> {
    match tag {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(DecodeError::BadDiscriminant(other)),
    }
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn put_f32s(out: &mut BytesMut, xs: &[f32]) {
    out.put_u64_le(xs.len() as u64);
    for &x in xs {
        out.put_f32_le(x);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, DecodeError> {
    need(buf, 8)?;
    let n = buf.get_u64_le() as usize;
    need(buf, n * 4)?;
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Serialize a [`FlatIndex`].
pub fn encode_flat(index: &FlatIndex) -> Bytes {
    let mut out = BytesMut::with_capacity(32 + index.len() * index.dim() * 4);
    out.put_slice(MAGIC_FLAT);
    out.put_u8(VERSION);
    out.put_u8(metric_tag(index.metric()));
    out.put_u64_le(index.dim() as u64);
    out.put_u64_le(index.len() as u64);
    for id in 0..index.len() as u32 {
        for &x in index.vector(id) {
            out.put_f32_le(x);
        }
    }
    out.freeze()
}

/// Deserialize a [`FlatIndex`].
pub fn decode_flat(mut buf: Bytes) -> Result<FlatIndex, DecodeError> {
    need(&buf, 4 + 1 + 1 + 16)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC_FLAT {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let metric = metric_from(buf.get_u8())?;
    let dim = buf.get_u64_le() as usize;
    let n = buf.get_u64_le() as usize;
    need(&buf, n * dim * 4)?;
    let mut index = FlatIndex::new(dim, metric);
    let mut row = vec![0f32; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = buf.get_f32_le();
        }
        index.add(&row);
    }
    Ok(index)
}

/// Serialize an [`HnswIndex`] including its graph structure.
pub fn encode_hnsw(index: &HnswIndex) -> Bytes {
    let (config, dim, vectors, nodes, entry, max_level, rng_state) = index.raw_parts();
    let mut out = BytesMut::with_capacity(64 + vectors.len() * 4);
    out.put_slice(MAGIC_HNSW);
    out.put_u8(VERSION);
    // Config.
    out.put_u64_le(config.m as u64);
    out.put_u64_le(config.m0 as u64);
    out.put_u64_le(config.ef_construction as u64);
    out.put_u64_le(config.ef_search as u64);
    out.put_u8(metric_tag(config.metric));
    out.put_u64_le(config.seed);
    // State.
    out.put_u64_le(dim as u64);
    out.put_u64_le(max_level as u64);
    out.put_u64_le(rng_state);
    match entry {
        Some(e) => {
            out.put_u8(1);
            out.put_u32_le(e);
        }
        None => out.put_u8(0),
    }
    put_f32s(&mut out, vectors);
    out.put_u64_le(nodes.len() as u64);
    for levels in nodes {
        out.put_u32_le(levels.len() as u32);
        for nbrs in levels {
            out.put_u32_le(nbrs.len() as u32);
            for &n in nbrs {
                out.put_u32_le(n);
            }
        }
    }
    out.freeze()
}

/// Deserialize an [`HnswIndex`].
pub fn decode_hnsw(mut buf: Bytes) -> Result<HnswIndex, DecodeError> {
    need(&buf, 4 + 1)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC_HNSW {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    need(&buf, 8 * 4 + 1 + 8)?;
    let m = buf.get_u64_le() as usize;
    let m0 = buf.get_u64_le() as usize;
    let ef_construction = buf.get_u64_le() as usize;
    let ef_search = buf.get_u64_le() as usize;
    let metric = metric_from(buf.get_u8())?;
    let seed = buf.get_u64_le();
    need(&buf, 8 * 3 + 1)?;
    let dim = buf.get_u64_le() as usize;
    let max_level = buf.get_u64_le() as usize;
    let rng_state = buf.get_u64_le();
    let entry = match buf.get_u8() {
        0 => None,
        1 => {
            need(&buf, 4)?;
            Some(buf.get_u32_le())
        }
        other => return Err(DecodeError::BadDiscriminant(other)),
    };
    let vectors = get_f32s(&mut buf)?;
    need(&buf, 8)?;
    let num_nodes = buf.get_u64_le() as usize;
    let mut nodes = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        need(&buf, 4)?;
        let levels = buf.get_u32_le() as usize;
        let mut node = Vec::with_capacity(levels);
        for _ in 0..levels {
            need(&buf, 4)?;
            let deg = buf.get_u32_le() as usize;
            need(&buf, deg * 4)?;
            node.push((0..deg).map(|_| buf.get_u32_le()).collect::<Vec<u32>>());
        }
        nodes.push(node);
    }
    let config = HnswConfig {
        m,
        m0,
        ef_construction,
        ef_search,
        metric,
        seed,
    };
    Ok(HnswIndex::from_raw_parts(
        config, dim, vectors, nodes, entry, max_level, rng_state,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn flat_roundtrip_preserves_search() {
        let mut idx = FlatIndex::new(8, Metric::L2);
        idx.add_batch(&random_data(200, 8));
        let bytes = encode_flat(&idx);
        let back = decode_flat(bytes).unwrap();
        assert_eq!(back.len(), idx.len());
        let q = random_data(1, 8);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn hnsw_roundtrip_preserves_search_and_growth() {
        let mut idx = HnswIndex::new(6, HnswConfig::default());
        idx.add_batch(&random_data(500, 6));
        let bytes = encode_hnsw(&idx);
        let mut back = decode_hnsw(bytes).unwrap();
        let q = random_data(1, 6);
        assert_eq!(idx.search(&q, 10), back.search(&q, 10));
        // The decoded index keeps working for inserts (rng state restored).
        let mut orig = idx.clone();
        let v = random_data(1, 6);
        assert_eq!(orig.add(&v), back.add(&v));
        assert_eq!(orig.search(&q, 10), back.search(&q, 10));
    }

    #[test]
    fn corrupted_buffers_are_rejected() {
        let mut idx = FlatIndex::new(4, Metric::Cosine);
        idx.add_batch(&random_data(10, 4));
        let bytes = encode_flat(&idx);

        // Wrong magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(decode_flat(Bytes::from(bad)).unwrap_err(), DecodeError::BadMagic);

        // Wrong version.
        let mut bad = bytes.to_vec();
        bad[4] = 99;
        assert_eq!(
            decode_flat(Bytes::from(bad)).unwrap_err(),
            DecodeError::BadVersion(99)
        );

        // Truncation.
        let bad = bytes.slice(0..bytes.len() - 3);
        assert_eq!(decode_flat(bad).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn hnsw_magic_mismatch_is_rejected() {
        let mut idx = FlatIndex::new(4, Metric::L2);
        idx.add(&[0.0; 4]);
        let bytes = encode_flat(&idx);
        assert_eq!(decode_hnsw(bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn empty_hnsw_roundtrips() {
        let idx = HnswIndex::new(3, HnswConfig::default());
        let back = decode_hnsw(encode_hnsw(&idx)).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.search(&[0.0; 3], 5).is_empty());
    }
}
