//! Tombstones: the deleted-id set live-lake drops are filtered through.
//!
//! A [`TombSet`] is a plain bitset over column ids. Deletes in the live
//! lake are *logical* — the vectors stay in their immutable segments until
//! compaction rewrites them — so every search path (flat, SQ8 two-stage,
//! HNSW, IVFPQ) takes an optional `TombSet` and suppresses dead ids at
//! candidate-collection time. Filtering there rather than post-hoc keeps
//! the contract exact: a top-k over live rows, not a top-k over everything
//! with holes punched in it.

/// A set of deleted (tombstoned) ids, stored as a bitset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TombSet {
    words: Vec<u64>,
    count: usize,
}

impl TombSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild from raw bitset words (the `DJT1` codec).
    pub fn from_words(words: Vec<u64>) -> Self {
        let count = words.iter().map(|w| w.count_ones() as usize).sum();
        Self { words, count }
    }

    /// The raw bitset words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mark `id` deleted; returns false if it already was.
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.count += 1;
        true
    }

    /// True when `id` is deleted.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1u64 << b) != 0)
    }

    /// Number of deleted ids.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when nothing is deleted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Deleted ids, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| (w * 64 + b) as u32)
        })
    }
}

impl FromIterator<u32> for TombSet {
    fn from_iter<T: IntoIterator<Item = u32>>(ids: T) -> Self {
        let mut set = Self::new();
        for id in ids {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut t = TombSet::new();
        assert!(t.is_empty());
        assert!(t.insert(3));
        assert!(t.insert(64));
        assert!(t.insert(1000));
        assert!(!t.insert(3), "double insert reports false");
        assert_eq!(t.len(), 3);
        assert!(t.contains(3) && t.contains(64) && t.contains(1000));
        assert!(!t.contains(4) && !t.contains(63) && !t.contains(100_000));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![3, 64, 1000]);
    }

    #[test]
    fn words_roundtrip() {
        let t: TombSet = [0u32, 63, 64, 127, 500].into_iter().collect();
        let back = TombSet::from_words(t.words().to_vec());
        assert_eq!(back, t);
        assert_eq!(back.len(), 5);
    }
}
