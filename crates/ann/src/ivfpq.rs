//! IVFPQ: an inverted file over a k-means coarse quantizer with product-
//! quantized residual-free codes — the billion-scale option §3.3 mentions
//! (the common Faiss recipe).
//!
//! Build: train the coarse quantizer, then train PQ codebooks on the
//! **residuals** `v − centroid(v)` (as Faiss does — residual encoding is
//! what gives PQ resolution *inside* a list). Each vector is assigned to its
//! nearest coarse centroid and its residual's PQ code is stored in that
//! centroid's inverted list. Search probes the `nprobe` nearest lists; for
//! each probed list an ADC table is built from the query's residual against
//! that list's centroid.

use deepjoin_par::Pool;

use crate::distance::Metric;
use crate::index::{finalize_hits, Neighbor, VectorIndex};
use crate::kmeans::{Kmeans, KmeansConfig};
use crate::pq::{PqConfig, ProductQuantizer};
use crate::sq8::{Sq8Plane, RESCORE_FACTOR};
use crate::tombstones::TombSet;

/// IVFPQ parameters.
#[derive(Debug, Clone, Copy)]
pub struct IvfPqConfig {
    /// Number of coarse centroids (inverted lists).
    pub nlist: usize,
    /// Lists probed per query.
    pub nprobe: usize,
    /// PQ settings.
    pub pq: PqConfig,
    /// Seed for the coarse quantizer.
    pub seed: u64,
    /// Keep an SQ8 plane of the original vectors (1 byte/dim, affine map
    /// trained alongside the quantizers) and rerank the top ADC candidates
    /// against it — near-exact refinement for a 4×-smaller-than-f32 cost.
    pub refine_sq8: bool,
}

impl Default for IvfPqConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            nprobe: 8,
            pq: PqConfig::default(),
            seed: 0x1F,
            refine_sq8: true,
        }
    }
}

/// The index. Unlike [`crate::hnsw::HnswIndex`], IVFPQ requires a training
/// pass before vectors can be added.
pub struct IvfPqIndex {
    dim: usize,
    config: IvfPqConfig,
    coarse: Option<Kmeans>,
    pq: Option<ProductQuantizer>,
    /// Inverted lists: per coarse centroid, (id, code) entries.
    lists: Vec<Vec<(u32, Vec<u8>)>>,
    /// SQ8 refinement plane over the *original* vectors (row = id), grown
    /// at `add` time with affine parameters fixed during `train`.
    sq8: Option<Sq8Plane>,
    len: usize,
}

impl IvfPqIndex {
    /// Untrained index.
    pub fn new(dim: usize, config: IvfPqConfig) -> Self {
        Self {
            dim,
            config,
            coarse: None,
            pq: None,
            lists: Vec::new(),
            sq8: None,
            len: 0,
        }
    }

    /// Train the coarse quantizer and PQ codebooks on row-major `data`.
    /// Uses the process-global pool; output is pool-size invariant.
    pub fn train(&mut self, data: &[f32]) {
        self.train_with_pool(data, &Pool::global());
    }

    /// [`IvfPqIndex::train`] with an explicit pool.
    pub fn train_with_pool(&mut self, data: &[f32], pool: &Pool) {
        assert!(!data.is_empty(), "empty training set");
        assert_eq!(data.len() % self.dim, 0, "bad shape");
        let dim = self.dim;
        let coarse = Kmeans::train_with_pool(
            data,
            dim,
            KmeansConfig {
                k: self.config.nlist,
                max_iters: 25,
                seed: self.config.seed,
            },
            pool,
        );
        // Train PQ on residuals v − centroid(v); the per-point residuals are
        // independent, so chunk them across the pool.
        let n = data.len() / dim;
        let mut residuals = vec![0f32; data.len()];
        let coarse_ref = &coarse;
        pool.for_each_chunk_mut(&mut residuals, n, 64, |range, out| {
            let mut scratch = vec![0f32; coarse_ref.k()];
            for (j, i) in range.enumerate() {
                let v = &data[i * dim..(i + 1) * dim];
                let c = coarse_ref.centroid(coarse_ref.assign_with_scratch(v, &mut scratch));
                for ((r, &a), &b) in out[j * dim..(j + 1) * dim].iter_mut().zip(v).zip(c) {
                    *r = a - b;
                }
            }
        });
        self.lists = vec![Vec::new(); coarse.k()];
        self.coarse = Some(coarse);
        self.pq = Some(ProductQuantizer::train_with_pool(
            &residuals,
            dim,
            self.config.pq,
            pool,
        ));
        self.sq8 = if self.config.refine_sq8 {
            let (scale, offset) = Sq8Plane::affine_from(data, dim);
            Some(Sq8Plane::with_affine(dim, scale, offset))
        } else {
            None
        };
    }

    /// True once `train` has run.
    pub fn is_trained(&self) -> bool {
        self.coarse.is_some()
    }

    /// The SQ8 refinement plane, when enabled and trained.
    pub fn sq8(&self) -> Option<&Sq8Plane> {
        self.sq8.as_ref()
    }

    /// [`VectorIndex::search`] with tombstone filtering: ids in `deleted`
    /// are skipped at ADC candidate collection, so they neither appear in
    /// results nor crowd live rows out of the refinement shortlist.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        deleted: Option<&TombSet>,
    ) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let (Some(coarse), Some(pq)) = (self.coarse.as_ref(), self.pq.as_ref()) else {
            return Vec::new();
        };
        let probes = coarse.assign_n(query, self.config.nprobe.min(coarse.k()));
        let mut hits = Vec::new();
        for p in probes {
            let q_residual: Vec<f32> = query
                .iter()
                .zip(coarse.centroid(p))
                .map(|(a, b)| a - b)
                .collect();
            let table = pq.adc_table(&q_residual);
            for (id, code) in &self.lists[p] {
                if deleted.is_some_and(|t| t.contains(*id)) {
                    continue;
                }
                hits.push(Neighbor {
                    id: *id,
                    distance: pq.adc_distance(&table, code),
                });
            }
        }
        // SQ8 refinement: rerank the top ADC candidates against the
        // quantized originals. The asymmetric L2 surrogate is exact to the
        // dequantized row, so the rerank wipes out most of the PQ error.
        if let Some(plane) = &self.sq8 {
            let shortlist = finalize_hits(hits, k.saturating_mul(RESCORE_FACTOR).max(k));
            let prep = plane.prepare(query, Metric::L2, false);
            let refined = shortlist
                .into_iter()
                .map(|h| Neighbor {
                    id: h.id,
                    distance: plane.surrogate(&prep, h.id),
                })
                .collect();
            let mut out = finalize_hits(refined, k);
            for h in &mut out {
                h.distance = h.distance.sqrt();
            }
            return out;
        }
        let mut out = finalize_hits(hits, k);
        for h in &mut out {
            h.distance = h.distance.sqrt();
        }
        out
    }
}

impl VectorIndex for IvfPqIndex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        Metric::L2
    }

    fn len(&self) -> usize {
        self.len
    }

    fn add(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let coarse = self.coarse.as_ref().expect("train() before add()");
        let pq = self.pq.as_ref().expect("train() before add()");
        let id = self.len as u32;
        let list = coarse.assign(vector);
        let residual: Vec<f32> = vector
            .iter()
            .zip(coarse.centroid(list))
            .map(|(a, b)| a - b)
            .collect();
        let code = pq.encode(&residual);
        self.lists[list].push((id, code));
        if let Some(plane) = &mut self.sq8 {
            plane.push(vector);
        }
        self.len += 1;
        id
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_filtered(query, k, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, clusters: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-5.0f32..5.0)).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            for d in 0..dim {
                data.push(centers[i % clusters][d] + rng.gen_range(-0.2f32..0.2));
            }
        }
        data
    }

    #[test]
    fn reasonable_recall_on_clustered_data() {
        let dim = 8;
        let data = clustered(3000, dim, 24, 1);
        let mut idx = IvfPqIndex::new(
            dim,
            IvfPqConfig {
                nlist: 24,
                nprobe: 6,
                pq: PqConfig {
                    m: 4,
                    ks: 64,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        idx.train(&data);
        idx.add_batch(&data);

        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(&data);

        let queries = clustered(20, dim, 24, 2);
        let mut hit = 0usize;
        for q in queries.chunks_exact(dim) {
            let truth: std::collections::HashSet<u32> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            hit += idx.search(q, 10).iter().filter(|h| truth.contains(&h.id)).count();
        }
        let recall = hit as f64 / 200.0;
        assert!(recall > 0.5, "IVFPQ recall {recall}");
    }

    #[test]
    fn sq8_refinement_does_not_lose_recall_and_tightens_distances() {
        let dim = 8;
        let data = clustered(3000, dim, 24, 5);
        let build = |refine_sq8| {
            let mut idx = IvfPqIndex::new(
                dim,
                IvfPqConfig {
                    nlist: 24,
                    nprobe: 6,
                    pq: PqConfig {
                        m: 4,
                        ks: 64,
                        ..Default::default()
                    },
                    refine_sq8,
                    ..Default::default()
                },
            );
            idx.train(&data);
            idx.add_batch(&data);
            idx
        };
        let plain = build(false);
        let refined = build(true);
        assert!(plain.sq8().is_none());
        assert_eq!(refined.sq8().unwrap().len(), 3000);

        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(&data);
        let queries = clustered(20, dim, 24, 6);
        let recall = |idx: &IvfPqIndex| {
            let mut hit = 0usize;
            for q in queries.chunks_exact(dim) {
                let truth: std::collections::HashSet<u32> =
                    flat.search(q, 10).into_iter().map(|h| h.id).collect();
                hit += idx.search(q, 10).iter().filter(|h| truth.contains(&h.id)).count();
            }
            hit as f64 / 200.0
        };
        let r_plain = recall(&plain);
        let r_refined = recall(&refined);
        assert!(
            r_refined >= r_plain,
            "refined {r_refined} must not lose to plain {r_plain}"
        );
        // Refined distances are near-exact (SQ8 half-step error), unlike
        // raw ADC estimates.
        for q in queries.chunks_exact(dim) {
            for h in refined.search(q, 5) {
                let row = &data[h.id as usize * dim..(h.id as usize + 1) * dim];
                let want = Metric::L2.distance(q, row);
                assert!(
                    (h.distance - want).abs() <= 0.05 * want.max(1.0),
                    "id {}: {} vs exact {want}",
                    h.id,
                    h.distance
                );
            }
        }
    }

    #[test]
    fn filtered_search_never_returns_tombstoned_ids() {
        let dim = 8;
        let data = clustered(1500, dim, 16, 9);
        for refine_sq8 in [false, true] {
            let mut idx = IvfPqIndex::new(
                dim,
                IvfPqConfig {
                    nlist: 16,
                    nprobe: 8,
                    pq: PqConfig {
                        m: 4,
                        ks: 32,
                        ..Default::default()
                    },
                    refine_sq8,
                    ..Default::default()
                },
            );
            idx.train(&data);
            idx.add_batch(&data);
            let q = &data[7 * dim..8 * dim];
            let tombs: TombSet = idx.search(q, 10).into_iter().map(|h| h.id).collect();
            let hits = idx.search_filtered(q, 10, Some(&tombs));
            assert_eq!(hits.len(), 10, "refine_sq8 {refine_sq8}");
            for h in &hits {
                assert!(!tombs.contains(h.id), "tombstoned id {} returned", h.id);
            }
        }
    }

    #[test]
    fn untrained_search_is_empty_and_add_panics() {
        let idx = IvfPqIndex::new(4, IvfPqConfig::default());
        assert!(idx.search(&[0.0; 4], 3).is_empty());
        assert!(!idx.is_trained());
    }

    #[test]
    #[should_panic]
    fn add_before_train_panics() {
        let mut idx = IvfPqIndex::new(4, IvfPqConfig::default());
        idx.add(&[0.0; 4]);
    }

    #[test]
    fn probing_more_lists_improves_recall() {
        let dim = 8;
        let data = clustered(2000, dim, 32, 3);
        let build = |nprobe| {
            let mut idx = IvfPqIndex::new(
                dim,
                IvfPqConfig {
                    nlist: 32,
                    nprobe,
                    pq: PqConfig {
                        m: 4,
                        ks: 32,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            idx.train(&data);
            idx.add_batch(&data);
            idx
        };
        let mut flat = FlatIndex::new(dim, Metric::L2);
        flat.add_batch(&data);
        let queries = clustered(20, dim, 32, 4);

        let recall = |idx: &IvfPqIndex| {
            let mut hit = 0usize;
            for q in queries.chunks_exact(dim) {
                let truth: std::collections::HashSet<u32> =
                    flat.search(q, 10).into_iter().map(|h| h.id).collect();
                hit += idx.search(q, 10).iter().filter(|h| truth.contains(&h.id)).count();
            }
            hit as f64 / 200.0
        };
        let r1 = recall(&build(1));
        let r16 = recall(&build(16));
        assert!(r16 >= r1, "nprobe 16 ({r16}) should not lose to 1 ({r1})");
        assert!(r16 > 0.6, "r16 {r16}");
    }
}
