//! Distance kernels shared by every index in this crate.

use serde::{Deserialize, Serialize};

/// The metric an index ranks by. DeepJoin's retrieval uses Euclidean
/// distance (paper §3.3) even though training scores with cosine (§4.2) —
/// the paper argues embedding length carries joinability signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Euclidean (L2) distance; smaller is closer.
    L2,
    /// Negative inner product (so smaller is closer, like a distance).
    InnerProduct,
    /// Cosine distance `1 − cos`; smaller is closer.
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b` under this metric.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b).sqrt(),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => 1.0 - cosine(a, b),
        }
    }

    /// A monotone surrogate that is cheaper to compute (squared L2; the
    /// others are already cheap). Rankings are identical to `distance`.
    #[inline]
    pub fn surrogate(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            other => other.distance(a, b),
        }
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Cosine similarity (0 when either vector is zero).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_pythagoras() {
        assert!((Metric::L2.distance(&[0., 0.], &[3., 4.]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn surrogate_preserves_ranking() {
        let q = [1.0f32, 2.0];
        let a = [1.5f32, 2.0];
        let b = [9.0f32, -3.0];
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let close = (m.distance(&q, &a) < m.distance(&q, &b))
                == (m.surrogate(&q, &a) < m.surrogate(&q, &b));
            assert!(close, "{m:?} surrogate changed order");
        }
    }

    #[test]
    fn inner_product_is_negated() {
        assert_eq!(Metric::InnerProduct.distance(&[1., 0.], &[2., 0.]), -2.0);
    }

    #[test]
    fn cosine_distance_range() {
        let d_same = Metric::Cosine.distance(&[1., 1.], &[2., 2.]);
        let d_orth = Metric::Cosine.distance(&[1., 0.], &[0., 1.]);
        assert!(d_same.abs() < 1e-6);
        assert!((d_orth - 1.0).abs() < 1e-6);
    }
}
