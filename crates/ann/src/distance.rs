//! Distance kernels shared by every index in this crate.
//!
//! The arithmetic lives in `deepjoin-simd` (runtime-dispatched AVX2+FMA /
//! portable-unrolled kernels with a scalar parity oracle); this module owns
//! the *metric semantics*: which kernel ranks a metric, how cheap surrogate
//! scores convert back to true distances, and when the unit-norm shortcut
//! for cosine is sound.

use serde::{Deserialize, Serialize};

pub use deepjoin_simd::{cosine, dot, l2_sq};

/// The metric an index ranks by. DeepJoin's retrieval uses Euclidean
/// distance (paper §3.3) even though training scores with cosine (§4.2) —
/// the paper argues embedding length carries joinability signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Euclidean (L2) distance; smaller is closer.
    L2,
    /// Negative inner product (so smaller is closer, like a distance).
    InnerProduct,
    /// Cosine distance `1 − cos`; smaller is closer.
    Cosine,
}

impl Metric {
    /// Distance between `a` and `b` under this metric.
    #[inline]
    pub fn distance(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b).sqrt(),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => 1.0 - cosine(a, b),
        }
    }

    /// A monotone surrogate that is cheaper to compute (squared L2; the
    /// others are already cheap). Rankings are identical to `distance`.
    #[inline]
    pub fn surrogate(self, a: &[f32], b: &[f32]) -> f32 {
        self.surrogate_un(a, b, false)
    }

    /// [`Metric::surrogate`] with a unit-norm promise: when `unit_norm` is
    /// true the caller guarantees both vectors have L2 norm 1 (DeepJoin's
    /// encoder normalizes every embedding), which lets cosine rank by the
    /// much cheaper `-dot` (since `1 − cos = 1 − a·b` for unit vectors).
    /// With `unit_norm` false, cosine falls back to the full computation.
    #[inline]
    pub fn surrogate_un(self, a: &[f32], b: &[f32], unit_norm: bool) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine if unit_norm => -dot(a, b),
            Metric::Cosine => 1.0 - cosine(a, b),
        }
    }

    /// Convert a surrogate score (from [`Metric::surrogate_un`] with the
    /// same `unit_norm`) back to the true distance.
    #[inline]
    pub fn distance_from_surrogate(self, s: f32, unit_norm: bool) -> f32 {
        match self {
            Metric::L2 => s.sqrt(),
            Metric::InnerProduct => s,
            Metric::Cosine if unit_norm => 1.0 + s,
            Metric::Cosine => s,
        }
    }

    /// Score one query against `out.len()` row-major `data` rows, writing
    /// surrogate scores into `out` via the blocked one-vs-many kernels.
    /// Cosine without the unit-norm promise has no blocked kernel and falls
    /// back to per-row evaluation.
    pub fn surrogate_block(self, query: &[f32], data: &[f32], unit_norm: bool, out: &mut [f32]) {
        match (self, unit_norm) {
            (Metric::L2, _) => deepjoin_simd::l2_sq_block(query, data, out),
            (Metric::InnerProduct, _) | (Metric::Cosine, true) => {
                deepjoin_simd::dot_block(query, data, out);
                for s in out.iter_mut() {
                    *s = -*s;
                }
            }
            (Metric::Cosine, false) => {
                for (s, row) in out.iter_mut().zip(data.chunks_exact(query.len())) {
                    *s = 1.0 - cosine(query, row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_pythagoras() {
        assert!((Metric::L2.distance(&[0., 0.], &[3., 4.]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn surrogate_preserves_ranking() {
        let q = [1.0f32, 2.0];
        let a = [1.5f32, 2.0];
        let b = [9.0f32, -3.0];
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let close = (m.distance(&q, &a) < m.distance(&q, &b))
                == (m.surrogate(&q, &a) < m.surrogate(&q, &b));
            assert!(close, "{m:?} surrogate changed order");
        }
    }

    #[test]
    fn inner_product_is_negated() {
        assert_eq!(Metric::InnerProduct.distance(&[1., 0.], &[2., 0.]), -2.0);
    }

    #[test]
    fn cosine_distance_range() {
        let d_same = Metric::Cosine.distance(&[1., 1.], &[2., 2.]);
        let d_orth = Metric::Cosine.distance(&[1., 0.], &[0., 1.]);
        assert!(d_same.abs() < 1e-6);
        assert!((d_orth - 1.0).abs() < 1e-6);
    }

    /// Unit vector at angle `t` (radians).
    fn unit(t: f32) -> [f32; 2] {
        [t.cos(), t.sin()]
    }

    #[test]
    fn unit_norm_cosine_surrogate_matches_full_cosine() {
        let q = unit(0.3);
        for t in [0.0f32, 0.4, 1.2, 2.0, 3.0] {
            let v = unit(t);
            let full = Metric::Cosine.distance(&q, &v);
            let s = Metric::Cosine.surrogate_un(&q, &v, true);
            let back = Metric::Cosine.distance_from_surrogate(s, true);
            assert!((full - back).abs() < 1e-6, "t={t}: {full} vs {back}");
        }
    }

    #[test]
    fn unit_norm_surrogate_preserves_ranking() {
        let q = unit(0.0);
        let near = unit(0.2);
        let far = unit(2.5);
        let s_near = Metric::Cosine.surrogate_un(&q, &near, true);
        let s_far = Metric::Cosine.surrogate_un(&q, &far, true);
        assert!(s_near < s_far);
    }

    #[test]
    fn distance_from_surrogate_roundtrips() {
        let a = [0.5f32, -1.0, 2.0];
        let b = [1.0f32, 0.25, -0.5];
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let s = m.surrogate(&a, &b);
            let d = m.distance_from_surrogate(s, false);
            assert!((d - m.distance(&a, &b)).abs() < 1e-6, "{m:?}");
        }
    }

    #[test]
    fn surrogate_block_matches_per_row() {
        let q = [0.2f32, -0.4, 0.6, 0.8];
        let data: Vec<f32> = (0..4 * 7).map(|i| (i as f32 * 0.37).sin()).collect();
        for m in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            for un in [false, true] {
                let mut out = vec![0f32; 7];
                m.surrogate_block(&q, &data, un, &mut out);
                for (i, row) in data.chunks_exact(4).enumerate() {
                    let want = m.surrogate_un(&q, row, un);
                    assert!((out[i] - want).abs() < 1e-5, "{m:?} un={un} row {i}");
                }
            }
        }
    }
}
