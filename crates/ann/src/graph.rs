//! HNSW adjacency storage: heap-built nested lists, or a zero-copy CSR
//! view over a mapped v2 artifact section.
//!
//! A freshly built graph is `Vec<Node>` — nested `Vec`s are what the
//! insertion algorithms need to grow and shrink out-lists in place. A
//! *loaded* graph doesn't need any of that: it is immutable, and rebuilding
//! millions of little `Vec<Vec<u32>>`s is exactly the cold-start cost the
//! v2 layout exists to kill. So the on-disk form is CSR — three flat `u32`
//! arrays — and [`Graph`] lets traversal walk either representation through
//! one accessor pair ([`Graph::level_count`] / [`Graph::neighbors`]), so
//! search behaves identically on both.
//!
//! CSR layout (all `u32`, little-endian on disk):
//!
//! ```text
//! node_off:  n+1 entries; node i owns rows node_off[i]..node_off[i+1],
//!            one row per layer (row r = layer r − node_off[i] of node i),
//!            so level_count(i) = node_off[i+1] − node_off[i].
//! adj_off:   node_off[n]+1 entries; row r's out-list is
//!            neighbors[adj_off[r]..adj_off[r+1]].
//! neighbors: E entries; the concatenated out-lists.
//! ```
//!
//! Mutation (a post-load [`crate::HnswIndex`] `add`) goes through
//! [`Graph::heap_mut`], which materializes CSR back into nested lists
//! first — loads stay zero-copy, and the rare post-load insert pays one
//! conversion.

use crate::plane::PodVec;

/// Adjacency of one heap node: `neighbors[l]` is the out-list on layer `l`.
#[derive(Debug, Clone, Default)]
pub(crate) struct Node {
    pub(crate) neighbors: Vec<Vec<u32>>,
}

enum Repr {
    Heap(Vec<Node>),
    Csr {
        node_off: PodVec<u32>,
        adj_off: PodVec<u32>,
        neighbors: PodVec<u32>,
    },
}

/// Layered adjacency over heap or CSR backing (see module docs).
pub struct Graph {
    repr: Repr,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Empty heap-backed graph.
    pub fn new() -> Self {
        Self {
            repr: Repr::Heap(Vec::new()),
        }
    }

    /// Graph from fully-formed per-node adjacency (the v1 decode path).
    pub fn from_adjacency(nodes: Vec<Vec<Vec<u32>>>) -> Self {
        Self {
            repr: Repr::Heap(nodes.into_iter().map(|neighbors| Node { neighbors }).collect()),
        }
    }

    /// Graph over CSR arrays (heap-decoded or mapped views alike), after
    /// validating every structural invariant traversal relies on:
    /// monotone offset tables that cover each other exactly, and neighbor
    /// ids within the node count. Returns a description of the first
    /// violation, so loaders can degrade instead of panicking mid-search.
    pub fn from_csr(
        node_off: impl Into<PodVec<u32>>,
        adj_off: impl Into<PodVec<u32>>,
        neighbors: impl Into<PodVec<u32>>,
    ) -> Result<Self, String> {
        let (node_off, adj_off, neighbors) = (node_off.into(), adj_off.into(), neighbors.into());
        let no = node_off.as_slice();
        let ao = adj_off.as_slice();
        let nb = neighbors.as_slice();
        if no.is_empty() {
            return Err("node offset table is empty".into());
        }
        if no[0] != 0 {
            return Err("node offset table does not start at 0".into());
        }
        if no.windows(2).any(|w| w[0] > w[1]) {
            return Err("node offset table is not monotone".into());
        }
        let rows = *no.last().expect("non-empty") as usize;
        if ao.len() != rows + 1 {
            return Err(format!(
                "adjacency offset table has {} entries, want {}",
                ao.len(),
                rows + 1
            ));
        }
        if ao[0] != 0 {
            return Err("adjacency offset table does not start at 0".into());
        }
        if ao.windows(2).any(|w| w[0] > w[1]) {
            return Err("adjacency offset table is not monotone".into());
        }
        if *ao.last().expect("non-empty") as usize != nb.len() {
            return Err(format!(
                "adjacency covers {} edges, neighbor array holds {}",
                ao.last().expect("non-empty"),
                nb.len()
            ));
        }
        let n = (no.len() - 1) as u32;
        if let Some(&bad) = nb.iter().find(|&&id| id >= n) {
            return Err(format!("neighbor id {bad} out of range (n = {n})"));
        }
        Ok(Self {
            repr: Repr::Csr {
                node_off,
                adj_off,
                neighbors,
            },
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Heap(nodes) => nodes.len(),
            Repr::Csr { node_off, .. } => node_off.len() - 1,
        }
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of layers node `id` participates in (its sampled level + 1).
    #[inline]
    pub fn level_count(&self, id: u32) -> usize {
        match &self.repr {
            Repr::Heap(nodes) => nodes[id as usize].neighbors.len(),
            Repr::Csr { node_off, .. } => {
                let no = node_off.as_slice();
                (no[id as usize + 1] - no[id as usize]) as usize
            }
        }
    }

    /// Out-list of node `id` on `level`. `level` must be below
    /// [`Graph::level_count`] for the node.
    #[inline]
    pub fn neighbors(&self, id: u32, level: usize) -> &[u32] {
        match &self.repr {
            Repr::Heap(nodes) => &nodes[id as usize].neighbors[level],
            Repr::Csr {
                node_off,
                adj_off,
                neighbors,
            } => {
                let row = node_off.as_slice()[id as usize] as usize + level;
                let ao = adj_off.as_slice();
                &neighbors.as_slice()[ao[row] as usize..ao[row + 1] as usize]
            }
        }
    }

    /// True when the adjacency is a zero-copy view of a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        match &self.repr {
            Repr::Heap(_) => false,
            Repr::Csr { neighbors, .. } => neighbors.is_mapped(),
        }
    }

    /// Heap bytes retained by the adjacency (0 for fully mapped CSR).
    pub fn resident_bytes(&self) -> usize {
        match &self.repr {
            Repr::Heap(nodes) => {
                let mut total = nodes.capacity() * std::mem::size_of::<Node>();
                for node in nodes {
                    total += node.neighbors.capacity() * std::mem::size_of::<Vec<u32>>();
                    for list in &node.neighbors {
                        total += list.capacity() * std::mem::size_of::<u32>();
                    }
                }
                total
            }
            Repr::Csr {
                node_off,
                adj_off,
                neighbors,
            } => {
                node_off.resident_bytes() + adj_off.resident_bytes() + neighbors.resident_bytes()
            }
        }
    }

    /// Flatten to CSR arrays (for the v2 encoder), regardless of backing.
    pub fn to_csr(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let n = self.len();
        let mut node_off = Vec::with_capacity(n + 1);
        let mut adj_off = vec![0u32];
        let mut flat = Vec::new();
        node_off.push(0u32);
        let mut rows = 0u32;
        for id in 0..n as u32 {
            let levels = self.level_count(id);
            rows += levels as u32;
            node_off.push(rows);
            for level in 0..levels {
                flat.extend_from_slice(self.neighbors(id, level));
                adj_off.push(flat.len() as u32);
            }
        }
        (node_off, adj_off, flat)
    }

    /// Mutable per-node adjacency, converting CSR to heap first (one copy;
    /// afterwards the graph stays heap-backed).
    pub(crate) fn heap_mut(&mut self) -> &mut Vec<Node> {
        if let Repr::Csr { .. } = self.repr {
            let mut nodes = Vec::with_capacity(self.len());
            for id in 0..self.len() as u32 {
                let neighbors = (0..self.level_count(id))
                    .map(|l| self.neighbors(id, l).to_vec())
                    .collect();
                nodes.push(Node { neighbors });
            }
            self.repr = Repr::Heap(nodes);
        }
        match &mut self.repr {
            Repr::Heap(nodes) => nodes,
            Repr::Csr { .. } => unreachable!("materialized above"),
        }
    }
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        match &self.repr {
            Repr::Heap(nodes) => Self {
                repr: Repr::Heap(nodes.clone()),
            },
            Repr::Csr {
                node_off,
                adj_off,
                neighbors,
            } => Self {
                repr: Repr::Csr {
                    node_off: node_off.clone(),
                    adj_off: adj_off.clone(),
                    neighbors: neighbors.clone(),
                },
            },
        }
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.len())
            .field("csr", &matches!(self.repr, Repr::Csr { .. }))
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_adjacency() -> Vec<Vec<Vec<u32>>> {
        vec![
            vec![vec![1, 2], vec![3]],   // node 0: 2 layers
            vec![vec![0]],               // node 1: 1 layer
            vec![vec![0, 3], vec![], vec![3]], // node 2: 3 layers, one empty
            vec![vec![2]],               // node 3
        ]
    }

    #[test]
    fn heap_and_csr_agree_on_every_accessor() {
        let heap = Graph::from_adjacency(sample_adjacency());
        let (no, ao, nb) = heap.to_csr();
        let csr = Graph::from_csr(no, ao, nb).unwrap();
        assert_eq!(heap.len(), csr.len());
        for id in 0..heap.len() as u32 {
            assert_eq!(heap.level_count(id), csr.level_count(id), "node {id}");
            for l in 0..heap.level_count(id) {
                assert_eq!(heap.neighbors(id, l), csr.neighbors(id, l), "node {id} layer {l}");
            }
        }
    }

    #[test]
    fn csr_round_trips_back_to_identical_csr() {
        let heap = Graph::from_adjacency(sample_adjacency());
        let first = heap.to_csr();
        let csr = Graph::from_csr(first.0.clone(), first.1.clone(), first.2.clone()).unwrap();
        assert_eq!(csr.to_csr(), first);
    }

    #[test]
    fn heap_mut_on_csr_materializes_and_preserves_lists() {
        let heap = Graph::from_adjacency(sample_adjacency());
        let (no, ao, nb) = heap.to_csr();
        let mut csr = Graph::from_csr(no, ao, nb).unwrap();
        csr.heap_mut()[0].neighbors[0].push(3);
        assert_eq!(csr.neighbors(0, 0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(2, 2), &[3], "untouched lists survive");
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let (no, ao, nb) = g.to_csr();
        assert_eq!((no.as_slice(), ao.as_slice(), nb.len()), (&[0u32][..], &[0u32][..], 0));
        let back = Graph::from_csr(no, ao, nb).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn from_csr_rejects_structural_damage() {
        let (no, ao, nb) = Graph::from_adjacency(sample_adjacency()).to_csr();
        // Empty node table.
        assert!(Graph::from_csr(vec![], ao.clone(), nb.clone()).is_err());
        // Non-monotone node offsets.
        let mut bad = no.clone();
        bad[1] = 5;
        assert!(Graph::from_csr(bad, ao.clone(), nb.clone()).is_err());
        // Truncated adjacency table.
        assert!(Graph::from_csr(no.clone(), ao[..ao.len() - 1].to_vec(), nb.clone()).is_err());
        // Edge array length mismatch.
        assert!(Graph::from_csr(no.clone(), ao.clone(), nb[..nb.len() - 1].to_vec()).is_err());
        // Out-of-range neighbor id.
        let mut bad = nb.clone();
        bad[0] = 100;
        assert!(Graph::from_csr(no, ao, bad).is_err());
    }

    #[test]
    fn csr_over_mapped_bytes_is_zero_copy() {
        use std::sync::Arc;
        let (no, ao, nb) = Graph::from_adjacency(sample_adjacency()).to_csr();
        let mut bytes = Vec::new();
        for v in no.iter().chain(&ao).chain(&nb) {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let owner: crate::plane::ByteOwner = Arc::new(bytes);
        let pv_no = PodVec::<u32>::from_bytes(owner.clone(), 0, no.len()).unwrap();
        let pv_ao = PodVec::<u32>::from_bytes(owner.clone(), no.len() * 4, ao.len()).unwrap();
        let pv_nb =
            PodVec::<u32>::from_bytes(owner, (no.len() + ao.len()) * 4, nb.len()).unwrap();
        let g = Graph::from_csr(pv_no, pv_ao, pv_nb).unwrap();
        assert!(g.is_mapped());
        assert_eq!(g.resident_bytes(), 0);
        let heap = Graph::from_adjacency(sample_adjacency());
        for id in 0..heap.len() as u32 {
            for l in 0..heap.level_count(id) {
                assert_eq!(g.neighbors(id, l), heap.neighbors(id, l));
            }
        }
    }
}
