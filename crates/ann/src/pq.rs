//! Product quantization (Jégou et al., TPAMI'11).
//!
//! Splits a `dim`-dimensional vector into `m` sub-vectors and quantizes each
//! with its own k-means codebook of `ks` centroids, giving an `m`-byte code.
//! Queries are answered with asymmetric distance computation (ADC): one
//! `m × ks` lookup table of squared sub-distances per query, then each
//! database code costs `m` table lookups.
//!
//! The `m` codebooks are independent (disjoint sub-spaces, per-`s` seeds),
//! so training fans them out across the shared pool; ADC tables are filled
//! with the blocked one-vs-many SIMD kernel.

use deepjoin_par::Pool;

use crate::distance::l2_sq;
use crate::kmeans::{Kmeans, KmeansConfig};

/// PQ hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct PqConfig {
    /// Number of sub-quantizers (must divide `dim`).
    pub m: usize,
    /// Centroids per sub-quantizer (max 256 so codes fit in `u8`).
    pub ks: usize,
    /// k-means iterations for codebook training.
    pub train_iters: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self {
            m: 8,
            ks: 256,
            train_iters: 20,
            seed: 0x90,
        }
    }
}

/// A trained product quantizer.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    /// Full vector dimensionality.
    pub dim: usize,
    /// Sub-vector width (`dim / m`).
    pub sub_dim: usize,
    config: PqConfig,
    /// One codebook per sub-quantizer.
    codebooks: Vec<Kmeans>,
}

impl ProductQuantizer {
    /// Train codebooks on row-major `data` (`n x dim`), using the
    /// process-global pool (see [`Pool::global`]). Each sub-quantizer has
    /// its own seed and sub-space, so the codebooks are identical for any
    /// pool size.
    pub fn train(data: &[f32], dim: usize, config: PqConfig) -> Self {
        Self::train_with_pool(data, dim, config, &Pool::global())
    }

    /// [`ProductQuantizer::train`] with an explicit pool.
    pub fn train_with_pool(data: &[f32], dim: usize, config: PqConfig, pool: &Pool) -> Self {
        assert!(dim.is_multiple_of(config.m), "m must divide dim");
        assert!(config.ks <= 256, "ks must fit in u8");
        let n = data.len() / dim;
        assert!(n > 0, "no training data");
        let sub_dim = dim / config.m;

        // Fan the independent codebooks across the pool; each task gathers
        // its own sub-vector buffer and trains serially (the pool's threads
        // are already saturated at this level).
        let inner = Pool::serial();
        let codebooks: Vec<Kmeans> = pool
            .map(config.m, 1, |range| {
                range
                    .map(|s| {
                        let mut sub = vec![0f32; n * sub_dim];
                        for i in 0..n {
                            let src =
                                &data[i * dim + s * sub_dim..i * dim + (s + 1) * sub_dim];
                            sub[i * sub_dim..(i + 1) * sub_dim].copy_from_slice(src);
                        }
                        Kmeans::train_with_pool(
                            &sub,
                            sub_dim,
                            KmeansConfig {
                                k: config.ks,
                                max_iters: config.train_iters,
                                seed: config.seed ^ (s as u64 + 1),
                            },
                            &inner,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        Self {
            dim,
            sub_dim,
            config,
            codebooks,
        }
    }

    /// Number of sub-quantizers.
    pub fn m(&self) -> usize {
        self.config.m
    }

    /// Encode a vector to its `m`-byte code.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim);
        (0..self.config.m)
            .map(|s| {
                let sv = &v[s * self.sub_dim..(s + 1) * self.sub_dim];
                self.codebooks[s].assign(sv) as u8
            })
            .collect()
    }

    /// Reconstruct (decode) a code to its centroid approximation.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.config.m);
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.codebooks[s].centroid(c as usize));
        }
        out
    }

    /// Build the ADC lookup table for `query`: `m x ks` squared distances
    /// from each query sub-vector to each centroid.
    pub fn adc_table(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim);
        let ks = self.codebooks[0].k();
        let mut table = vec![0f32; self.config.m * ks];
        for (s, cb) in self.codebooks.iter().enumerate() {
            let qv = &query[s * self.sub_dim..(s + 1) * self.sub_dim];
            deepjoin_simd::l2_sq_block(qv, &cb.centroids, &mut table[s * ks..(s + 1) * ks]);
        }
        table
    }

    /// Approximate squared distance of a database code to the query whose
    /// ADC table is `table`.
    #[inline]
    pub fn adc_distance(&self, table: &[f32], code: &[u8]) -> f32 {
        let ks = self.codebooks[0].k();
        code.iter()
            .enumerate()
            .map(|(s, &c)| table[s * ks + c as usize])
            .sum()
    }

    /// Mean squared reconstruction error over `data`.
    pub fn reconstruction_error(&self, data: &[f32]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0f64;
        for v in data.chunks_exact(self.dim) {
            let r = self.decode(&self.encode(v));
            total += l2_sq(v, &r) as f64;
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn encode_decode_roundtrip_is_close() {
        let d = data(500, 8, 1);
        let pq = ProductQuantizer::train(
            &d,
            8,
            PqConfig {
                m: 4,
                ks: 64,
                ..Default::default()
            },
        );
        let err = pq.reconstruction_error(&d);
        // Random uniform data has E||v||² = dim/3 ≈ 2.67; PQ must do far better.
        assert!(err < 0.5, "reconstruction error {err}");
    }

    #[test]
    fn more_subquantizers_reduce_error() {
        let d = data(500, 8, 2);
        let cfg = |m| PqConfig {
            m,
            ks: 16,
            ..Default::default()
        };
        let e2 = ProductQuantizer::train(&d, 8, cfg(2)).reconstruction_error(&d);
        let e8 = ProductQuantizer::train(&d, 8, cfg(8)).reconstruction_error(&d);
        assert!(e8 < e2, "m=8 ({e8}) should beat m=2 ({e2})");
    }

    #[test]
    fn adc_equals_decoded_distance() {
        let d = data(300, 8, 3);
        let pq = ProductQuantizer::train(
            &d,
            8,
            PqConfig {
                m: 4,
                ks: 32,
                ..Default::default()
            },
        );
        let q = &d[0..8];
        let table = pq.adc_table(q);
        for v in d.chunks_exact(8).take(20) {
            let code = pq.encode(v);
            let adc = pq.adc_distance(&table, &code);
            let exact = l2_sq(q, &pq.decode(&code));
            assert!((adc - exact).abs() < 1e-4, "adc {adc} vs exact {exact}");
        }
    }

    #[test]
    fn code_length_is_m() {
        let d = data(100, 8, 4);
        let pq = ProductQuantizer::train(
            &d,
            8,
            PqConfig {
                m: 4,
                ks: 16,
                ..Default::default()
            },
        );
        assert_eq!(pq.encode(&d[0..8]).len(), 4);
        assert_eq!(pq.m(), 4);
    }

    #[test]
    #[should_panic]
    fn m_must_divide_dim() {
        let d = data(10, 8, 5);
        let _ = ProductQuantizer::train(
            &d,
            8,
            PqConfig {
                m: 3,
                ..Default::default()
            },
        );
    }
}
