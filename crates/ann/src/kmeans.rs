//! Lloyd's k-means with k-means++ seeding — the quantizer trainer behind
//! product quantization and the IVF coarse quantizer.
//!
//! The hot loops ride the shared substrates: point-to-centroid scoring uses
//! the blocked SIMD kernels (`deepjoin-simd`), and the Lloyd assignment
//! step — the dominant cost — is chunk-parallel over points via
//! `deepjoin-par`. Results are deterministic for any thread count: each
//! point's assignment is computed independently and written into its own
//! slot, and the sequential centroid update consumes them in point order.

use deepjoin_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distance::l2_sq;

/// K-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KmeansConfig {
    /// Number of centroids.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 25,
            seed: 0x4EA5,
        }
    }
}

/// Trained centroids (row-major `k x dim`).
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Dimensionality.
    pub dim: usize,
    /// Row-major centroid matrix.
    pub centroids: Vec<f32>,
}

impl Kmeans {
    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len() / self.dim
    }

    /// Centroid `c` as a slice.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f32] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// Index of the nearest centroid to `v`.
    pub fn assign(&self, v: &[f32]) -> usize {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for c in 0..self.k() {
            let d = l2_sq(v, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// [`Kmeans::assign`] through the blocked one-vs-many kernel, using a
    /// caller-provided scratch buffer of length `k()` (so hot loops don't
    /// allocate per point). Ties break to the lowest centroid index, same
    /// as `assign`.
    pub fn assign_with_scratch(&self, v: &[f32], scratch: &mut [f32]) -> usize {
        debug_assert_eq!(scratch.len(), self.k());
        deepjoin_simd::l2_sq_block(v, &self.centroids, scratch);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, &d) in scratch.iter().enumerate() {
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Indices of the `n` nearest centroids (ascending distance).
    pub fn assign_n(&self, v: &[f32], n: usize) -> Vec<usize> {
        let mut ds: Vec<(usize, f32)> = (0..self.k())
            .map(|c| (c, l2_sq(v, self.centroid(c))))
            .collect();
        ds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        ds.truncate(n);
        ds.into_iter().map(|(c, _)| c).collect()
    }

    /// Train on row-major `data` (`n x dim`). If there are fewer points than
    /// requested centroids, `k` is reduced to the number of points.
    ///
    /// Uses the process-global pool (see [`Pool::global`]) for the Lloyd
    /// assignment step; output is independent of the pool size.
    pub fn train(data: &[f32], dim: usize, config: KmeansConfig) -> Self {
        Self::train_with_pool(data, dim, config, &Pool::global())
    }

    /// [`Kmeans::train`] with an explicit pool.
    pub fn train_with_pool(data: &[f32], dim: usize, config: KmeansConfig, pool: &Pool) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "bad shape");
        let n = data.len() / dim;
        assert!(n > 0, "no training points");
        let k = config.k.min(n);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- k-means++ seeding ---
        let point = |i: usize| &data[i * dim..(i + 1) * dim];
        let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
        let first = rng.gen_range(0..n);
        centroids.extend_from_slice(point(first));
        let mut dist2 = vec![0f32; n];
        deepjoin_simd::l2_sq_block(point(first), data, &mut dist2);
        let mut new_d = vec![0f32; n];
        while centroids.len() / dim < k {
            let total: f64 = dist2.iter().map(|&d| d as f64).sum();
            let chosen = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut idx = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                idx
            };
            centroids.extend_from_slice(point(chosen));
            let c = centroids.len() / dim - 1;
            let new_c = centroids[c * dim..(c + 1) * dim].to_vec();
            deepjoin_simd::l2_sq_block(&new_c, data, &mut new_d);
            for (d2, &d) in dist2.iter_mut().zip(&new_d) {
                if d < *d2 {
                    *d2 = d;
                }
            }
        }

        let mut km = Self { dim, centroids };

        // --- Lloyd iterations ---
        // The assignment step is chunk-parallel over points: each chunk
        // scores its points against all centroids with the blocked kernel
        // and writes into its own disjoint slice of `new_assign`, so the
        // result is identical for any pool size.
        let mut assignment = vec![0usize; n];
        let mut new_assign = vec![0usize; n];
        for it in 0..config.max_iters {
            {
                let km_ref = &km;
                pool.for_each_chunk_mut(&mut new_assign, n, 64, |range, slice| {
                    let mut scratch = vec![0f32; km_ref.k()];
                    for (i, slot) in range.zip(slice.iter_mut()) {
                        *slot = km_ref.assign_with_scratch(point(i), &mut scratch);
                    }
                });
            }
            let changed = it == 0 || new_assign != assignment;
            assignment.copy_from_slice(&new_assign);
            if !changed {
                break;
            }
            let mut sums = vec![0f64; k * dim];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let a = assignment[i];
                counts[a] += 1;
                for (s, &v) in sums[a * dim..(a + 1) * dim].iter_mut().zip(point(i)) {
                    *s += v as f64;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at a random point.
                    let p = point(rng.gen_range(0..n)).to_vec();
                    km.centroids[c * dim..(c + 1) * dim].copy_from_slice(&p);
                    continue;
                }
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in km.centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = (s * inv) as f32;
                }
            }
        }
        km
    }

    /// Mean squared distance of points to their assigned centroid.
    pub fn inertia(&self, data: &[f32]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut total = 0f64;
        for v in data.chunks_exact(self.dim) {
            let c = self.assign(v);
            total += l2_sq(v, self.centroid(c)) as f64;
        }
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = Vec::new();
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..50 {
                data.push(cx + rng.gen_range(-0.5..0.5));
                data.push(cy + rng.gen_range(-0.5..0.5));
            }
        }
        data
    }

    #[test]
    fn recovers_blob_centers() {
        let data = blobs();
        let km = Kmeans::train(&data, 2, KmeansConfig { k: 3, ..Default::default() });
        assert_eq!(km.k(), 3);
        // Each true center should be within 1.0 of some centroid.
        for (cx, cy) in [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)] {
            let close = (0..3).any(|c| l2_sq(km.centroid(c), &[cx, cy]) < 1.0);
            assert!(close, "no centroid near ({cx},{cy}): {:?}", km.centroids);
        }
    }

    #[test]
    fn inertia_decreases_with_more_centroids() {
        let data = blobs();
        let km1 = Kmeans::train(&data, 2, KmeansConfig { k: 1, ..Default::default() });
        let km3 = Kmeans::train(&data, 2, KmeansConfig { k: 3, ..Default::default() });
        assert!(km3.inertia(&data) < km1.inertia(&data) * 0.2);
    }

    #[test]
    fn k_clamped_to_points() {
        let data = vec![0.0f32, 0.0, 1.0, 1.0];
        let km = Kmeans::train(&data, 2, KmeansConfig { k: 10, ..Default::default() });
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn assign_n_is_sorted() {
        let data = blobs();
        let km = Kmeans::train(&data, 2, KmeansConfig { k: 3, ..Default::default() });
        let order = km.assign_n(&[0.0, 0.0], 3);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], km.assign(&[0.0, 0.0]));
    }

    #[test]
    fn deterministic() {
        let data = blobs();
        let a = Kmeans::train(&data, 2, KmeansConfig { k: 3, seed: 5, ..Default::default() });
        let b = Kmeans::train(&data, 2, KmeansConfig { k: 3, seed: 5, ..Default::default() });
        assert_eq!(a.centroids, b.centroids);
    }
}
