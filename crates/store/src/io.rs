//! Artifact I/O: the trait the stack reads and writes snapshots through,
//! and its crash-safe filesystem implementation.
//!
//! [`StdIo::write_atomic`] follows the classic durable-rename protocol:
//! write to a unique temp file in the destination directory, `fsync` it,
//! then `rename` over the target (atomic on POSIX), then best-effort
//! `fsync` the directory. A crash mid-write leaves either the old file or
//! the new file — never a torn mix — which is what makes the checksummed
//! container's job tractable: it only has to *detect* damage from storage
//! decay or non-atomic copies, not from our own write path.
//!
//! The trait exists so tests can substitute [`crate::faults::FaultyIo`] and
//! prove the load paths survive torn writes, truncations, bit flips, and
//! ENOSPC without panicking.

use std::io;
use std::path::{Path, PathBuf};

/// Byte-level artifact storage.
pub trait ArtifactIo {
    /// Read the whole artifact at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Durably replace the artifact at `path` with `bytes`: after a
    /// successful return the new content survives a crash, and a failure
    /// leaves any previous artifact intact.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Whether an artifact exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// Real-filesystem implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

impl StdIo {
    fn temp_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        // Unique-ish suffix: pid guards against concurrent writers on the
        // same host; the final rename makes collisions harmless anyway.
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    }
}

impl ArtifactIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;

        let tmp = Self::temp_path(path);
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            // Leave no temp litter behind a failed write.
            let _ = std::fs::remove_file(&tmp);
            return result;
        }
        // Durability of the rename itself: fsync the parent directory.
        // Best-effort — some filesystems refuse to open directories.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("djstore-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_roundtrips() {
        let dir = tmpdir("rt");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"hello artifact").unwrap();
        assert!(StdIo.exists(&path));
        assert_eq!(StdIo.read(&path).unwrap(), b"hello artifact");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_and_leaves_no_temp_files() {
        let dir = tmpdir("ow");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"v1").unwrap();
        StdIo.write_atomic(&path, b"v2-longer-content").unwrap();
        assert_eq!(StdIo.read(&path).unwrap(), b"v2-longer-content");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_preserves_previous_artifact() {
        let dir = tmpdir("fail");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"original").unwrap();
        // Writing into a directory path fails (create of temp succeeds, the
        // rename target is a directory) — simulate by using a path whose
        // parent does not exist instead, which fails at create.
        let bad = dir.join("missing-subdir").join("b.bin");
        assert!(StdIo.write_atomic(&bad, b"x").is_err());
        assert_eq!(StdIo.read(&path).unwrap(), b"original");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
