//! Artifact I/O: the trait the stack reads and writes snapshots through,
//! and its crash-safe filesystem implementation.
//!
//! [`StdIo::write_atomic`] follows the classic durable-rename protocol:
//! write to a unique temp file in the destination directory, `fsync` it,
//! then `rename` over the target (atomic on POSIX), then best-effort
//! `fsync` the directory. A crash mid-write leaves either the old file or
//! the new file — never a torn mix — which is what makes the checksummed
//! container's job tractable: it only has to *detect* damage from storage
//! decay or non-atomic copies, not from our own write path.
//!
//! The trait exists so tests can substitute [`crate::faults::FaultyIo`] and
//! prove the load paths survive torn writes, truncations, bit flips, and
//! ENOSPC without panicking.

use std::io;
use std::path::{Path, PathBuf};

/// A shareable, thread-safe artifact store — what long-lived components
/// (the WAL, the live-lake state) hold so tests can substitute fault
/// injectors for the real filesystem.
pub type SharedIo = std::sync::Arc<dyn ArtifactIo + Send + Sync>;

/// Byte-level artifact storage.
pub trait ArtifactIo {
    /// Read the whole artifact at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Durably replace the artifact at `path` with `bytes`: after a
    /// successful return the new content survives a crash, and a failure
    /// leaves any previous artifact intact.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Whether an artifact exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Durably append `bytes` to the artifact at `path`, creating it if
    /// absent. Unlike [`Self::write_atomic`] an append is *not* atomic: a
    /// crash mid-append may persist any prefix of `bytes`, which is why WAL
    /// records carry their own framing and checksums.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Remove the artifact at `path`. Removing a missing artifact is `Ok`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// File names (not full paths) of every artifact directly under `dir`.
    /// A missing directory lists as empty.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Byte length of the artifact at `path`.
    ///
    /// The default implementation reads the whole artifact; real backends
    /// override it with a `stat` so replication polls stay cheap.
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(self.read(path)?.len() as u64)
    }

    /// Read up to `len` bytes starting at byte `offset` of the artifact at
    /// `path`. Returns fewer bytes when the range extends past end-of-file
    /// (and an empty vec when `offset` is at or past it).
    ///
    /// The default implementation reads the whole artifact and slices;
    /// [`StdIo`] overrides it with a positioned read so serving replication
    /// chunks does not load entire snapshots per chunk.
    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let bytes = self.read(path)?;
        let start = usize::try_from(offset).unwrap_or(usize::MAX).min(bytes.len());
        let end = start.saturating_add(len).min(bytes.len());
        Ok(bytes[start..end].to_vec())
    }
}

/// Real-filesystem implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdIo;

impl StdIo {
    fn temp_path(path: &Path) -> PathBuf {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        // Unique-ish suffix: pid guards against concurrent writers on the
        // same host; the final rename makes collisions harmless anyway.
        name.push(format!(".tmp.{}", std::process::id()));
        path.with_file_name(name)
    }
}

impl ArtifactIo for StdIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;

        let tmp = Self::temp_path(path);
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            // Leave no temp litter behind a failed write.
            let _ = std::fs::remove_file(&tmp);
            return result;
        }
        // Durability of the rename itself: fsync the parent directory.
        // Best-effort — some filesystems refuse to open directories.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;

        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => {
                // Make the unlink itself durable, mirroring write_atomic.
                if let Some(dir) = path.parent() {
                    if let Ok(d) = std::fs::File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
                Ok(())
            }
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn read_range(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};

        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(offset))?;
        let mut out = Vec::new();
        f.take(len as u64).read_to_end(&mut out)?;
        Ok(out)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let entries = match std::fs::read_dir(dir) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            other => other?,
        };
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("djstore-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_roundtrips() {
        let dir = tmpdir("rt");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"hello artifact").unwrap();
        assert!(StdIo.exists(&path));
        assert_eq!(StdIo.read(&path).unwrap(), b"hello artifact");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_and_leaves_no_temp_files() {
        let dir = tmpdir("ow");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"v1").unwrap();
        StdIo.write_atomic(&path, b"v2-longer-content").unwrap();
        assert_eq!(StdIo.read(&path).unwrap(), b"v2-longer-content");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_creates_then_extends() {
        let dir = tmpdir("app");
        let path = dir.join("wal.log");
        StdIo.append(&path, b"rec1").unwrap();
        StdIo.append(&path, b"rec2").unwrap();
        assert_eq!(StdIo.read(&path).unwrap(), b"rec1rec2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_is_idempotent_and_list_sees_only_files() {
        let dir = tmpdir("rm");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"x").unwrap();
        std::fs::create_dir(dir.join("subdir")).unwrap();
        assert_eq!(StdIo.list(&dir).unwrap(), vec!["a.bin".to_string()]);
        StdIo.remove(&path).unwrap();
        StdIo.remove(&path).unwrap(); // second remove is not an error
        assert!(!StdIo.exists(&path));
        assert!(StdIo.list(&dir).unwrap().is_empty());
        assert!(StdIo.list(&dir.join("missing")).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_range_slices_and_clamps_to_eof() {
        let dir = tmpdir("range");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(StdIo.file_len(&path).unwrap(), 10);
        assert_eq!(StdIo.read_range(&path, 0, 4).unwrap(), b"0123");
        assert_eq!(StdIo.read_range(&path, 4, 4).unwrap(), b"4567");
        assert_eq!(StdIo.read_range(&path, 8, 100).unwrap(), b"89");
        assert!(StdIo.read_range(&path, 10, 4).unwrap().is_empty());
        assert!(StdIo.read_range(&path, 999, 4).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_preserves_previous_artifact() {
        let dir = tmpdir("fail");
        let path = dir.join("a.bin");
        StdIo.write_atomic(&path, b"original").unwrap();
        // Writing into a directory path fails (create of temp succeeds, the
        // rename target is a directory) — simulate by using a path whose
        // parent does not exist instead, which fails at create.
        let bad = dir.join("missing-subdir").join("b.bin");
        assert!(StdIo.write_atomic(&bad, b"x").is_err());
        assert_eq!(StdIo.read(&path).unwrap(), b"original");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
