//! The little-endian binary codec all artifact payloads are written with,
//! plus the decode error type the whole stack reports corruption through.
//!
//! [`Reader`] tracks the byte offset and the logical *section* it is decoding
//! so every failure says where the artifact broke — `"HNSW"+0x1a4: truncated
//! (need 8, have 3)` instead of a bare "buffer truncated". Every accessor is
//! total: corrupt input yields `Err`, never a panic, and length prefixes are
//! validated against the bytes actually remaining before any allocation, so
//! a flipped length byte cannot balloon into an OOM.

use std::fmt;

/// What went wrong while decoding, without location context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeErrorKind {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes the decoder needed at this point.
        needed: usize,
        /// Bytes that were actually left.
        available: usize,
    },
    /// An enum discriminant had no defined meaning.
    BadDiscriminant(u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A section checksum did not match its payload.
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        stored: u32,
        /// Checksum computed over the payload as read.
        computed: u32,
    },
    /// A structurally impossible value (reason attached).
    Invalid(&'static str),
}

/// A decode failure, located: which section of the artifact, and at which
/// byte offset within it, the corruption was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Logical section name (e.g. `"MODL"`, `"HNSW"`, or `"file"` for
    /// un-sectioned legacy artifacts).
    pub section: &'static str,
    /// Byte offset within that section where decoding failed.
    pub offset: usize,
    /// The failure itself.
    pub kind: DecodeErrorKind,
}

impl DecodeError {
    /// Construct an error at an explicit location.
    pub fn new(kind: DecodeErrorKind, section: &'static str, offset: usize) -> Self {
        Self {
            section,
            offset,
            kind,
        }
    }

    /// True when the failure is a checksum mismatch (the class the loader
    /// may degrade on rather than reject).
    pub fn is_checksum_mismatch(&self) -> bool {
        matches!(self.kind, DecodeErrorKind::ChecksumMismatch { .. })
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "section {:?} at byte {:#x}: ", self.section, self.offset)?;
        match &self.kind {
            DecodeErrorKind::BadMagic => write!(f, "bad magic bytes"),
            DecodeErrorKind::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeErrorKind::Truncated { needed, available } => {
                write!(f, "truncated (need {needed} bytes, have {available})")
            }
            DecodeErrorKind::BadDiscriminant(d) => write!(f, "bad discriminant {d}"),
            DecodeErrorKind::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            DecodeErrorKind::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            DecodeErrorKind::Invalid(why) => write!(f, "invalid value: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only writer for the codec (little-endian, length-prefixed).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, no prefix.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f32`, little-endian.
    pub fn put_f32_le(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// String with a `u32` byte-length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32_le(s.len() as u32);
        self.put_slice(s.as_bytes());
    }

    /// `f32` slice with a `u64` element-count prefix.
    pub fn put_f32s(&mut self, xs: &[f32]) {
        self.put_u64_le(xs.len() as u64);
        for &x in xs {
            self.put_f32_le(x);
        }
    }
}

/// Cursor over an encoded payload that locates every failure.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Reader<'a> {
    /// Read `buf`, attributing errors to `section`.
    pub fn new(buf: &'a [u8], section: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset within the section.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Build an error at the current offset.
    pub fn error(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError::new(kind, self.section, self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(self.error(DecodeErrorKind::Truncated {
                needed: n,
                available: self.remaining(),
            }));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// `u32`, little-endian.
    pub fn u32_le(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// `u64`, little-endian.
    pub fn u64_le(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `f32`, little-endian.
    pub fn f32_le(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume and verify a 4-byte magic header.
    pub fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<(), DecodeError> {
        let at = self.pos;
        let got = self.take(4)?;
        if got != magic {
            return Err(DecodeError::new(DecodeErrorKind::BadMagic, self.section, at));
        }
        Ok(())
    }

    /// Consume a version byte and require it to equal `supported`.
    pub fn expect_version(&mut self, supported: u8) -> Result<(), DecodeError> {
        let at = self.pos;
        let v = self.u8()?;
        if v != supported {
            return Err(DecodeError::new(
                DecodeErrorKind::BadVersion(v),
                self.section,
                at,
            ));
        }
        Ok(())
    }

    /// A `u64` element count, validated so `count * bytes_per_item` fits in
    /// the bytes remaining. Rejecting oversized counts *before* allocating
    /// is what keeps a corrupt length byte from becoming an OOM.
    pub fn count(&mut self, bytes_per_item: usize) -> Result<usize, DecodeError> {
        let at = self.pos;
        let n = self.u64_le()?;
        let per = bytes_per_item.max(1) as u64;
        if n > (self.remaining() as u64) / per {
            return Err(DecodeError::new(
                DecodeErrorKind::Truncated {
                    needed: usize::try_from(n.saturating_mul(per)).unwrap_or(usize::MAX),
                    available: self.remaining(),
                },
                self.section,
                at,
            ));
        }
        Ok(n as usize)
    }

    /// Like [`Self::count`] but for `u32` prefixes.
    pub fn count_u32(&mut self, bytes_per_item: usize) -> Result<usize, DecodeError> {
        let at = self.pos;
        let n = self.u32_le()? as u64;
        let per = bytes_per_item.max(1) as u64;
        if n > (self.remaining() as u64) / per {
            return Err(DecodeError::new(
                DecodeErrorKind::Truncated {
                    needed: usize::try_from(n.saturating_mul(per)).unwrap_or(usize::MAX),
                    available: self.remaining(),
                },
                self.section,
                at,
            ));
        }
        Ok(n as usize)
    }

    /// String with a `u32` byte-length prefix.
    pub fn str_prefixed(&mut self) -> Result<String, DecodeError> {
        let n = self.count_u32(1)?;
        let at = self.pos;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DecodeError::new(DecodeErrorKind::BadUtf8, self.section, at))
    }

    /// `f32` vector with a `u64` element-count prefix.
    pub fn f32s(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32_le()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_strings() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        w.put_str("héllo");
        w.put_f32s(&[0.0, -2.25, 3.0]);
        let bytes = w.into_vec();

        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64_le().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32_le().unwrap(), 1.5);
        assert_eq!(r.str_prefixed().unwrap(), "héllo");
        assert_eq!(r.f32s().unwrap(), vec![0.0, -2.25, 3.0]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_reports_section_and_offset() {
        let mut w = Writer::new();
        w.put_u32_le(1);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes, "VECS");
        r.u8().unwrap();
        let err = r.u64_le().unwrap_err();
        assert_eq!(err.section, "VECS");
        assert_eq!(err.offset, 1);
        assert_eq!(
            err.kind,
            DecodeErrorKind::Truncated {
                needed: 8,
                available: 3
            }
        );
    }

    #[test]
    fn oversized_count_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u64_le(u64::MAX); // claims ~1.8e19 elements
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes, "test");
        let err = r.f32s().unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Truncated { .. }));
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn bad_utf8_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_u32_le(2);
        w.put_slice(&[0xFF, 0xFE]);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.str_prefixed().unwrap_err().kind, DecodeErrorKind::BadUtf8);
    }

    #[test]
    fn magic_and_version_checks() {
        let mut w = Writer::new();
        w.put_slice(b"DJXX");
        w.put_u8(9);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes, "file");
        assert_eq!(
            r.clone().expect_magic(b"DJM1").unwrap_err().kind,
            DecodeErrorKind::BadMagic
        );
        r.expect_magic(b"DJXX").unwrap();
        assert_eq!(
            r.expect_version(1).unwrap_err().kind,
            DecodeErrorKind::BadVersion(9)
        );
    }
}
