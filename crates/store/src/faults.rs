//! Fault injection for the artifact layer.
//!
//! [`MemIo`] is an in-memory [`ArtifactIo`] and [`FaultyIo`] wraps any
//! implementation to inject the storage failure modes that matter for
//! snapshot durability:
//!
//! * **torn write** — a crash mid-write persists only a prefix;
//! * **read truncation** — the artifact comes back shorter than written
//!   (partial copy, truncated download);
//! * **bit flip** — silent storage decay flips bits in place;
//! * **ENOSPC** — the device fills up mid-write.
//!
//! The injectors are ordinary code (not `cfg(test)`), so downstream crates'
//! tests — and their integration suites — can drive the real load paths
//! through them. The invariant every consumer test asserts: an injected
//! fault yields a structured error or a degraded-but-serving artifact,
//! never a panic and never silently wrong data.
//!
//! [`KillPointIo`] is the complement for *crash* safety: instead of a
//! damaged artifact, it models the process dying at a chosen mutation
//! boundary (before, torn mid-append, or after an op), so recovery paths
//! can be proven to serve exactly the committed prefix at every point.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::io::ArtifactIo;

/// In-memory artifact storage for tests.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
}

impl MemIo {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArtifactIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such artifact"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .entry(path.to_path_buf())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.files.lock().unwrap().remove(path);
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = self
            .files
            .lock()
            .unwrap()
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }
}

/// A storage fault to inject on the next matching operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The next write persists only the first `keep` bytes (simulated crash
    /// between write and rename on a non-atomic store).
    TornWrite {
        /// Bytes that make it to storage.
        keep: usize,
    },
    /// The next read returns only the first `at` bytes.
    TruncateRead {
        /// Length of the returned prefix.
        at: usize,
    },
    /// The next read flips one bit in place.
    BitFlip {
        /// Byte offset of the flip (clamped to the artifact length).
        offset: usize,
        /// Bit index within the byte, `0..8`.
        bit: u8,
    },
    /// The next write fails with `ENOSPC` after persisting nothing.
    Enospc,
    /// The next read fails with an I/O error.
    ReadError,
}

/// Wraps an [`ArtifactIo`], injecting queued faults front-to-back: each
/// read consumes the next read-class fault, each write the next
/// write-class fault. With an empty queue it is transparent.
pub struct FaultyIo<I> {
    inner: I,
    queue: Mutex<Vec<Fault>>,
}

impl<I: ArtifactIo> FaultyIo<I> {
    /// Wrap `inner` with an empty fault queue.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Queue `fault` for the next matching operation.
    pub fn inject(&self, fault: Fault) {
        self.queue.lock().unwrap().push(fault);
    }

    /// Access the wrapped implementation (e.g. to inspect ground truth).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn pop_matching(&self, read_side: bool) -> Option<Fault> {
        let mut q = self.queue.lock().unwrap();
        let idx = q.iter().position(|f| {
            matches!(
                (read_side, f),
                (true, Fault::TruncateRead { .. } | Fault::BitFlip { .. } | Fault::ReadError)
                    | (false, Fault::TornWrite { .. } | Fault::Enospc)
            )
        })?;
        Some(q.remove(idx))
    }
}

impl<I: ArtifactIo> ArtifactIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        match self.pop_matching(true) {
            Some(Fault::TruncateRead { at }) => {
                bytes.truncate(at);
                Ok(bytes)
            }
            Some(Fault::BitFlip { offset, bit }) => {
                if !bytes.is_empty() {
                    let i = offset.min(bytes.len() - 1);
                    bytes[i] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            Some(Fault::ReadError) => Err(io::Error::other("injected read failure")),
            _ => Ok(bytes),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.pop_matching(false) {
            Some(Fault::TornWrite { keep }) => {
                // A torn write bypasses the atomic protocol by definition:
                // it models a store (or a crash window) without it.
                let cut = keep.min(bytes.len());
                self.inner.write_atomic(path, &bytes[..cut])
            }
            Some(Fault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.write_atomic(path, bytes),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.pop_matching(false) {
            Some(Fault::TornWrite { keep }) => {
                let cut = keep.min(bytes.len());
                self.inner.append(path, &bytes[..cut])
            }
            Some(Fault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.append(path, bytes),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }
}

/// Deterministic crash injection: every state-mutating operation exposes
/// one or more *kill points*, and the wrapper "kills the process" at a
/// chosen point — the operation persists exactly the bytes a real SIGKILL
/// at that boundary would leave behind (nothing, a torn prefix, or
/// everything), then fails, and every subsequent operation fails too.
///
/// The harness pattern: run the workload once with `kill_at = None` to
/// count the points, then once per point, recovering from
/// [`KillPointIo::inner`] after each induced crash and asserting the
/// recovered state serves exactly the committed prefix.
///
/// Kill points per operation, in order:
/// * `write_atomic` — before (old content survives), after (new content
///   persisted, ack lost);
/// * `append` — before, torn at 1 byte, torn at the midpoint, torn one
///   byte short, after (degenerate cuts are deduplicated);
/// * `remove` — before, after.
///
/// Reads never kill: a crash during a read mutates nothing.
pub struct KillPointIo<I> {
    inner: I,
    next_point: Mutex<usize>,
    kill_at: Option<usize>,
    dead: Mutex<bool>,
}

impl<I: ArtifactIo> KillPointIo<I> {
    /// Wrap `inner`, crashing at kill point `kill_at` (`None` = count only).
    pub fn new(inner: I, kill_at: Option<usize>) -> Self {
        Self {
            inner,
            next_point: Mutex::new(0),
            kill_at,
            dead: Mutex::new(false),
        }
    }

    /// Number of kill points passed so far (the total after a clean run).
    pub fn points_used(&self) -> usize {
        *self.next_point.lock().unwrap()
    }

    /// True once the injected crash has fired.
    pub fn crashed(&self) -> bool {
        *self.dead.lock().unwrap()
    }

    /// The wrapped store — the "disk" that survives the crash.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn killed() -> io::Error {
        io::Error::other("injected crash (kill point)")
    }

    /// Advance one kill point; `Err` means the process just died here.
    fn step(&self) -> io::Result<()> {
        if *self.dead.lock().unwrap() {
            return Err(Self::killed());
        }
        let mut n = self.next_point.lock().unwrap();
        let here = *n;
        *n += 1;
        drop(n);
        if self.kill_at == Some(here) {
            *self.dead.lock().unwrap() = true;
            return Err(Self::killed());
        }
        Ok(())
    }

    /// The torn-prefix cut lengths an `append` of `len` bytes exposes.
    fn torn_cuts(len: usize) -> Vec<usize> {
        let mut cuts: Vec<usize> = [1, len / 2, len.saturating_sub(1)]
            .into_iter()
            .filter(|&c| c > 0 && c < len)
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts
    }
}

impl<I: ArtifactIo> ArtifactIo for KillPointIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if *self.dead.lock().unwrap() {
            return Err(Self::killed());
        }
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.step()?; // before: the old artifact survives untouched
        self.inner.write_atomic(path, bytes)?;
        self.step() // after: new content is durable, the ack is lost
    }

    fn exists(&self, path: &Path) -> bool {
        !*self.dead.lock().unwrap() && self.inner.exists(path)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.step()?; // before: nothing appended
        for cut in Self::torn_cuts(bytes.len()) {
            if let Err(e) = self.step() {
                // Torn: a prefix of this append reached the disk.
                self.inner.append(path, &bytes[..cut])?;
                return Err(e);
            }
        }
        self.inner.append(path, bytes)?;
        self.step() // after: the full record is durable, the ack is lost
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.step()?; // before: the artifact survives
        self.inner.remove(path)?;
        self.step() // after: the unlink is durable
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        if *self.dead.lock().unwrap() {
            return Err(Self::killed());
        }
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Container, ContainerBuilder};

    fn path() -> PathBuf {
        PathBuf::from("mem://artifact")
    }

    fn io_with(content: &[u8]) -> FaultyIo<MemIo> {
        let io = FaultyIo::new(MemIo::new());
        io.write_atomic(&path(), content).unwrap();
        io
    }

    #[test]
    fn transparent_without_faults() {
        let io = io_with(b"abc");
        assert_eq!(io.read(&path()).unwrap(), b"abc");
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let io = io_with(b"old");
        io.inject(Fault::TornWrite { keep: 4 });
        io.write_atomic(&path(), b"new-content").unwrap();
        assert_eq!(io.read(&path()).unwrap(), b"new-");
    }

    #[test]
    fn enospc_fails_write_and_preserves_old_content() {
        let io = io_with(b"old");
        io.inject(Fault::Enospc);
        let err = io.write_atomic(&path(), b"new").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(io.read(&path()).unwrap(), b"old");
    }

    #[test]
    fn bit_flip_and_truncation_are_detected_by_the_container() {
        let artifact = ContainerBuilder::new()
            .section(*b"DATA", (0u8..200).collect())
            .build();

        let io = io_with(&artifact);
        io.inject(Fault::BitFlip { offset: artifact.len() - 5, bit: 3 });
        let flipped = io.read(&path()).unwrap();
        let c = Container::parse(&flipped).unwrap();
        assert!(c.section(*b"DATA", "DATA").unwrap().is_err());

        io.inject(Fault::TruncateRead { at: artifact.len() / 2 });
        let cut = io.read(&path()).unwrap();
        assert!(Container::parse(&cut).is_err());
    }

    #[test]
    fn faults_queue_in_order() {
        let io = io_with(b"0123456789");
        io.inject(Fault::TruncateRead { at: 2 });
        io.inject(Fault::ReadError);
        assert_eq!(io.read(&path()).unwrap(), b"01");
        assert!(io.read(&path()).is_err());
        assert_eq!(io.read(&path()).unwrap(), b"0123456789");
    }

    #[test]
    fn torn_append_keeps_existing_bytes_plus_prefix() {
        let io = io_with(b"base");
        io.inject(Fault::TornWrite { keep: 2 });
        io.append(&path(), b"xyz").unwrap();
        assert_eq!(io.read(&path()).unwrap(), b"basexy");
        io.append(&path(), b"!").unwrap();
        assert_eq!(io.read(&path()).unwrap(), b"basexy!");
    }

    #[test]
    fn kill_point_counting_run_is_transparent() {
        let io = KillPointIo::new(MemIo::new(), None);
        io.write_atomic(&path(), b"v1").unwrap();
        io.append(&path(), b"-longer-tail").unwrap();
        io.remove(&path()).unwrap();
        assert!(!io.crashed());
        // write 2 + append (before + 3 torn cuts + after) + remove 2.
        assert_eq!(io.points_used(), 2 + 5 + 2);
    }

    #[test]
    fn every_kill_point_leaves_a_committed_prefix_or_torn_tail() {
        // Workload: atomic header write, then two appends. Enumerate every
        // kill point and check the surviving bytes are always `header` plus
        // a (possibly torn) prefix of the appended stream.
        let total = {
            let io = KillPointIo::new(MemIo::new(), None);
            io.write_atomic(&path(), b"HDR!").unwrap();
            io.append(&path(), b"aaaa").unwrap();
            io.append(&path(), b"bbbb").unwrap();
            io.points_used()
        };
        for kill in 0..total {
            let io = KillPointIo::new(MemIo::new(), Some(kill));
            let res = (|| {
                io.write_atomic(&path(), b"HDR!")?;
                io.append(&path(), b"aaaa")?;
                io.append(&path(), b"bbbb")
            })();
            assert!(res.is_err(), "kill point {kill} must abort the workload");
            assert!(io.crashed());
            // Once dead, everything fails — the process is gone.
            assert!(io.read(&path()).is_err());
            let survived = io.inner().read(&path()).unwrap_or_default();
            let full = b"HDR!aaaabbbb";
            assert!(
                full.starts_with(&survived),
                "kill point {kill}: survived bytes {survived:?} are not a prefix"
            );
        }
    }
}
