//! Fault injection for the artifact layer.
//!
//! [`MemIo`] is an in-memory [`ArtifactIo`] and [`FaultyIo`] wraps any
//! implementation to inject the storage failure modes that matter for
//! snapshot durability:
//!
//! * **torn write** — a crash mid-write persists only a prefix;
//! * **read truncation** — the artifact comes back shorter than written
//!   (partial copy, truncated download);
//! * **bit flip** — silent storage decay flips bits in place;
//! * **ENOSPC** — the device fills up mid-write.
//!
//! The injectors are ordinary code (not `cfg(test)`), so downstream crates'
//! tests — and their integration suites — can drive the real load paths
//! through them. The invariant every consumer test asserts: an injected
//! fault yields a structured error or a degraded-but-serving artifact,
//! never a panic and never silently wrong data.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::io::ArtifactIo;

/// In-memory artifact storage for tests.
#[derive(Debug, Default)]
pub struct MemIo {
    files: Mutex<HashMap<PathBuf, Vec<u8>>>,
}

impl MemIo {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArtifactIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such artifact"))
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.lock().unwrap().contains_key(path)
    }
}

/// A storage fault to inject on the next matching operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// The next write persists only the first `keep` bytes (simulated crash
    /// between write and rename on a non-atomic store).
    TornWrite {
        /// Bytes that make it to storage.
        keep: usize,
    },
    /// The next read returns only the first `at` bytes.
    TruncateRead {
        /// Length of the returned prefix.
        at: usize,
    },
    /// The next read flips one bit in place.
    BitFlip {
        /// Byte offset of the flip (clamped to the artifact length).
        offset: usize,
        /// Bit index within the byte, `0..8`.
        bit: u8,
    },
    /// The next write fails with `ENOSPC` after persisting nothing.
    Enospc,
    /// The next read fails with an I/O error.
    ReadError,
}

/// Wraps an [`ArtifactIo`], injecting queued faults front-to-back: each
/// read consumes the next read-class fault, each write the next
/// write-class fault. With an empty queue it is transparent.
pub struct FaultyIo<I> {
    inner: I,
    queue: Mutex<Vec<Fault>>,
}

impl<I: ArtifactIo> FaultyIo<I> {
    /// Wrap `inner` with an empty fault queue.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Queue `fault` for the next matching operation.
    pub fn inject(&self, fault: Fault) {
        self.queue.lock().unwrap().push(fault);
    }

    /// Access the wrapped implementation (e.g. to inspect ground truth).
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn pop_matching(&self, read_side: bool) -> Option<Fault> {
        let mut q = self.queue.lock().unwrap();
        let idx = q.iter().position(|f| {
            matches!(
                (read_side, f),
                (true, Fault::TruncateRead { .. } | Fault::BitFlip { .. } | Fault::ReadError)
                    | (false, Fault::TornWrite { .. } | Fault::Enospc)
            )
        })?;
        Some(q.remove(idx))
    }
}

impl<I: ArtifactIo> ArtifactIo for FaultyIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        match self.pop_matching(true) {
            Some(Fault::TruncateRead { at }) => {
                bytes.truncate(at);
                Ok(bytes)
            }
            Some(Fault::BitFlip { offset, bit }) => {
                if !bytes.is_empty() {
                    let i = offset.min(bytes.len() - 1);
                    bytes[i] ^= 1 << (bit % 8);
                }
                Ok(bytes)
            }
            Some(Fault::ReadError) => Err(io::Error::other("injected read failure")),
            _ => Ok(bytes),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.pop_matching(false) {
            Some(Fault::TornWrite { keep }) => {
                // A torn write bypasses the atomic protocol by definition:
                // it models a store (or a crash window) without it.
                let cut = keep.min(bytes.len());
                self.inner.write_atomic(path, &bytes[..cut])
            }
            Some(Fault::Enospc) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.write_atomic(path, bytes),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{Container, ContainerBuilder};

    fn path() -> PathBuf {
        PathBuf::from("mem://artifact")
    }

    fn io_with(content: &[u8]) -> FaultyIo<MemIo> {
        let io = FaultyIo::new(MemIo::new());
        io.write_atomic(&path(), content).unwrap();
        io
    }

    #[test]
    fn transparent_without_faults() {
        let io = io_with(b"abc");
        assert_eq!(io.read(&path()).unwrap(), b"abc");
    }

    #[test]
    fn torn_write_keeps_prefix() {
        let io = io_with(b"old");
        io.inject(Fault::TornWrite { keep: 4 });
        io.write_atomic(&path(), b"new-content").unwrap();
        assert_eq!(io.read(&path()).unwrap(), b"new-");
    }

    #[test]
    fn enospc_fails_write_and_preserves_old_content() {
        let io = io_with(b"old");
        io.inject(Fault::Enospc);
        let err = io.write_atomic(&path(), b"new").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(io.read(&path()).unwrap(), b"old");
    }

    #[test]
    fn bit_flip_and_truncation_are_detected_by_the_container() {
        let artifact = ContainerBuilder::new()
            .section(*b"DATA", (0u8..200).collect())
            .build();

        let io = io_with(&artifact);
        io.inject(Fault::BitFlip { offset: artifact.len() - 5, bit: 3 });
        let flipped = io.read(&path()).unwrap();
        let c = Container::parse(&flipped).unwrap();
        assert!(c.section(*b"DATA", "DATA").unwrap().is_err());

        io.inject(Fault::TruncateRead { at: artifact.len() / 2 });
        let cut = io.read(&path()).unwrap();
        assert!(Container::parse(&cut).is_err());
    }

    #[test]
    fn faults_queue_in_order() {
        let io = io_with(b"0123456789");
        io.inject(Fault::TruncateRead { at: 2 });
        io.inject(Fault::ReadError);
        assert_eq!(io.read(&path()).unwrap(), b"01");
        assert!(io.read(&path()).is_err());
        assert_eq!(io.read(&path()).unwrap(), b"0123456789");
    }
}
