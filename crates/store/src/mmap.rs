//! Read-only memory mapping of artifact files — the zero-copy backing for
//! DJAR v2 sections (DESIGN.md §14).
//!
//! [`Mmap::open`] maps a whole file `PROT_READ`/`MAP_PRIVATE` via raw
//! `mmap(2)` through `extern "C"` declarations — the same zero-dependency
//! route the serve crate takes for `signal(2)`; no libc crate. The mapping
//! base is page-aligned (4096 on every supported platform), so any payload
//! placed at a 64-byte-aligned *file* offset is 64-byte-aligned in
//! *memory* — the property the v2 aligned container layout exists to
//! provide, and what lets `f32`/`u32` planes be reinterpreted in place.
//!
//! The pages are demand-paged from the kernel page cache: opening a 100 GB
//! artifact costs a metadata syscall, not a read, and N serving processes
//! mapping the same snapshot share one physical copy. Dropping the `Mmap`
//! unmaps. The struct is `Send + Sync` (the memory is never written).
//!
//! A mapped file being truncated by another process would turn reads past
//! the new EOF into `SIGBUS`; the stack never rewrites an artifact in
//! place (every writer goes through temp + atomic rename), so a mapping
//! always covers an immutable inode.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A read-only memory-mapped file.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is PROT_READ and owned for the struct's lifetime: shared
// references to immutable memory are safe across threads.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

#[cfg(unix)]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
}

impl Mmap {
    /// Map `path` read-only in its entirety.
    ///
    /// A zero-length file yields a valid empty mapping (no `mmap(2)` call —
    /// the kernel rejects zero-length maps). Errors carry the usual
    /// `io::Error` OS context.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file exceeds address space"))?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            });
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        // `file` closes here; the mapping keeps the inode's pages alive.
        Ok(Self { ptr, len })
    }

    /// Portable fallback: read the file into an anonymous heap buffer.
    /// Same API and lifetime semantics, none of the sharing benefits.
    #[cfg(not(unix))]
    pub fn open(path: &Path) -> io::Result<Self> {
        let bytes = std::fs::read(path)?.into_boxed_slice();
        let len = bytes.len();
        let ptr = Box::into_raw(bytes) as *mut u8;
        Ok(Self { ptr, len })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Safety: ptr/len describe a live PROT_READ mapping (or a dangling
        // pointer with len 0, which from_raw_parts permits).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        #[cfg(unix)]
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
        #[cfg(not(unix))]
        unsafe {
            drop(Box::from_raw(std::slice::from_raw_parts_mut(self.ptr, self.len)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("djmmap-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("contents");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &data).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.len(), data.len());
        assert_eq!(&*map, &data[..]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_as_empty_slice() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let map = Mmap::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, &[] as &[u8]);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mmap::open(Path::new("/nonexistent/deepjoin-nope.djar")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn mapping_base_is_page_aligned() {
        let path = temp_path("aligned");
        std::fs::write(&path, vec![7u8; 4096 * 3 + 17]).unwrap();
        let map = Mmap::open(&path).unwrap();
        assert_eq!(map.as_ref().as_ptr() as usize % 4096, 0);
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        std::fs::write(&path, vec![3u8; 1 << 16]).unwrap();
        let map = std::sync::Arc::new(Mmap::open(&path).unwrap());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = map.clone();
            handles.push(std::thread::spawn(move || {
                m.iter().map(|&b| b as u64).sum::<u64>()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 3 * (1u64 << 16));
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    // --- fault paths for mapped v2 containers (DESIGN.md §14) ---

    fn aligned_artifact() -> Vec<u8> {
        use crate::container::ContainerBuilder;
        let a: Vec<u8> = (0..300u32).flat_map(|i| i.to_le_bytes()).collect();
        let b: Vec<u8> = (0..150u32).map(|i| (i % 256) as u8).collect();
        ContainerBuilder::aligned()
            .section(*b"VECS", a)
            .section(*b"HNSW", b)
            .build()
    }

    #[test]
    fn truncated_file_mid_section_errors_cleanly_through_a_mapping() {
        use crate::container::Container;
        let good = aligned_artifact();
        let path = temp_path("trunc");
        for cut in (0..good.len()).step_by(7).chain([good.len() - 1]) {
            std::fs::write(&path, &good[..cut]).unwrap();
            let map = Mmap::open(&path).unwrap();
            // Parse and every section read must return a structured error
            // or validated bytes — never panic, never fault.
            if let Ok(c) = Container::parse(&map) {
                for name in [*b"VECS", *b"HNSW"] {
                    if let Some(Ok(payload)) = c.section(name, "sect") {
                        let _ = payload.len();
                    }
                }
            }
        }
        // The untruncated file still round-trips through the mapping.
        std::fs::write(&path, &good).unwrap();
        let map = Mmap::open(&path).unwrap();
        let c = Container::parse(&map).unwrap();
        assert!(c.section(*b"VECS", "VECS").unwrap().is_ok());
        assert!(c.section(*b"HNSW", "HNSW").unwrap().is_ok());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_under_an_open_mapping_is_caught_on_the_next_open() {
        use crate::container::Container;
        let good = aligned_artifact();
        let path = temp_path("flip");
        std::fs::write(&path, &good).unwrap();

        // An open mapping pins the artifact while it is corrupted on disk
        // (in production every writer goes through rename, so this models
        // silent storage decay, not a writer). The mapping itself stays
        // readable — the length never changed, so no fault is possible —
        // and a *fresh* open re-validates and rejects the damaged section.
        let held = Mmap::open(&path).unwrap();
        let payload_mid = {
            let c = Container::parse(&held).unwrap();
            let r = c.section_range(*b"VECS", "VECS").unwrap().unwrap();
            r.offset + r.len / 2
        };
        let mut bad = good.clone();
        bad[payload_mid] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();

        let _pinned_sum: u64 = held.iter().map(|&b| b as u64).sum();

        let fresh = Mmap::open(&path).unwrap();
        let c = Container::parse(&fresh).unwrap();
        assert!(
            c.section(*b"VECS", "VECS").unwrap().is_err(),
            "flipped payload byte must fail the section CRC"
        );
        // The undamaged trailing section still reads.
        assert!(c.section(*b"HNSW", "HNSW").unwrap().is_ok());
        drop((held, fresh));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_v1_containers_are_not_mistaken_for_mappable_v2() {
        use crate::container::{is_aligned_container, ContainerBuilder};
        let v1 = ContainerBuilder::new().section(*b"VECS", vec![1, 2, 3]).build();
        let path = temp_path("v1gate");
        std::fs::write(&path, &v1).unwrap();
        let map = Mmap::open(&path).unwrap();
        // The v2 reader's gate: a legacy artifact maps fine but is routed
        // to the heap decode path, never reinterpreted in place.
        assert!(!is_aligned_container(&map));
        assert!(is_aligned_container(&aligned_artifact()));
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
