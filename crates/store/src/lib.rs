//! # deepjoin-store
//!
//! The durable artifact layer of the DeepJoin stack. The offline half of the
//! system (fine-tune + index) hands the online half (ANN serving) its state
//! exclusively through on-disk snapshots — lake corpora, trained models,
//! HNSW indexes — so those snapshots are the contract between the two
//! halves, and this crate is what makes the contract trustworthy:
//!
//! * [`codec`] — the little-endian binary codec every payload uses, with a
//!   [`codec::Reader`] that attributes each failure to a section and byte
//!   offset, and validates length prefixes before allocating;
//! * [`container`] — the framed `DJAR` container: named sections with
//!   byte-length framing and per-section CRC-32, so loaders can tell *which
//!   part* of an artifact is damaged and degrade instead of refusing;
//! * [`crc32`] — the checksum (IEEE 802.3);
//! * [`io`] — [`io::ArtifactIo`] and the crash-safe [`io::StdIo`]
//!   (temp file + fsync + atomic rename);
//! * [`mmap`] — read-only `mmap(2)` of artifact files (raw `extern "C"`,
//!   no libc crate): the zero-copy backing for v2 aligned sections;
//! * [`faults`] — injection of torn writes, read truncation, bit flips,
//!   ENOSPC, and deterministic crash (kill) points, so every load and
//!   recovery path can be proven panic-free under corruption;
//! * [`wal`] — the `DJWL` write-ahead journal live lake mutations are
//!   logged through before touching memory, with committed-prefix replay.

#![warn(missing_docs)]

pub mod codec;
pub mod container;
pub mod crc32;
pub mod faults;
pub mod io;
pub mod mmap;
pub mod wal;

pub use codec::{DecodeError, DecodeErrorKind, Reader, Writer};
pub use container::{
    is_aligned_container, is_container, Container, ContainerBuilder, SectionRange, SECTION_ALIGN,
};
pub use crc32::crc32;
pub use mmap::Mmap;
pub use faults::{Fault, FaultyIo, KillPointIo, MemIo};
pub use io::{ArtifactIo, SharedIo, StdIo};
pub use wal::{Wal, WalOpen, WalRecord};
