//! The framed artifact container (`DJAR`): named sections, each with
//! byte-length framing and a CRC-32 over its payload.
//!
//! Two wire versions share the magic (all integers little-endian):
//!
//! **v1 (compact)** — `ContainerBuilder::new()`:
//!
//! ```text
//! "DJAR" | version=1 u8 | section_count u32 | directory_crc32 u32
//! then per section:
//!   name [u8;4] | payload_len u64 | crc32 u32 | payload bytes
//! ```
//!
//! **v2 (aligned)** — `ContainerBuilder::aligned()`, the mmap-able layout
//! (DESIGN.md §14):
//!
//! ```text
//! "DJAR" | version=2 u8 | section_count u32 | directory_crc32 u32
//! then per section:
//!   name [u8;4] | payload_len u64 | crc32 u32 | pad_len u32
//!   | zero pad (pad_len bytes) | payload bytes
//! ```
//!
//! In v2 each payload begins at a file offset that is a multiple of
//! [`SECTION_ALIGN`] (64). `pad_len` is *derived*, not free: it must equal
//! exactly the distance from the end of the frame header to the next
//! 64-byte boundary, and [`Container::parse`] re-derives and checks it, so
//! a flipped pad byte is structural corruption, never a silent shift.
//! Because `mmap(2)` bases are page-aligned and 4096 ≡ 0 (mod 64), a
//! 64-byte-aligned file offset is a 64-byte-aligned address in a mapping —
//! which is what lets `f32`/`u32` planes be reinterpreted in place with no
//! decode pass ([`Container::section_range`] + `deepjoin_store::Mmap`).
//!
//! `directory_crc32` covers the concatenated `(name, payload_len)` frame
//! headers (plus `pad_len` in v2). Without it, a single flipped bit in a
//! section *name* would make that section silently vanish — a loader could
//! then mistake "the index section is damaged" for "this artifact was
//! saved without an index" and degrade without ever reporting it. The
//! per-section payload CRCs are deliberately *not* covered: a damaged
//! checksum field is equivalent to a damaged payload and should degrade
//! only its own section.
//!
//! Parsing is two-phase by design. [`Container::parse`] validates the
//! *framing* only — magic, version, directory integrity, and that every
//! declared frame fits in the file — so a torn write or truncation surfaces
//! as a structural [`DecodeError`] naming the section it cut into. Payload
//! *integrity* is checked per section by [`Container::section`], which lets
//! a loader treat a corrupt optional section (a damaged index) differently
//! from a corrupt mandatory one (the model weights): graceful degradation
//! instead of all-or-nothing loading.

use crate::codec::{DecodeError, DecodeErrorKind, Reader, Writer};
use crate::crc32::crc32;

/// Container magic bytes.
pub const CONTAINER_MAGIC: &[u8; 4] = b"DJAR";
/// Compact container format version.
pub const CONTAINER_VERSION: u8 = 1;
/// Aligned (mmap-able) container format version.
pub const CONTAINER_VERSION_ALIGNED: u8 = 2;
/// Payload alignment guaranteed by the v2 layout, in bytes. 64 covers
/// every plane element type in the stack (f32, u32, u64) with headroom
/// for cache-line-aligned SIMD loads.
pub const SECTION_ALIGN: usize = 64;

/// Fixed per-section frame overhead in v1: name + length + checksum.
const FRAME_HEADER: usize = 4 + 8 + 4;
/// v2 adds the `pad_len` field.
const FRAME_HEADER_V2: usize = FRAME_HEADER + 4;

/// True when `bytes` look like a framed container (magic sniff only).
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == CONTAINER_MAGIC
}

/// True when `bytes` look like an *aligned* (v2) container — the layout
/// whose sections can be mapped zero-copy. Sniff only; parse to be sure.
pub fn is_aligned_container(bytes: &[u8]) -> bool {
    bytes.len() >= 5 && &bytes[..4] == CONTAINER_MAGIC && bytes[4] == CONTAINER_VERSION_ALIGNED
}

/// Builds a container by appending named sections.
#[derive(Debug, Default)]
pub struct ContainerBuilder {
    sections: Vec<([u8; 4], Vec<u8>)>,
    aligned: bool,
}

impl ContainerBuilder {
    /// Empty builder for the compact (v1) layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty builder for the aligned (v2) layout: every payload starts on
    /// a [`SECTION_ALIGN`]-byte file offset so it can be mapped zero-copy.
    pub fn aligned() -> Self {
        Self {
            sections: Vec::new(),
            aligned: true,
        }
    }

    /// Append a section. Names are 4 ASCII bytes by convention (`b"MODL"`);
    /// duplicate names are allowed but only the first is addressable.
    pub fn section(mut self, name: [u8; 4], payload: Vec<u8>) -> Self {
        self.sections.push((name, payload));
        self
    }

    /// Serialize the container.
    pub fn build(self) -> Vec<u8> {
        if self.aligned {
            return self.build_aligned();
        }
        let total: usize = self
            .sections
            .iter()
            .map(|(_, p)| FRAME_HEADER + p.len())
            .sum();
        let mut w = Writer::with_capacity(4 + 1 + 4 + 4 + total);
        w.put_slice(CONTAINER_MAGIC);
        w.put_u8(CONTAINER_VERSION);
        w.put_u32_le(self.sections.len() as u32);
        w.put_u32_le(crc32(&directory_bytes(
            self.sections.iter().map(|(n, p)| (*n, p.len())),
        )));
        for (name, payload) in &self.sections {
            w.put_slice(name);
            w.put_u64_le(payload.len() as u64);
            w.put_u32_le(crc32(payload));
            w.put_slice(payload);
        }
        w.into_vec()
    }

    fn build_aligned(self) -> Vec<u8> {
        // Lay frames out once to learn every pad, since the directory CRC
        // covers them.
        let mut offset = 4 + 1 + 4 + 4; // magic + version + count + dir crc
        let mut pads = Vec::with_capacity(self.sections.len());
        for (_, payload) in &self.sections {
            let header_end = offset + FRAME_HEADER_V2;
            let pad = pad_to(header_end, SECTION_ALIGN);
            pads.push(pad as u32);
            offset = header_end + pad + payload.len();
        }
        let mut w = Writer::with_capacity(offset);
        w.put_slice(CONTAINER_MAGIC);
        w.put_u8(CONTAINER_VERSION_ALIGNED);
        w.put_u32_le(self.sections.len() as u32);
        w.put_u32_le(crc32(&directory_bytes_v2(
            self.sections
                .iter()
                .zip(&pads)
                .map(|((n, p), &pad)| (*n, p.len(), pad)),
        )));
        for ((name, payload), &pad) in self.sections.iter().zip(&pads) {
            w.put_slice(name);
            w.put_u64_le(payload.len() as u64);
            w.put_u32_le(crc32(payload));
            w.put_u32_le(pad);
            w.put_slice(&vec![0u8; pad as usize]);
            debug_assert_eq!(w.len() % SECTION_ALIGN, 0, "payload must start aligned");
            w.put_slice(payload);
        }
        w.into_vec()
    }
}

/// Zero-pad distance from `offset` up to the next multiple of `align`.
fn pad_to(offset: usize, align: usize) -> usize {
    (align - offset % align) % align
}

/// The byte string the v1 directory CRC covers: every frame's name and
/// payload length, in file order.
fn directory_bytes(frames: impl Iterator<Item = ([u8; 4], usize)>) -> Vec<u8> {
    let mut dir = Vec::new();
    for (name, len) in frames {
        dir.extend_from_slice(&name);
        dir.extend_from_slice(&(len as u64).to_le_bytes());
    }
    dir
}

/// The v2 directory CRC additionally covers each frame's pad length.
fn directory_bytes_v2(frames: impl Iterator<Item = ([u8; 4], usize, u32)>) -> Vec<u8> {
    let mut dir = Vec::new();
    for (name, len, pad) in frames {
        dir.extend_from_slice(&name);
        dir.extend_from_slice(&(len as u64).to_le_bytes());
        dir.extend_from_slice(&pad.to_le_bytes());
    }
    dir
}

/// One parsed (but not yet integrity-checked) section frame.
#[derive(Debug, Clone)]
struct Frame {
    name: [u8; 4],
    /// Payload position within the container bytes.
    start: usize,
    len: usize,
    stored_crc: u32,
    pad: u32,
}

/// The CRC-verified byte range of one section's payload within the
/// container file — the handle a zero-copy loader turns into typed slices
/// over an open mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionRange {
    /// Absolute byte offset of the payload within the container bytes.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// A parsed container over borrowed bytes.
#[derive(Debug)]
pub struct Container<'a> {
    bytes: &'a [u8],
    frames: Vec<Frame>,
    version: u8,
}

impl<'a> Container<'a> {
    /// Parse the framing of a v1 or v2 container. Fails (with
    /// section/offset context) if the magic, version, or any frame header
    /// is damaged, if a frame claims more bytes than the file holds — the
    /// signature of a torn write — or, in v2, if a pad length disagrees
    /// with the alignment rule.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes, "container");
        r.expect_magic(CONTAINER_MAGIC)?;
        let version = r.u8()?;
        if version != CONTAINER_VERSION && version != CONTAINER_VERSION_ALIGNED {
            return Err(DecodeError::new(
                DecodeErrorKind::BadVersion(version),
                "container",
                4,
            ));
        }
        let aligned = version == CONTAINER_VERSION_ALIGNED;
        let header = if aligned { FRAME_HEADER_V2 } else { FRAME_HEADER };
        let n = r.count_u32(header)?;
        let stored_dir_crc = r.u32_le()?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let name: [u8; 4] = r.bytes(4)?.try_into().unwrap();
            let len = r.count(1)?;
            let stored_crc = r.u32_le()?;
            let pad = if aligned {
                let at = r.offset();
                let pad = r.u32_le()?;
                // pad is fully determined by the header-end offset; any
                // other value is corruption, not a layout choice.
                let want = pad_to(r.offset(), SECTION_ALIGN);
                if pad as usize != want {
                    return Err(DecodeError::new(
                        DecodeErrorKind::Invalid("section pad disagrees with alignment rule"),
                        "container",
                        at,
                    ));
                }
                r.bytes(pad as usize)?;
                pad
            } else {
                0
            };
            let start = r.offset();
            r.bytes(len)?;
            frames.push(Frame {
                name,
                start,
                len,
                stored_crc,
                pad,
            });
        }
        let computed = if aligned {
            crc32(&directory_bytes_v2(
                frames.iter().map(|f| (f.name, f.len, f.pad)),
            ))
        } else {
            crc32(&directory_bytes(frames.iter().map(|f| (f.name, f.len))))
        };
        if computed != stored_dir_crc {
            return Err(DecodeError::new(
                DecodeErrorKind::ChecksumMismatch {
                    stored: stored_dir_crc,
                    computed,
                },
                "container",
                5,
            ));
        }
        Ok(Self {
            bytes,
            frames,
            version,
        })
    }

    /// Container format version (1 compact, 2 aligned).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// True for the aligned (v2) layout whose payloads start on
    /// [`SECTION_ALIGN`]-byte file offsets.
    pub fn is_aligned(&self) -> bool {
        self.version == CONTAINER_VERSION_ALIGNED
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<[u8; 4]> {
        self.frames.iter().map(|f| f.name).collect()
    }

    /// Whether a section named `name` exists (regardless of integrity).
    pub fn has_section(&self, name: [u8; 4]) -> bool {
        self.frames.iter().any(|f| f.name == name)
    }

    /// `(name, payload bytes)` for every section in file order, without
    /// checking payload integrity — for size reporting (`dj info`).
    pub fn section_sizes(&self) -> Vec<([u8; 4], usize)> {
        self.frames.iter().map(|f| (f.name, f.len)).collect()
    }

    /// Fetch a section's payload, verifying its checksum.
    ///
    /// * `None` — no such section.
    /// * `Some(Err(_))` — present but its payload fails the CRC; the error
    ///   carries the section name and `ChecksumMismatch` detail.
    /// * `Some(Ok(payload))` — intact.
    pub fn section(&self, name: [u8; 4], label: &'static str) -> Option<Result<&'a [u8], DecodeError>> {
        let f = self.frames.iter().find(|f| f.name == name)?;
        let payload = &self.bytes[f.start..f.start + f.len];
        let computed = crc32(payload);
        if computed != f.stored_crc {
            return Some(Err(DecodeError::new(
                DecodeErrorKind::ChecksumMismatch {
                    stored: f.stored_crc,
                    computed,
                },
                label,
                0,
            )));
        }
        Some(Ok(payload))
    }

    /// Like [`Container::section`], but returning the payload's byte
    /// *range* within the container instead of the slice — the zero-copy
    /// entry point: validate once against the parsed bytes, then carve the
    /// same range out of an `Arc<Mmap>` of the whole file. In the aligned
    /// layout the returned `offset` is a multiple of [`SECTION_ALIGN`].
    pub fn section_range(
        &self,
        name: [u8; 4],
        label: &'static str,
    ) -> Option<Result<SectionRange, DecodeError>> {
        let f = self.frames.iter().find(|f| f.name == name)?;
        Some(match self.section(name, label)? {
            Ok(_) => Ok(SectionRange {
                offset: f.start,
                len: f.len,
            }),
            Err(e) => Err(e),
        })
    }

    /// A section's payload range **without** re-computing its CRC. Only for
    /// reopening a file this process already fully verified and that is
    /// provably unchanged (same device/inode/mtime/size): skipping the CRC
    /// avoids paging the whole mapping back in, which is what makes a hot
    /// remap O(ms) instead of O(file size).
    pub fn section_range_trusted(&self, name: [u8; 4]) -> Option<SectionRange> {
        let f = self.frames.iter().find(|f| f.name == name)?;
        Some(SectionRange {
            offset: f.start,
            len: f.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        ContainerBuilder::new()
            .section(*b"MODL", vec![1, 2, 3, 4, 5])
            .section(*b"HNSW", vec![9; 100])
            .build()
    }

    fn sample_aligned() -> Vec<u8> {
        ContainerBuilder::aligned()
            .section(*b"MODL", vec![1, 2, 3, 4, 5])
            .section(*b"HNSW", vec![9; 100])
            .build()
    }

    #[test]
    fn roundtrip_sections() {
        let bytes = sample();
        assert!(is_container(&bytes));
        assert!(!is_aligned_container(&bytes));
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.version(), CONTAINER_VERSION);
        assert_eq!(c.section_names(), vec![*b"MODL", *b"HNSW"]);
        assert_eq!(
            c.section_sizes(),
            vec![(*b"MODL", 5), (*b"HNSW", 100)]
        );
        assert_eq!(c.section(*b"MODL", "MODL").unwrap().unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(c.section(*b"HNSW", "HNSW").unwrap().unwrap(), &[9u8; 100][..]);
        assert!(c.section(*b"VECS", "VECS").is_none());
    }

    #[test]
    fn aligned_roundtrip_places_every_payload_on_the_alignment() {
        let bytes = sample_aligned();
        assert!(is_container(&bytes));
        assert!(is_aligned_container(&bytes));
        let c = Container::parse(&bytes).unwrap();
        assert!(c.is_aligned());
        assert_eq!(c.section_names(), vec![*b"MODL", *b"HNSW"]);
        assert_eq!(c.section(*b"MODL", "MODL").unwrap().unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(c.section(*b"HNSW", "HNSW").unwrap().unwrap(), &[9u8; 100][..]);
        for name in [*b"MODL", *b"HNSW"] {
            let range = c.section_range(name, "sect").unwrap().unwrap();
            assert_eq!(range.offset % SECTION_ALIGN, 0, "{name:?} misaligned");
        }
    }

    #[test]
    fn aligned_layout_holds_for_many_payload_sizes() {
        // Alignment must survive arbitrary predecessor payload lengths.
        for sizes in [[0usize, 1], [1, 63], [63, 64], [64, 65], [100, 7], [4096, 1]] {
            let bytes = ContainerBuilder::aligned()
                .section(*b"AAAA", vec![0xAA; sizes[0]])
                .section(*b"BBBB", vec![0xBB; sizes[1]])
                .build();
            let c = Container::parse(&bytes).unwrap();
            for name in [*b"AAAA", *b"BBBB"] {
                let range = c.section_range(name, "sect").unwrap().unwrap();
                assert_eq!(range.offset % SECTION_ALIGN, 0, "{sizes:?}");
            }
            assert_eq!(
                c.section(*b"AAAA", "AAAA").unwrap().unwrap(),
                vec![0xAA; sizes[0]]
            );
            assert_eq!(
                c.section(*b"BBBB", "BBBB").unwrap().unwrap(),
                vec![0xBB; sizes[1]]
            );
        }
    }

    #[test]
    fn section_range_matches_section_bytes() {
        for bytes in [sample(), sample_aligned()] {
            let c = Container::parse(&bytes).unwrap();
            let r = c.section_range(*b"HNSW", "HNSW").unwrap().unwrap();
            assert_eq!(
                &bytes[r.offset..r.offset + r.len],
                c.section(*b"HNSW", "HNSW").unwrap().unwrap()
            );
        }
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        for bytes in [sample(), sample_aligned()] {
            for cut in 0..bytes.len() {
                let res = Container::parse(&bytes[..cut]);
                assert!(res.is_err(), "prefix of {cut} bytes must not parse");
            }
            assert!(Container::parse(&bytes).is_ok());
        }
    }

    #[test]
    fn bit_flip_in_payload_is_a_checksum_mismatch() {
        for mut bytes in [sample(), sample_aligned()] {
            let last = bytes.len() - 1; // inside the HNSW payload
            bytes[last] ^= 0x40;
            let c = Container::parse(&bytes).unwrap();
            // MODL untouched, HNSW corrupt.
            assert!(c.section(*b"MODL", "MODL").unwrap().is_ok());
            let err = c.section(*b"HNSW", "HNSW").unwrap().unwrap_err();
            assert!(err.is_checksum_mismatch());
            assert_eq!(err.section, "HNSW");
            // The range accessor reports the same verdict.
            assert!(c.section_range(*b"HNSW", "HNSW").unwrap().is_err());
        }
    }

    #[test]
    fn oversized_frame_length_is_structural_corruption() {
        let mut bytes = sample();
        // First frame's length field: magic + ver + count + dir crc + name.
        let len_at = 4 + 1 + 4 + 4 + 4;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = Container::parse(&bytes).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Truncated { .. }));
        assert_eq!(err.section, "container");
    }

    #[test]
    fn bit_flip_in_a_section_name_fails_the_directory_check() {
        for mut bytes in [sample(), sample_aligned()] {
            // First frame's name: magic + ver + count + dir crc.
            let name_at = 4 + 1 + 4 + 4;
            assert_eq!(&bytes[name_at..name_at + 4], b"MODL");
            bytes[name_at] ^= 0x01;
            // Without the directory CRC this would parse fine and `MODL`
            // would just be "absent" — indistinguishable from a real save.
            let err = Container::parse(&bytes).unwrap_err();
            assert!(err.is_checksum_mismatch());
            assert_eq!(err.section, "container");
        }
    }

    #[test]
    fn corrupt_pad_length_is_structural_corruption() {
        let mut bytes = sample_aligned();
        // First frame's pad field: magic + ver + count + dir crc + name
        // + len + crc.
        let pad_at = 4 + 1 + 4 + 4 + 4 + 8 + 4;
        bytes[pad_at] ^= 0x04;
        let err = Container::parse(&bytes).unwrap_err();
        // Either the derived-pad rule or (if the shift cascades) a later
        // structural check fires; it must never parse as valid.
        assert_eq!(err.section, "container");
    }

    #[test]
    fn unknown_container_version_is_rejected() {
        let mut bytes = sample();
        bytes[4] = 9;
        let err = Container::parse(&bytes).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadVersion(9));
    }

    #[test]
    fn empty_container_is_valid() {
        for bytes in [
            ContainerBuilder::new().build(),
            ContainerBuilder::aligned().build(),
        ] {
            let c = Container::parse(&bytes).unwrap();
            assert!(c.section_names().is_empty());
        }
    }
}
