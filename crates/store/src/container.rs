//! The framed artifact container (`DJAR`): named sections, each with
//! byte-length framing and a CRC-32 over its payload.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "DJAR" | version u8 | section_count u32 | directory_crc32 u32
//! then per section:
//!   name [u8;4] | payload_len u64 | crc32 u32 | payload bytes
//! ```
//!
//! `directory_crc32` covers the concatenated `(name, payload_len)` frame
//! headers. Without it, a single flipped bit in a section *name* would make
//! that section silently vanish — a loader could then mistake "the index
//! section is damaged" for "this artifact was saved without an index" and
//! degrade without ever reporting it. The per-section payload CRCs are
//! deliberately *not* covered: a damaged checksum field is equivalent to a
//! damaged payload and should degrade only its own section.
//!
//! Parsing is two-phase by design. [`Container::parse`] validates the
//! *framing* only — magic, version, directory integrity, and that every
//! declared frame fits in the file — so a torn write or truncation surfaces
//! as a structural [`DecodeError`] naming the section it cut into. Payload
//! *integrity* is checked per section by [`Container::section`], which lets
//! a loader treat a corrupt optional section (a damaged index) differently
//! from a corrupt mandatory one (the model weights): graceful degradation
//! instead of all-or-nothing loading.

use crate::codec::{DecodeError, DecodeErrorKind, Reader, Writer};
use crate::crc32::crc32;

/// Container magic bytes.
pub const CONTAINER_MAGIC: &[u8; 4] = b"DJAR";
/// Current container format version.
pub const CONTAINER_VERSION: u8 = 1;

/// Fixed per-section frame overhead: name + length + checksum.
const FRAME_HEADER: usize = 4 + 8 + 4;

/// True when `bytes` look like a framed container (magic sniff only).
pub fn is_container(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == CONTAINER_MAGIC
}

/// Builds a container by appending named sections.
#[derive(Debug, Default)]
pub struct ContainerBuilder {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl ContainerBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a section. Names are 4 ASCII bytes by convention (`b"MODL"`);
    /// duplicate names are allowed but only the first is addressable.
    pub fn section(mut self, name: [u8; 4], payload: Vec<u8>) -> Self {
        self.sections.push((name, payload));
        self
    }

    /// Serialize the container.
    pub fn build(self) -> Vec<u8> {
        let total: usize = self
            .sections
            .iter()
            .map(|(_, p)| FRAME_HEADER + p.len())
            .sum();
        let mut w = Writer::with_capacity(4 + 1 + 4 + 4 + total);
        w.put_slice(CONTAINER_MAGIC);
        w.put_u8(CONTAINER_VERSION);
        w.put_u32_le(self.sections.len() as u32);
        w.put_u32_le(crc32(&directory_bytes(
            self.sections.iter().map(|(n, p)| (*n, p.len())),
        )));
        for (name, payload) in &self.sections {
            w.put_slice(name);
            w.put_u64_le(payload.len() as u64);
            w.put_u32_le(crc32(payload));
            w.put_slice(payload);
        }
        w.into_vec()
    }
}

/// The byte string the directory CRC covers: every frame's name and
/// payload length, in file order.
fn directory_bytes(frames: impl Iterator<Item = ([u8; 4], usize)>) -> Vec<u8> {
    let mut dir = Vec::new();
    for (name, len) in frames {
        dir.extend_from_slice(&name);
        dir.extend_from_slice(&(len as u64).to_le_bytes());
    }
    dir
}

/// One parsed (but not yet integrity-checked) section frame.
#[derive(Debug, Clone)]
struct Frame {
    name: [u8; 4],
    /// Payload position within the container bytes.
    start: usize,
    len: usize,
    stored_crc: u32,
}

/// A parsed container over borrowed bytes.
#[derive(Debug)]
pub struct Container<'a> {
    bytes: &'a [u8],
    frames: Vec<Frame>,
}

impl<'a> Container<'a> {
    /// Parse the framing. Fails (with section/offset context) if the magic,
    /// version, or any frame header is damaged, or if a frame claims more
    /// bytes than the file holds — the signature of a torn write.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes, "container");
        r.expect_magic(CONTAINER_MAGIC)?;
        r.expect_version(CONTAINER_VERSION)?;
        let n = r.count_u32(FRAME_HEADER)?;
        let stored_dir_crc = r.u32_le()?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let name: [u8; 4] = r.bytes(4)?.try_into().unwrap();
            let len = r.count(1)?;
            let stored_crc = r.u32_le()?;
            let start = r.offset();
            r.bytes(len)?;
            frames.push(Frame {
                name,
                start,
                len,
                stored_crc,
            });
        }
        let computed = crc32(&directory_bytes(
            frames.iter().map(|f| (f.name, f.len)),
        ));
        if computed != stored_dir_crc {
            return Err(DecodeError::new(
                DecodeErrorKind::ChecksumMismatch {
                    stored: stored_dir_crc,
                    computed,
                },
                "container",
                5,
            ));
        }
        Ok(Self { bytes, frames })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<[u8; 4]> {
        self.frames.iter().map(|f| f.name).collect()
    }

    /// Whether a section named `name` exists (regardless of integrity).
    pub fn has_section(&self, name: [u8; 4]) -> bool {
        self.frames.iter().any(|f| f.name == name)
    }

    /// `(name, payload bytes)` for every section in file order, without
    /// checking payload integrity — for size reporting (`dj info`).
    pub fn section_sizes(&self) -> Vec<([u8; 4], usize)> {
        self.frames.iter().map(|f| (f.name, f.len)).collect()
    }

    /// Fetch a section's payload, verifying its checksum.
    ///
    /// * `None` — no such section.
    /// * `Some(Err(_))` — present but its payload fails the CRC; the error
    ///   carries the section name and `ChecksumMismatch` detail.
    /// * `Some(Ok(payload))` — intact.
    pub fn section(&self, name: [u8; 4], label: &'static str) -> Option<Result<&'a [u8], DecodeError>> {
        let f = self.frames.iter().find(|f| f.name == name)?;
        let payload = &self.bytes[f.start..f.start + f.len];
        let computed = crc32(payload);
        if computed != f.stored_crc {
            return Some(Err(DecodeError::new(
                DecodeErrorKind::ChecksumMismatch {
                    stored: f.stored_crc,
                    computed,
                },
                label,
                0,
            )));
        }
        Some(Ok(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        ContainerBuilder::new()
            .section(*b"MODL", vec![1, 2, 3, 4, 5])
            .section(*b"HNSW", vec![9; 100])
            .build()
    }

    #[test]
    fn roundtrip_sections() {
        let bytes = sample();
        assert!(is_container(&bytes));
        let c = Container::parse(&bytes).unwrap();
        assert_eq!(c.section_names(), vec![*b"MODL", *b"HNSW"]);
        assert_eq!(
            c.section_sizes(),
            vec![(*b"MODL", 5), (*b"HNSW", 100)]
        );
        assert_eq!(c.section(*b"MODL", "MODL").unwrap().unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(c.section(*b"HNSW", "HNSW").unwrap().unwrap(), &[9u8; 100][..]);
        assert!(c.section(*b"VECS", "VECS").is_none());
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let res = Container::parse(&bytes[..cut]);
            assert!(res.is_err(), "prefix of {cut} bytes must not parse");
        }
        assert!(Container::parse(&bytes).is_ok());
    }

    #[test]
    fn bit_flip_in_payload_is_a_checksum_mismatch() {
        let mut bytes = sample();
        let last = bytes.len() - 1; // inside the HNSW payload
        bytes[last] ^= 0x40;
        let c = Container::parse(&bytes).unwrap();
        // MODL untouched, HNSW corrupt.
        assert!(c.section(*b"MODL", "MODL").unwrap().is_ok());
        let err = c.section(*b"HNSW", "HNSW").unwrap().unwrap_err();
        assert!(err.is_checksum_mismatch());
        assert_eq!(err.section, "HNSW");
    }

    #[test]
    fn oversized_frame_length_is_structural_corruption() {
        let mut bytes = sample();
        // First frame's length field: magic + ver + count + dir crc + name.
        let len_at = 4 + 1 + 4 + 4 + 4;
        bytes[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = Container::parse(&bytes).unwrap_err();
        assert!(matches!(err.kind, DecodeErrorKind::Truncated { .. }));
        assert_eq!(err.section, "container");
    }

    #[test]
    fn bit_flip_in_a_section_name_fails_the_directory_check() {
        let mut bytes = sample();
        // First frame's name: magic + ver + count + dir crc.
        let name_at = 4 + 1 + 4 + 4;
        assert_eq!(&bytes[name_at..name_at + 4], b"MODL");
        bytes[name_at] ^= 0x01;
        // Without the directory CRC this would parse fine and `MODL` would
        // just be "absent" — indistinguishable from a legitimate save.
        let err = Container::parse(&bytes).unwrap_err();
        assert!(err.is_checksum_mismatch());
        assert_eq!(err.section, "container");
    }

    #[test]
    fn empty_container_is_valid() {
        let bytes = ContainerBuilder::new().build();
        let c = Container::parse(&bytes).unwrap();
        assert!(c.section_names().is_empty());
    }
}
