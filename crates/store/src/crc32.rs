//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every container section. Table-driven, one table build at first
//! use, ~1 byte/cycle: artifact sections are read once at startup, so this
//! is nowhere near the hot path.

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"deepjoin artifact store";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
