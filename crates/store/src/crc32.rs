//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every container section. Slice-by-8: eight lookup tables built
//! at compile time, eight input bytes folded per iteration. Section CRCs
//! are verified when a mapped artifact is opened, so at lake scale this
//! runs over hundreds of megabytes and its throughput is what cold-start
//! pays — the slice-by-8 form keeps that near memory speed instead of the
//! ~1 byte/cycle of the classic one-table loop.

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

/// Eight tables: `TABLES[0]` is the classic byte table; `TABLES[k]` maps a
/// byte to its CRC contribution when it sits `k` positions deeper in the
/// 8-byte word being folded.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
            state = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][c[4] as usize]
                ^ TABLES[2][c[5] as usize]
                ^ TABLES[1][c[6] as usize]
                ^ TABLES[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            state = (state >> 8) ^ TABLES[0][((state ^ b as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"deepjoin artifact store";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn sliced_path_matches_byte_at_a_time_reference() {
        // Every length from 0..64 so the 8-byte fast path and the remainder
        // loop are both exercised across all phase offsets.
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8).collect();
        for len in 0..=data.len() {
            let mut want = 0xFFFF_FFFFu32;
            for &b in &data[..len] {
                want = (want >> 8) ^ TABLES[0][((want ^ b as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data[..len]), want ^ 0xFFFF_FFFF, "len {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 256];
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                data[i] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at byte {i} bit {bit} undetected");
                data[i] ^= 1 << bit;
            }
        }
    }
}
