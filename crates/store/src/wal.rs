//! The write-ahead journal (`DJWL`) behind live lake mutations.
//!
//! Every mutation is appended here *before* it touches in-memory state, so
//! a crash at any byte boundary loses at most the unacknowledged tail.
//! Appends are not atomic — that is the whole point of the format: each
//! record carries its own framing and checksum, and replay simply stops at
//! the first frame that is torn, corrupt, or out of sequence. Everything
//! before that point is the *committed prefix* and is replayed; everything
//! after never happened.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (written via write_atomic, so it is never torn):
//!   "DJWL" | version u8 | fingerprint u64 | base_seq u64
//! then zero or more appended records:
//!   payload_len u32 | crc32(payload) u32 | payload
//!   where payload = seq u64 | body bytes
//! ```
//!
//! * `fingerprint` ties the journal to one base snapshot: replaying a WAL
//!   against a different snapshot would resurrect or mangle columns, so a
//!   mismatch discards the journal (with a warning) instead.
//! * `base_seq` is the sequence number the journal was last truncated at.
//!   Sequence numbers are monotone across truncations — records in the
//!   file run `base_seq + 1, base_seq + 2, …` — which is what makes replay
//!   idempotent: recovery skips every record whose `seq` is at or below
//!   the manifest's `applied_seq`, so a crash *between* "manifest written"
//!   and "WAL truncated" cannot double-apply.
//! * Truncation ([`Wal::reset`]) rewrites the file as a fresh header via
//!   the atomic-rename protocol, so it also is an all-or-nothing step.

use std::io;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::io::SharedIo;

/// Journal magic bytes.
pub const WAL_MAGIC: &[u8; 4] = b"DJWL";
/// Current journal format version.
pub const WAL_VERSION: u8 = 1;

/// Header size: magic + version + fingerprint + base_seq.
const HEADER_LEN: usize = 4 + 1 + 8 + 8;
/// Per-record frame overhead: payload length + checksum.
const FRAME_LEN: usize = 4 + 4;

/// One committed journal record, as yielded by replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number (never reused, survives truncation).
    pub seq: u64,
    /// Opaque record body — the mutation, encoded by the caller.
    pub body: Vec<u8>,
}

/// The result of opening a journal: the handle, the committed records that
/// survived (empty for a fresh journal), and any non-fatal warnings (torn
/// tail dropped, foreign journal discarded).
pub struct WalOpen {
    /// The journal, positioned to append after the last committed record.
    pub wal: Wal,
    /// Committed records in sequence order.
    pub records: Vec<WalRecord>,
    /// Non-fatal recovery notes, for operator logs.
    pub warnings: Vec<String>,
}

/// An append-only, checksummed, crash-recoverable journal.
pub struct Wal {
    io: SharedIo,
    path: PathBuf,
    fingerprint: u64,
    next_seq: u64,
    file_len: u64,
}

impl Wal {
    /// Open (or create) the journal at `path`, replaying its committed
    /// prefix. `fingerprint` must identify the base snapshot; a journal
    /// written against a different fingerprint is discarded with a warning
    /// rather than replayed.
    pub fn open(io: SharedIo, path: PathBuf, fingerprint: u64) -> io::Result<WalOpen> {
        if !io.exists(&path) {
            let mut wal = Self {
                io,
                path,
                fingerprint,
                next_seq: 1,
                file_len: HEADER_LEN as u64,
            };
            wal.write_header(0)?;
            return Ok(WalOpen {
                wal,
                records: Vec::new(),
                warnings: Vec::new(),
            });
        }

        let bytes = io.read(&path)?;
        let mut warnings = Vec::new();
        let (base_seq, records) = match Self::parse(&bytes, fingerprint) {
            Ok((base_seq, records, mut notes)) => {
                warnings.append(&mut notes);
                (base_seq, records)
            }
            Err(why) => {
                warnings.push(format!("WAL {}: {why}; discarding journal", path.display()));
                let mut wal = Self {
                    io,
                    path,
                    fingerprint,
                    next_seq: 1,
                    file_len: HEADER_LEN as u64,
                };
                wal.write_header(0)?;
                return Ok(WalOpen {
                    wal,
                    records: Vec::new(),
                    warnings,
                });
            }
        };

        let committed_len = Self::committed_len(&bytes, &records);
        let next_seq = records.last().map(|r| r.seq).unwrap_or(base_seq) + 1;
        let wal = Self {
            io,
            path,
            fingerprint,
            next_seq,
            file_len: committed_len,
        };
        Ok(WalOpen {
            wal,
            records,
            warnings,
        })
    }

    /// Byte length of the header plus every committed record.
    fn committed_len(bytes: &[u8], records: &[WalRecord]) -> u64 {
        let recs: usize = records
            .iter()
            .map(|r| FRAME_LEN + 8 + r.body.len())
            .sum();
        ((HEADER_LEN + recs) as u64).min(bytes.len() as u64)
    }

    /// Parse header + records. A structurally bad *header* is an error (the
    /// journal cannot be trusted at all); a bad *record* just ends the
    /// committed prefix, with a warning when trailing bytes were dropped.
    fn parse(
        bytes: &[u8],
        fingerprint: u64,
    ) -> Result<(u64, Vec<WalRecord>, Vec<String>), String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!(
                "header truncated ({} of {HEADER_LEN} bytes)",
                bytes.len()
            ));
        }
        if &bytes[..4] != WAL_MAGIC {
            return Err("bad magic".to_string());
        }
        if bytes[4] != WAL_VERSION {
            return Err(format!("unsupported version {}", bytes[4]));
        }
        let stored_fp = u64::from_le_bytes(bytes[5..13].try_into().unwrap());
        if stored_fp != fingerprint {
            return Err(format!(
                "fingerprint mismatch (journal {stored_fp:#018x}, snapshot {fingerprint:#018x})"
            ));
        }
        let base_seq = u64::from_le_bytes(bytes[13..21].try_into().unwrap());

        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        let mut expected_seq = base_seq + 1;
        let mut tail_note = None;
        while pos < bytes.len() {
            let Some((record, end)) = Self::parse_record(bytes, pos, expected_seq) else {
                tail_note = Some(format!(
                    "dropped {} torn/corrupt trailing byte(s) after seq {}",
                    bytes.len() - pos,
                    expected_seq - 1
                ));
                break;
            };
            records.push(record);
            expected_seq += 1;
            pos = end;
        }
        Ok((base_seq, records, tail_note.into_iter().collect()))
    }

    /// Decode one record at `pos`. `None` ends the committed prefix: torn
    /// frame, short payload, checksum mismatch, or a sequence break.
    fn parse_record(bytes: &[u8], pos: usize, expected_seq: u64) -> Option<(WalRecord, usize)> {
        let frame = bytes.get(pos..pos + FRAME_LEN)?;
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        let payload = bytes.get(pos + FRAME_LEN..pos + FRAME_LEN + len)?;
        if crc32(payload) != stored_crc || len < 8 {
            return None;
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
        if seq != expected_seq {
            return None;
        }
        Some((
            WalRecord {
                seq,
                body: payload[8..].to_vec(),
            },
            pos + FRAME_LEN + len,
        ))
    }

    fn write_header(&mut self, base_seq: u64) -> io::Result<()> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        header.push(WAL_VERSION);
        header.extend_from_slice(&self.fingerprint.to_le_bytes());
        header.extend_from_slice(&base_seq.to_le_bytes());
        self.io.write_atomic(&self.path, &header)?;
        self.file_len = HEADER_LEN as u64;
        Ok(())
    }

    /// Frame one record (`len | crc | seq | body`) into `buf`.
    fn frame_into(buf: &mut Vec<u8>, seq: u64, body: &[u8]) {
        let mut payload = Vec::with_capacity(8 + body.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(body);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    /// Append one mutation record; returns its sequence number. The record
    /// is durable when this returns — callers apply the mutation to memory
    /// only afterwards, so acknowledged state is always recoverable.
    pub fn append(&mut self, body: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let mut frame = Vec::with_capacity(FRAME_LEN + 8 + body.len());
        Self::frame_into(&mut frame, seq, body);
        self.io.append(&self.path, &frame)?;
        self.next_seq = seq + 1;
        self.file_len += frame.len() as u64;
        Ok(seq)
    }

    /// Group commit: append a batch of mutation records with a *single*
    /// durable write (one `fsync` for the whole group). Returns the
    /// sequence number of the first record; the rest follow consecutively
    /// in slice order.
    ///
    /// Acknowledgement is all-or-nothing: on error nothing in the batch is
    /// acknowledged. A crash mid-append can still persist any prefix of the
    /// batch's frames — replay framing treats that exactly like a torn
    /// single append, so recovery remains a committed prefix (some
    /// never-acknowledged records may survive, which group commit permits:
    /// durability is only promised for acknowledged mutations).
    ///
    /// An empty batch performs no I/O and returns the next sequence number.
    pub fn append_batch(&mut self, bodies: &[Vec<u8>]) -> io::Result<u64> {
        let first_seq = self.next_seq;
        if bodies.is_empty() {
            return Ok(first_seq);
        }
        let total: usize = bodies.iter().map(|b| FRAME_LEN + 8 + b.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for (i, body) in bodies.iter().enumerate() {
            Self::frame_into(&mut buf, first_seq + i as u64, body);
        }
        self.io.append(&self.path, &buf)?;
        self.next_seq = first_seq + bodies.len() as u64;
        self.file_len += buf.len() as u64;
        Ok(first_seq)
    }

    /// Truncate the journal after its records have been made durable
    /// elsewhere (a flushed segment + manifest). `base_seq` is the highest
    /// sequence number now covered by the manifest; future appends continue
    /// from there. Atomic: a crash leaves either the old journal (harmless,
    /// replay skips applied records) or the fresh one.
    pub fn reset(&mut self, base_seq: u64) -> io::Result<()> {
        self.write_header(base_seq)?;
        self.next_seq = self.next_seq.max(base_seq + 1);
        Ok(())
    }

    /// Current journal size in bytes (committed prefix only).
    pub fn size_bytes(&self) -> u64 {
        self.file_len
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultyIo, KillPointIo, MemIo};
    use crate::io::ArtifactIo;
    use std::sync::Arc;

    fn wal_path() -> PathBuf {
        PathBuf::from("mem://wal")
    }

    fn mem() -> SharedIo {
        Arc::new(MemIo::new())
    }

    #[test]
    fn fresh_open_append_replay_roundtrip() {
        let io = mem();
        let mut open = Wal::open(io.clone(), wal_path(), 42).unwrap();
        assert!(open.records.is_empty());
        assert!(open.warnings.is_empty());
        assert_eq!(open.wal.append(b"add:users").unwrap(), 1);
        assert_eq!(open.wal.append(b"drop:orders").unwrap(), 2);

        let reopened = Wal::open(io, wal_path(), 42).unwrap();
        assert!(reopened.warnings.is_empty());
        assert_eq!(
            reopened.records,
            vec![
                WalRecord { seq: 1, body: b"add:users".to_vec() },
                WalRecord { seq: 2, body: b"drop:orders".to_vec() },
            ]
        );
        assert_eq!(reopened.wal.next_seq(), 3);
    }

    #[test]
    fn torn_tail_is_dropped_with_a_warning() {
        let io: Arc<FaultyIo<MemIo>> = Arc::new(FaultyIo::new(MemIo::new()));
        let shared: SharedIo = io.clone();
        let mut open = Wal::open(shared.clone(), wal_path(), 7).unwrap();
        open.wal.append(b"committed").unwrap();
        // The next record tears mid-append: only 5 of its bytes land.
        io.inject(Fault::TornWrite { keep: 5 });
        open.wal.append(b"torn-away").unwrap();

        let reopened = Wal::open(shared, wal_path(), 7).unwrap();
        assert_eq!(reopened.records.len(), 1);
        assert_eq!(reopened.records[0].body, b"committed");
        assert_eq!(reopened.warnings.len(), 1);
        assert!(reopened.warnings[0].contains("torn"), "{:?}", reopened.warnings);
        // Appending after recovery continues the sequence.
        let mut wal = reopened.wal;
        assert_eq!(wal.append(b"next").unwrap(), 2);
    }

    #[test]
    fn bit_flip_in_a_record_ends_the_committed_prefix() {
        let io = mem();
        let mut open = Wal::open(io.clone(), wal_path(), 7).unwrap();
        open.wal.append(b"first").unwrap();
        open.wal.append(b"second").unwrap();
        let mut bytes = io.read(&wal_path()).unwrap();
        let last = bytes.len() - 1; // inside the second record's body
        bytes[last] ^= 0x10;
        io.write_atomic(&wal_path(), &bytes).unwrap();

        let reopened = Wal::open(io, wal_path(), 7).unwrap();
        assert_eq!(reopened.records.len(), 1);
        assert_eq!(reopened.records[0].body, b"first");
        assert!(!reopened.warnings.is_empty());
    }

    #[test]
    fn fingerprint_mismatch_discards_the_journal() {
        let io = mem();
        let mut open = Wal::open(io.clone(), wal_path(), 1).unwrap();
        open.wal.append(b"belongs to snapshot 1").unwrap();

        let reopened = Wal::open(io.clone(), wal_path(), 2).unwrap();
        assert!(reopened.records.is_empty());
        assert_eq!(reopened.warnings.len(), 1);
        assert!(reopened.warnings[0].contains("fingerprint"), "{:?}", reopened.warnings);
        // The discarded journal was replaced by a fresh one for snapshot 2.
        let again = Wal::open(io, wal_path(), 2).unwrap();
        assert!(again.warnings.is_empty());
    }

    #[test]
    fn reset_advances_base_seq_so_replay_stays_idempotent() {
        let io = mem();
        let mut open = Wal::open(io.clone(), wal_path(), 9).unwrap();
        open.wal.append(b"a").unwrap();
        open.wal.append(b"b").unwrap();
        open.wal.reset(2).unwrap();
        assert_eq!(open.wal.size_bytes(), 21);
        assert_eq!(open.wal.append(b"c").unwrap(), 3);

        let reopened = Wal::open(io, wal_path(), 9).unwrap();
        assert_eq!(reopened.records, vec![WalRecord { seq: 3, body: b"c".to_vec() }]);
        assert_eq!(reopened.wal.next_seq(), 4);
    }

    #[test]
    fn append_batch_commits_consecutively_and_replays_identically() {
        let io = mem();
        let mut open = Wal::open(io.clone(), wal_path(), 11).unwrap();
        assert_eq!(open.wal.append(b"solo").unwrap(), 1);
        let batch = vec![b"b1".to_vec(), b"b2".to_vec(), b"b3".to_vec()];
        assert_eq!(open.wal.append_batch(&batch).unwrap(), 2);
        // Empty batch: no I/O, sequence unchanged.
        assert_eq!(open.wal.append_batch(&[]).unwrap(), 5);
        assert_eq!(open.wal.append(b"after").unwrap(), 5);

        let reopened = Wal::open(io, wal_path(), 11).unwrap();
        assert!(reopened.warnings.is_empty());
        let bodies: Vec<&[u8]> = reopened.records.iter().map(|r| r.body.as_slice()).collect();
        assert_eq!(bodies, vec![b"solo".as_slice(), b"b1", b"b2", b"b3", b"after"]);
        assert_eq!(reopened.wal.next_seq(), 6);
    }

    #[test]
    fn torn_batch_append_recovers_a_committed_prefix() {
        let io: Arc<FaultyIo<MemIo>> = Arc::new(FaultyIo::new(MemIo::new()));
        let shared: SharedIo = io.clone();
        let mut open = Wal::open(shared.clone(), wal_path(), 3).unwrap();
        open.wal.append(b"acked").unwrap();
        // The batch tears mid-write: the first record's frame (8 + 8 + 2
        // bytes) survives intact, the second is cut mid-frame.
        io.inject(Fault::TornWrite { keep: 18 + 10 });
        let _ = open.wal.append_batch(&[b"g1".to_vec(), b"g2".to_vec()]);

        let reopened = Wal::open(shared, wal_path(), 3).unwrap();
        let bodies: Vec<&[u8]> = reopened.records.iter().map(|r| r.body.as_slice()).collect();
        // "g1" may survive even though the batch was never acknowledged —
        // group commit allows unacknowledged records to persist, never
        // torn or reordered ones.
        assert_eq!(bodies, vec![b"acked".as_slice(), b"g1"]);
        assert!(!reopened.warnings.is_empty());
        for pair in reopened.records.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1);
        }
    }

    #[test]
    fn every_kill_point_recovers_to_a_committed_prefix() {
        // Workload: open, three appends, reset(committed), one more append.
        // At every kill point, recovery must yield records that are exactly
        // a prefix of the acknowledged sequence — never torn, reordered,
        // resurrected, or double-applied.
        let workload = |io: &SharedIo| -> io::Result<Vec<u64>> {
            let mut acked = Vec::new();
            let mut open = Wal::open(io.clone(), wal_path(), 5)?;
            for body in [b"r1".as_slice(), b"r2", b"r3"] {
                acked.push(open.wal.append(body)?);
            }
            open.wal.reset(3)?;
            acked.push(open.wal.append(b"r4")?);
            Ok(acked)
        };

        let total = {
            let kp = Arc::new(KillPointIo::new(MemIo::new(), None));
            let shared: SharedIo = kp.clone();
            workload(&shared).unwrap();
            kp.points_used()
        };
        assert!(total > 8, "workload should expose many kill points, got {total}");

        for kill in 0..total {
            let kp = Arc::new(KillPointIo::new(MemIo::new(), Some(kill)));
            let shared: SharedIo = kp.clone();
            let _ = workload(&shared); // dies at the kill point
            assert!(kp.crashed(), "kill point {kill} never fired");

            // "Reboot": recover from the surviving bytes.
            let survivor: SharedIo = Arc::new(MemIo::new());
            if let Ok(bytes) = kp.inner().read(&wal_path()) {
                survivor.write_atomic(&wal_path(), &bytes).unwrap();
            }
            let recovered = Wal::open(survivor, wal_path(), 5).unwrap();
            // Sequence numbers are consecutive (no gaps, no duplicates)...
            for pair in recovered.records.windows(2) {
                assert_eq!(pair[1].seq, pair[0].seq + 1, "kill point {kill}");
            }
            // ...and every surviving record is one we actually wrote.
            for rec in &recovered.records {
                let expect: &[u8] = match rec.seq {
                    1 => b"r1",
                    2 => b"r2",
                    3 => b"r3",
                    4 => b"r4",
                    other => panic!("kill point {kill}: impossible seq {other}"),
                };
                assert_eq!(rec.body, expect, "kill point {kill}");
            }
        }
    }
}
