//! A minimal row-major `f32` matrix with the handful of kernels the column
//! encoder needs. No BLAS — the inner loops are the shared `deepjoin-simd`
//! kernels (`axpy` for the rank-1 updates in `matmul`/`t_matmul`, `dot` for
//! `matmul_t`), which dispatch to AVX2+FMA at runtime.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major contents, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, seeded.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Uniform init in `(-bound, bound)`, seeded. With `bound =
    /// sqrt(3/cols)` rows have expected unit norm — the right scale for
    /// embedding tables (unlike Xavier, whose bound shrinks with the row
    /// count and leaves rarely-touched rows with negligible magnitude).
    pub fn uniform(rows: usize, cols: usize, bound: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// `self @ other` — (m×k)·(k×n) → m×n.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: the inner j-loop is an axpy over contiguous memory
        // in both `other` and `out`.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                deepjoin_simd::axpy(out_row, other.row(p), a);
            }
        }
        out
    }

    /// `selfᵀ @ other` — (m×k)ᵀ·(m×n) → k×n. Used for weight gradients.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(k, n);
        for i in 0..m {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                deepjoin_simd::axpy(out.row_mut(p), b_row, a);
            }
        }
        out
    }

    /// `self @ otherᵀ` — (m×k)·(n×k)ᵀ → m×n. Used for input gradients and
    /// similarity matrices.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let m = self.rows;
        let mut out = Matrix::zeros(m, other.rows);
        // `other`'s rows are contiguous, so each output row is exactly the
        // blocked one-vs-many dot kernel.
        for i in 0..m {
            deepjoin_simd::dot_block(self.row(i), &other.data, out.row_mut(i));
        }
        out
    }

    /// Element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Set every element to zero (for gradient buffers).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_equals_transpose_then_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let c = a.t_matmul(&b); // aᵀ @ I = aᵀ
        assert_eq!(c.rows, 3);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn matmul_t_is_similarity() {
        let a = Matrix::from_vec(2, 2, vec![1., 0., 0., 1.]);
        let b = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let c = a.matmul_t(&b);
        // row i of c = [a_i · b_0, a_i · b_1]
        assert_eq!(c.data, vec![1., 3., 2., 4.]);
    }

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let a = Matrix::xavier(4, 4, 5);
        let b = Matrix::xavier(4, 4, 5);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f32).sqrt();
        assert!(a.data.iter().all(|&x| x.abs() <= bound));
        assert!(a.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn row_views() {
        let mut m = Matrix::zeros(2, 3);
        m.row_mut(1).copy_from_slice(&[1., 2., 3.]);
        assert_eq!(m.row(0), &[0., 0., 0.]);
        assert_eq!(m.row(1), &[1., 2., 3.]);
        assert_eq!(m.rows_iter().count(), 2);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(1, 2, vec![3., 4.]);
        a.add_assign(&b);
        assert_eq!(a.data, vec![4., 6.]);
        a.scale(0.5);
        assert_eq!(a.data, vec![2., 3.]);
        a.zero();
        assert_eq!(a.data, vec![0., 0.]);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
