//! The trainable column encoder — the PLM stand-in.
//!
//! Two variants mirror the paper's two PLMs (DESIGN.md §1):
//!
//! * **DistilLite** (for DistilBERT): mean-pooled token embeddings → MLP
//!   head. Light and fast, order-insensitive at the pooling stage.
//! * **MPLite** (for MPNet): learned positional embeddings added to token
//!   embeddings, attention pooling (a small additive-attention scorer), then
//!   the MLP head. Position-aware and able to focus on informative tokens —
//!   the properties the paper credits MPNet's pre-training with.
//!
//! Token embeddings are typically initialized from the SGNS pre-training in
//! `deepjoin-embed` ("pre-trained"), then the whole encoder is fine-tuned
//! with the multiple-negatives-ranking loss ([`crate::mnr`]).
//!
//! Gradient handling: the dense parameters (positions, attention, head) are
//! exposed through the [`Module`] visitor for AdamW; the embedding table is
//! updated *sparsely* (only rows touched in a batch) via
//! [`EncoderOptimizer`], the standard lazy-Adam treatment for large
//! embedding tables.

use serde::{Deserialize, Serialize};

use deepjoin_lake::fxhash::FxHashMap;
use deepjoin_lake::tokenizer::TokenId;

use crate::adam::{Adam, AdamConfig, AdamState};
use crate::layers::{Linear, Module};
use crate::matrix::Matrix;

/// Pooling strategy over token vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pooling {
    /// Arithmetic mean of token vectors (DistilLite).
    Mean,
    /// Additive attention: softmax-weighted mean (MPLite).
    Attention,
}

/// Encoder hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Vocabulary size (rows of the embedding table).
    pub vocab_size: usize,
    /// Token-embedding dimensionality.
    pub dim: usize,
    /// Output embedding dimensionality.
    pub out_dim: usize,
    /// Hidden width of the attention scorer.
    pub attn_hidden: usize,
    /// Maximum input length in tokens (hard truncation; the paper's 512-token
    /// budget scaled down).
    pub max_len: usize,
    /// Pooling strategy.
    pub pooling: Pooling,
    /// Whether to add learned positional embeddings (MPLite).
    pub use_positions: bool,
    /// Residual connection around the projection head
    /// (`out = head(pooled) + pooled`; requires `out_dim == dim`). Keeps
    /// the fine-tuned output a *refinement* of the pre-trained pooled
    /// representation, as transformer fine-tuning does, instead of
    /// replacing it.
    pub residual: bool,
    /// Init seed for all parameter tensors.
    pub seed: u64,
}

impl EncoderConfig {
    /// The DistilLite variant (paper: DeepJoin-DistilBERT).
    pub fn distil_lite(vocab_size: usize, dim: usize, seed: u64) -> Self {
        Self {
            vocab_size,
            dim,
            out_dim: dim,
            attn_hidden: dim / 2,
            max_len: 160,
            pooling: Pooling::Mean,
            use_positions: false,
            residual: true,
            seed,
        }
    }

    /// The MPLite variant (paper: DeepJoin-MPNet).
    pub fn mp_lite(vocab_size: usize, dim: usize, seed: u64) -> Self {
        Self {
            vocab_size,
            dim,
            out_dim: dim,
            attn_hidden: dim / 2,
            max_len: 160,
            pooling: Pooling::Attention,
            use_positions: true,
            residual: true,
            seed,
        }
    }
}

/// Cached per-sequence state from the last `encode_batch` call.
struct SeqCache {
    tokens: Vec<TokenId>,
    /// Token vectors after embedding (+ positions), `len x dim`.
    t: Matrix,
    /// Attention internals (empty for mean pooling).
    alpha: Vec<f32>,
    u: Matrix,
}

/// The column encoder.
pub struct ColumnEncoder {
    /// Configuration.
    pub config: EncoderConfig,
    /// Token-embedding table, `vocab x dim` (sparsely updated).
    pub embedding: Matrix,
    /// Learned positional embeddings, `max_len x dim`.
    positions: Matrix,
    g_positions: Matrix,
    /// Attention scorer: `u = tanh(W t + b)`, `score = v·u`.
    attn_w: Matrix, // dim x attn_hidden
    attn_b: Vec<f32>,
    attn_v: Vec<f32>,
    g_attn_w: Matrix,
    g_attn_b: Vec<f32>,
    g_attn_v: Vec<f32>,
    /// Projection head: Linear → tanh → Linear.
    h1: Linear,
    h2: Linear,
    /// Cached tanh output between h1 and h2 (for backward).
    head_mid: Option<Matrix>,
    /// Sparse gradients for the embedding table: row -> grad.
    pub embedding_grads: FxHashMap<TokenId, Vec<f32>>,
    cache: Vec<SeqCache>,
}

impl ColumnEncoder {
    /// Create an encoder with Xavier-initialized parameters.
    pub fn new(config: EncoderConfig) -> Self {
        assert!(
            !config.residual || config.out_dim == config.dim,
            "residual head requires out_dim == dim"
        );
        Self {
            embedding: Matrix::uniform(
                config.vocab_size,
                config.dim,
                (3.0 / config.dim as f32).sqrt(),
                config.seed ^ 0xE3,
            ),
            positions: Matrix::xavier(config.max_len, config.dim, config.seed ^ 0xB0),
            g_positions: Matrix::zeros(config.max_len, config.dim),
            attn_w: Matrix::xavier(config.dim, config.attn_hidden, config.seed ^ 0xA7),
            attn_b: vec![0.0; config.attn_hidden],
            attn_v: Matrix::xavier(config.attn_hidden, 1, config.seed ^ 0xA8).data,
            g_attn_w: Matrix::zeros(config.dim, config.attn_hidden),
            g_attn_b: vec![0.0; config.attn_hidden],
            g_attn_v: vec![0.0; config.attn_hidden],
            h1: Linear::new(config.dim, config.dim, config.seed ^ 0xA1),
            h2: Linear::new(config.dim, config.out_dim, config.seed ^ 0xA2),
            head_mid: None,
            embedding_grads: FxHashMap::default(),
            cache: Vec::new(),
            config,
        }
    }

    /// Overwrite the leading rows of the embedding table with pre-trained
    /// vectors. The table may cover fewer rows than `vocab_size` (e.g. when
    /// the tail rows are OOV hash buckets that keep their random init), but
    /// must be row-aligned to `dim` and no larger than the table.
    pub fn load_pretrained_embeddings(&mut self, table: &[f32]) {
        assert!(
            table.len().is_multiple_of(self.config.dim)
                && table.len() <= self.config.vocab_size * self.config.dim,
            "pretrained table shape mismatch"
        );
        self.embedding.data[..table.len()].copy_from_slice(table);
    }

    /// Encode one sequence without caching (inference path). `&self` so it
    /// can run concurrently from several threads.
    pub fn encode(&self, tokens: &[TokenId]) -> Vec<f32> {
        let t = self.embed_tokens(tokens);
        let pooled = match self.config.pooling {
            Pooling::Mean => mean_pool(&t),
            Pooling::Attention => {
                let (pooled, _, _) = self.attention_pool(&t);
                pooled
            }
        };
        self.head_infer(&pooled)
    }

    /// Encode a batch with caching for a following [`Self::backward`] call.
    /// Returns the `N x out_dim` output matrix.
    pub fn encode_batch(&mut self, seqs: &[Vec<TokenId>]) -> Matrix {
        self.cache.clear();
        let dim = self.config.dim;
        let mut pooled = Matrix::zeros(seqs.len(), dim);
        for (n, seq) in seqs.iter().enumerate() {
            let tokens: Vec<TokenId> =
                seq.iter().copied().take(self.config.max_len).collect();
            let t = self.embed_tokens(&tokens);
            let (p, alpha, u) = match self.config.pooling {
                Pooling::Mean => (mean_pool(&t), Vec::new(), Matrix::zeros(0, 0)),
                Pooling::Attention => self.attention_pool(&t),
            };
            pooled.row_mut(n).copy_from_slice(&p);
            self.cache.push(SeqCache {
                tokens,
                t,
                alpha,
                u,
            });
        }
        // Head: Linear → tanh → Linear (+ optional residual), caching the
        // tanh output.
        let mut mid = self.h1.forward(&pooled);
        for v in &mut mid.data {
            *v = v.tanh();
        }
        self.head_mid = Some(mid.clone());
        let mut out = self.h2.forward(&mid);
        if self.config.residual {
            out.add_assign(&pooled);
        }
        out
    }

    /// Backpropagate `dL/d(output)` from the last `encode_batch`, routing
    /// gradients into the head, attention, positions and (sparsely) the
    /// embedding table.
    pub fn backward(&mut self, grad_out: &Matrix) {
        assert_eq!(grad_out.rows, self.cache.len(), "stale cache");
        // Head backward: h2 → tanh → h1.
        let mut d_mid = self.h2.backward(grad_out);
        let mid = self.head_mid.as_ref().expect("backward before forward");
        for (g, &y) in d_mid.data.iter_mut().zip(&mid.data) {
            *g *= 1.0 - y * y;
        }
        let mut d_pooled = self.h1.backward(&d_mid);
        if self.config.residual {
            d_pooled.add_assign(grad_out);
        }
        let dim = self.config.dim;
        let hid = self.config.attn_hidden;

        // Take the cache to appease the borrow checker, then put it back.
        let caches = std::mem::take(&mut self.cache);
        for (n, c) in caches.iter().enumerate() {
            let dp = d_pooled.row(n);
            let len = c.tokens.len();
            if len == 0 {
                continue;
            }
            // dT: gradient wrt per-token vectors.
            let mut dt = Matrix::zeros(len, dim);
            match self.config.pooling {
                Pooling::Mean => {
                    let inv = 1.0 / len as f32;
                    for i in 0..len {
                        for (g, &d) in dt.row_mut(i).iter_mut().zip(dp) {
                            *g = d * inv;
                        }
                    }
                }
                Pooling::Attention => {
                    // pooled = Σ αᵢ tᵢ ; scoreᵢ = v·uᵢ ; uᵢ = tanh(W tᵢ + b)
                    let alpha = &c.alpha;
                    // dαᵢ = dp · tᵢ, dtᵢ += αᵢ dp
                    let mut d_alpha = vec![0f32; len];
                    for i in 0..len {
                        let trow = c.t.row(i);
                        d_alpha[i] = dp.iter().zip(trow).map(|(a, b)| a * b).sum();
                        for (g, &d) in dt.row_mut(i).iter_mut().zip(dp) {
                            *g += alpha[i] * d;
                        }
                    }
                    // softmax backward: dsᵢ = αᵢ (dαᵢ − Σⱼ αⱼ dαⱼ)
                    let dot: f32 = alpha.iter().zip(&d_alpha).map(|(a, b)| a * b).sum();
                    for i in 0..len {
                        let ds = alpha[i] * (d_alpha[i] - dot);
                        // score = v·u  →  dv += ds·u ; du = ds·v
                        let urow = c.u.row(i);
                        for h in 0..hid {
                            self.g_attn_v[h] += ds * urow[h];
                        }
                        // u = tanh(z) → dz = du (1−u²)
                        let trow = c.t.row(i);
                        for h in 0..hid {
                            let dz = ds * self.attn_v[h] * (1.0 - urow[h] * urow[h]);
                            self.g_attn_b[h] += dz;
                            // dW[:,h] += dz · t ; dt += dz · W[:,h]
                            for d in 0..dim {
                                self.g_attn_w.data[d * hid + h] += dz * trow[d];
                                dt.data[i * dim + d] += dz * self.attn_w.data[d * hid + h];
                            }
                        }
                    }
                }
            }
            // Route dT into embeddings (sparse) and positions (dense).
            for (i, &tok) in c.tokens.iter().enumerate() {
                let drow = dt.row(i);
                let acc = self
                    .embedding_grads
                    .entry(tok)
                    .or_insert_with(|| vec![0.0; dim]);
                for (a, &d) in acc.iter_mut().zip(drow) {
                    *a += d;
                }
                if self.config.use_positions {
                    for (g, &d) in self.g_positions.row_mut(i).iter_mut().zip(drow) {
                        *g += d;
                    }
                }
            }
        }
        self.cache = caches;
    }

    /// Borrow every parameter tensor for persistence, in a fixed order:
    /// `(embedding, positions, attn_w, attn_b, attn_v, h1_w, h1_b, h2_w,
    /// h2_b)`.
    #[allow(clippy::type_complexity)]
    pub fn raw_params(
        &self,
    ) -> (
        &[f32],
        &[f32],
        &[f32],
        &[f32],
        &[f32],
        &[f32],
        &[f32],
        &[f32],
        &[f32],
    ) {
        (
            &self.embedding.data,
            &self.positions.data,
            &self.attn_w.data,
            &self.attn_b,
            &self.attn_v,
            &self.h1.w.data,
            &self.h1.b,
            &self.h2.w.data,
            &self.h2.b,
        )
    }

    /// Rebuild an encoder from a config and the parameter tensors produced
    /// by [`Self::raw_params`]. Panics if any tensor has the wrong length
    /// for the config.
    pub fn from_raw_params(config: EncoderConfig, params: [Vec<f32>; 9]) -> Self {
        Self::try_from_raw_params(config, params).expect("tensor shapes match the config")
    }

    /// Like [`Self::from_raw_params`] but rejects a config/tensor mismatch
    /// instead of panicking — the entry point for decoding untrusted
    /// snapshot bytes. Shape arithmetic is checked *before* any allocation,
    /// so a corrupt config cannot trigger an oversized allocation or an
    /// assert deeper in construction.
    pub fn try_from_raw_params(
        config: EncoderConfig,
        params: [Vec<f32>; 9],
    ) -> Result<Self, &'static str> {
        if config.residual && config.out_dim != config.dim {
            return Err("residual head requires out_dim == dim");
        }
        let shapes: [(usize, usize); 9] = [
            (config.vocab_size, config.dim),
            (config.max_len, config.dim),
            (config.dim, config.attn_hidden),
            (config.attn_hidden, 1),
            (config.attn_hidden, 1),
            (config.dim, config.dim),
            (config.dim, 1),
            (config.dim, config.out_dim),
            (config.out_dim, 1),
        ];
        for (tensor, (rows, cols)) in params.iter().zip(shapes) {
            if rows.checked_mul(cols) != Some(tensor.len()) {
                return Err("parameter tensor length does not match the encoder config");
            }
        }
        let [embedding, positions, attn_w, attn_b, attn_v, h1_w, h1_b, h2_w, h2_b] = params;
        let mut enc = Self::new(config);
        enc.embedding.data = embedding;
        enc.positions.data = positions;
        enc.attn_w.data = attn_w;
        enc.attn_b = attn_b;
        enc.attn_v = attn_v;
        enc.h1.w.data = h1_w;
        enc.h1.b = h1_b;
        enc.h2.w.data = h2_w;
        enc.h2.b = h2_b;
        Ok(enc)
    }

    /// Clear every accumulated gradient (dense and sparse).
    pub fn zero_grad(&mut self) {
        self.h1.zero_grad();
        self.h2.zero_grad();
        self.g_positions.zero();
        self.g_attn_w.zero();
        self.g_attn_b.iter_mut().for_each(|g| *g = 0.0);
        self.g_attn_v.iter_mut().for_each(|g| *g = 0.0);
        self.embedding_grads.clear();
    }

    // -- internals ----------------------------------------------------------

    /// Token vectors with optional positional addition, `len x dim`.
    fn embed_tokens(&self, tokens: &[TokenId]) -> Matrix {
        let dim = self.config.dim;
        let len = tokens.len().min(self.config.max_len);
        let mut t = Matrix::zeros(len.max(1), dim);
        if tokens.is_empty() {
            // An empty sequence embeds as the zero token-vector row so the
            // pipeline stays total; callers rarely hit this (columns have
            // ≥ 5 cells).
            return t;
        }
        for (i, &tok) in tokens.iter().take(len).enumerate() {
            let row = self.embedding.row(tok as usize % self.config.vocab_size);
            let dst = t.row_mut(i);
            dst.copy_from_slice(row);
            if self.config.use_positions {
                for (d, &p) in dst.iter_mut().zip(self.positions.row(i)) {
                    *d += p;
                }
            }
        }
        t
    }

    /// Attention pooling forward. Returns `(pooled, alpha, u)`.
    fn attention_pool(&self, t: &Matrix) -> (Vec<f32>, Vec<f32>, Matrix) {
        let len = t.rows;
        let dim = self.config.dim;
        // u = tanh(t @ W + b): len x attn_hidden
        let mut u = t.matmul(&self.attn_w);
        for r in 0..len {
            let row = u.row_mut(r);
            for (x, b) in row.iter_mut().zip(&self.attn_b) {
                *x = (*x + b).tanh();
            }
        }
        // scores and softmax
        let mut scores = vec![0f32; len];
        for i in 0..len {
            scores[i] = u.row(i).iter().zip(&self.attn_v).map(|(a, b)| a * b).sum();
        }
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut alpha: Vec<f32> = scores.iter().map(|s| (s - max).exp()).collect();
        let z: f32 = alpha.iter().sum();
        if z > 0.0 {
            alpha.iter_mut().for_each(|a| *a /= z);
        }
        // pooled = Σ αᵢ tᵢ
        let mut pooled = vec![0f32; dim];
        for i in 0..len {
            let trow = t.row(i);
            for (p, &v) in pooled.iter_mut().zip(trow) {
                *p += alpha[i] * v;
            }
        }
        (pooled, alpha, u)
    }

    /// Pure-inference head application (no caching, `&self`).
    fn head_infer(&self, pooled: &[f32]) -> Vec<f32> {
        let mut mid = linear_infer(&self.h1, pooled);
        mid.iter_mut().for_each(|x| *x = x.tanh());
        let mut out = linear_infer(&self.h2, &mid);
        if self.config.residual {
            for (o, &p) in out.iter_mut().zip(pooled) {
                *o += p;
            }
        }
        out
    }
}

/// Mean of a matrix's rows (zero vector for an all-zero/empty matrix).
fn mean_pool(t: &Matrix) -> Vec<f32> {
    let mut out = vec![0f32; t.cols];
    if t.rows == 0 {
        return out;
    }
    for r in 0..t.rows {
        for (o, &v) in out.iter_mut().zip(t.row(r)) {
            *o += v;
        }
    }
    let inv = 1.0 / t.rows as f32;
    out.iter_mut().for_each(|x| *x *= inv);
    out
}

/// Apply a [`Linear`] layer to one row without touching its cache.
fn linear_infer(lin: &Linear, x: &[f32]) -> Vec<f32> {
    let mut out = lin.b.clone();
    for (r, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let wrow = lin.w.row(r);
        for (o, &w) in out.iter_mut().zip(wrow) {
            *o += xv * w;
        }
    }
    out
}

/// Optimizer for the encoder: AdamW over dense params + lazy Adam over the
/// sparse embedding rows.
pub struct EncoderOptimizer {
    adam: Adam,
    config: AdamConfig,
    emb_m: Vec<f32>,
    emb_v: Vec<f32>,
    emb_t: Vec<u32>,
}

/// A snapshot of the full optimizer state — dense AdamW moments plus the
/// sparse lazy-Adam embedding moments and per-row step counters — sufficient
/// to resume fine-tuning bit-identically from a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Dense AdamW step counter.
    pub t: u64,
    /// Dense first moments, in [`Module::visit_params`] order.
    pub dense_m: Vec<Vec<f32>>,
    /// Dense second moments, same order.
    pub dense_v: Vec<Vec<f32>>,
    /// Embedding first moments, `vocab * dim`.
    pub emb_m: Vec<f32>,
    /// Embedding second moments, `vocab * dim`.
    pub emb_v: Vec<f32>,
    /// Per-row lazy step counters, `vocab`.
    pub emb_t: Vec<u32>,
}

/// Adapter exposing the encoder's dense parameters as a [`Module`] for the
/// shared AdamW implementation.
struct DenseParams<'a>(&'a mut ColumnEncoder);

impl Module for DenseParams<'_> {
    fn forward(&mut self, _x: &Matrix) -> Matrix {
        unreachable!("optimizer adapter")
    }
    fn backward(&mut self, _g: &Matrix) -> Matrix {
        unreachable!("optimizer adapter")
    }
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        let e = &mut *self.0;
        e.h1.visit_params(f);
        e.h2.visit_params(f);
        if e.config.use_positions {
            f(&mut e.positions.data, &mut e.g_positions.data);
        }
        if e.config.pooling == Pooling::Attention {
            f(&mut e.attn_w.data, &mut e.g_attn_w.data);
            f(&mut e.attn_b, &mut e.g_attn_b);
            f(&mut e.attn_v, &mut e.g_attn_v);
        }
    }
    fn zero_grad(&mut self) {}
}

impl EncoderOptimizer {
    /// New optimizer for `encoder` with the given hyperparameters.
    pub fn new(encoder: &ColumnEncoder, config: AdamConfig) -> Self {
        let n = encoder.embedding.data.len();
        Self {
            adam: Adam::new(config),
            config,
            emb_m: vec![0.0; n],
            emb_v: vec![0.0; n],
            emb_t: vec![0; encoder.config.vocab_size],
        }
    }

    /// Snapshot the full optimizer state for persistence.
    pub fn export_state(&self) -> OptimizerState {
        let dense = self.adam.export_state();
        OptimizerState {
            t: dense.t,
            dense_m: dense.m,
            dense_v: dense.v,
            emb_m: self.emb_m.clone(),
            emb_v: self.emb_v.clone(),
            emb_t: self.emb_t.clone(),
        }
    }

    /// Rebuild an optimizer for `encoder` from a state snapshot, validating
    /// every buffer shape against the encoder (the entry point for state
    /// decoded from untrusted checkpoint bytes).
    pub fn restore_state(
        encoder: &mut ColumnEncoder,
        config: AdamConfig,
        state: OptimizerState,
    ) -> Result<Self, &'static str> {
        let n = encoder.embedding.data.len();
        if state.emb_m.len() != n || state.emb_v.len() != n {
            return Err("embedding moment buffers do not match the encoder");
        }
        if state.emb_t.len() != encoder.config.vocab_size {
            return Err("embedding step counters do not match the vocabulary");
        }
        let mut shapes = Vec::new();
        DenseParams(encoder).visit_params(&mut |p, _g| shapes.push(p.len()));
        let dense_ok = state.dense_m.len() == state.dense_v.len()
            && (state.dense_m.is_empty()
                || (state.dense_m.len() == shapes.len()
                    && state.dense_m.iter().zip(&shapes).all(|(b, &s)| b.len() == s)
                    && state.dense_v.iter().zip(&shapes).all(|(b, &s)| b.len() == s)));
        if !dense_ok {
            return Err("dense moment buffers do not match the encoder parameters");
        }
        Ok(Self {
            adam: Adam::restore(
                config,
                AdamState {
                    t: state.t,
                    m: state.dense_m,
                    v: state.dense_v,
                },
            ),
            config,
            emb_m: state.emb_m,
            emb_v: state.emb_v,
            emb_t: state.emb_t,
        })
    }

    /// Dense AdamW steps taken so far.
    pub fn steps(&self) -> usize {
        self.adam.steps()
    }

    /// The optimizer's hyperparameters.
    pub fn config(&self) -> AdamConfig {
        self.config
    }

    /// Apply one optimization step from the encoder's accumulated gradients,
    /// then clear them.
    ///
    /// When [`AdamConfig::clip_norm`] is positive the clip is computed over
    /// the *combined* global norm of dense and sparse gradients, and applied
    /// by pre-scaling both families; [`Adam::step`]'s internal dense-only
    /// clip then sees an already-conforming norm and is a no-op, so nothing
    /// is clipped twice. Non-finite sparse gradient components are scrubbed
    /// to zero (the dense ones are scrubbed inside [`Adam::step`]).
    pub fn step(&mut self, encoder: &mut ColumnEncoder) {
        if self.config.clip_norm > 0.0 {
            let mut sq = 0f64;
            DenseParams(encoder).visit_params(&mut |_p, g| {
                for &x in g.iter() {
                    if x.is_finite() {
                        sq += (x as f64) * (x as f64);
                    }
                }
            });
            for grad in encoder.embedding_grads.values() {
                for &x in grad {
                    if x.is_finite() {
                        sq += (x as f64) * (x as f64);
                    }
                }
            }
            let norm = sq.sqrt() as f32;
            if norm > self.config.clip_norm {
                let scale = self.config.clip_norm / norm;
                DenseParams(encoder).visit_params(&mut |_p, g| {
                    for x in g.iter_mut() {
                        *x = if x.is_finite() { *x * scale } else { 0.0 };
                    }
                });
                for grad in encoder.embedding_grads.values_mut() {
                    for x in grad.iter_mut() {
                        *x = if x.is_finite() { *x * scale } else { 0.0 };
                    }
                }
            }
        }

        // Dense parameters via shared AdamW.
        self.adam.step(&mut DenseParams(encoder));

        // Sparse (lazy) Adam on touched embedding rows. Rows are independent,
        // so the map's iteration order cannot affect the result.
        let dim = encoder.config.dim;
        let lr = self.adam.current_lr();
        let AdamConfig {
            beta1, beta2, eps, ..
        } = self.config;
        for (&tok, grad) in &encoder.embedding_grads {
            let row = tok as usize % encoder.config.vocab_size;
            self.emb_t[row] += 1;
            let t = self.emb_t[row] as i32;
            let bc1 = 1.0 - beta1.powi(t);
            let bc2 = 1.0 - beta2.powi(t);
            let base = row * dim;
            let prow = &mut encoder.embedding.data[base..base + dim];
            for i in 0..dim {
                let g = if grad[i].is_finite() { grad[i] } else { 0.0 };
                let m = &mut self.emb_m[base + i];
                let v = &mut self.emb_v[base + i];
                *m = beta1 * *m + (1.0 - beta1) * g;
                *v = beta2 * *v + (1.0 - beta2) * g * g;
                prow[i] -= lr * (*m / bc1) / ((*v / bc2).sqrt() + eps);
            }
        }
        encoder.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pooling: Pooling, use_positions: bool) -> ColumnEncoder {
        ColumnEncoder::new(EncoderConfig {
            vocab_size: 20,
            dim: 8,
            out_dim: 6,
            attn_hidden: 4,
            max_len: 10,
            pooling,
            use_positions,
            residual: false,
            seed: 0xBEEF,
        })
    }

    #[test]
    fn encode_shapes() {
        let mut e = tiny(Pooling::Attention, true);
        let seqs = vec![vec![1, 2, 3], vec![4, 5], vec![]];
        let out = e.encode_batch(&seqs);
        assert_eq!(out.rows, 3);
        assert_eq!(out.cols, 6);
    }

    #[test]
    fn inference_matches_batch_forward() {
        for (pool, pos) in [(Pooling::Mean, false), (Pooling::Attention, true)] {
            let mut e = tiny(pool, pos);
            let seq = vec![3u32, 7, 1, 2];
            let batch = e.encode_batch(std::slice::from_ref(&seq));
            let single = e.encode(&seq);
            for (a, b) in batch.row(0).iter().zip(&single) {
                assert!((a - b).abs() < 1e-5, "batch {a} vs single {b}");
            }
        }
    }

    #[test]
    fn truncation_respects_max_len() {
        let mut e = tiny(Pooling::Mean, false);
        let long: Vec<TokenId> = (0..50).map(|i| i % 20).collect();
        let truncated: Vec<TokenId> = long.iter().copied().take(10).collect();
        let a = e.encode_batch(&[long]);
        let b = e.encode_batch(&[truncated]);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn mean_pool_is_order_insensitive_but_attention_with_positions_is_not() {
        let mut mean = tiny(Pooling::Mean, false);
        let fwd = mean.encode_batch(&[vec![1, 2, 3]]);
        let rev = mean.encode_batch(&[vec![3, 2, 1]]);
        for (a, b) in fwd.data.iter().zip(&rev.data) {
            assert!((a - b).abs() < 1e-6);
        }

        let mut mp = tiny(Pooling::Attention, true);
        let fwd = mp.encode_batch(&[vec![1, 2, 3]]);
        let rev = mp.encode_batch(&[vec![3, 2, 1]]);
        let diff: f32 = fwd.data.iter().zip(&rev.data).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-4, "position-aware encoder must be order-sensitive");
    }

    /// Full-encoder gradient check via finite differences on the scalar loss
    /// `L = Σ c·out` for both variants.
    #[test]
    fn encoder_gradients_match_finite_differences() {
        for (pool, pos) in [(Pooling::Mean, false), (Pooling::Attention, true)] {
            let mut e = tiny(pool, pos);
            let seqs = vec![vec![1u32, 2, 3, 2], vec![5, 6]];
            let out = e.encode_batch(&seqs);
            let coeff = Matrix::xavier(out.rows, out.cols, 99);

            e.zero_grad();
            let _ = e.encode_batch(&seqs);
            e.backward(&coeff);

            // Check the embedding gradient for a touched token.
            let tok = 2u32;
            let analytic = e.embedding_grads.get(&tok).cloned().expect("token touched");
            let eps = 1e-2f32;
            for i in 0..e.config.dim {
                let idx = tok as usize * e.config.dim + i;
                e.embedding.data[idx] += eps;
                let lp: f32 = e
                    .encode_batch(&seqs)
                    .data
                    .iter()
                    .zip(&coeff.data)
                    .map(|(a, b)| a * b)
                    .sum();
                e.embedding.data[idx] -= 2.0 * eps;
                let lm: f32 = e
                    .encode_batch(&seqs)
                    .data
                    .iter()
                    .zip(&coeff.data)
                    .map(|(a, b)| a * b)
                    .sum();
                e.embedding.data[idx] += eps;
                let numeric = (lp - lm) / (2.0 * eps);
                let denom = numeric.abs().max(analytic[i].abs()).max(1e-2);
                assert!(
                    (numeric - analytic[i]).abs() / denom < 0.05,
                    "{pool:?} emb grad {i}: numeric={numeric} analytic={}",
                    analytic[i]
                );
            }
        }
    }

    #[test]
    fn optimizer_moves_touched_embeddings_only() {
        let mut e = tiny(Pooling::Attention, true);
        let before = e.embedding.data.clone();
        let seqs = vec![vec![1u32, 2]];
        let out = e.encode_batch(&seqs);
        let grad = Matrix::from_vec(out.rows, out.cols, vec![1.0; out.data.len()]);
        e.backward(&grad);
        let mut opt = EncoderOptimizer::new(
            &e,
            AdamConfig {
                warmup_steps: 0,
                ..AdamConfig::default()
            },
        );
        opt.step(&mut e);
        let dim = e.config.dim;
        // Rows 1 and 2 moved…
        for tok in [1usize, 2] {
            let moved = (0..dim)
                .any(|i| (e.embedding.data[tok * dim + i] - before[tok * dim + i]).abs() > 1e-9);
            assert!(moved, "row {tok} should move");
        }
        // …row 9 (untouched) did not.
        let untouched = (0..dim)
            .all(|i| (e.embedding.data[9 * dim + i] - before[9 * dim + i]).abs() < 1e-12);
        assert!(untouched);
        // Gradients were cleared by step().
        assert!(e.embedding_grads.is_empty());
    }

    /// Export optimizer state mid-run, restore into a fresh optimizer, and
    /// check the continued trajectories stay bit-identical.
    #[test]
    fn optimizer_state_roundtrip_resumes_bit_identically() {
        let cfg = AdamConfig {
            warmup_steps: 2,
            clip_norm: 5.0,
            ..AdamConfig::default()
        };
        let mut e_a = tiny(Pooling::Attention, true);
        let mut opt_a = EncoderOptimizer::new(&e_a, cfg);
        let seqs = [vec![vec![1u32, 2, 3]], vec![vec![4u32, 5]], vec![vec![2u32, 7, 9]]];
        let run = |e: &mut ColumnEncoder, opt: &mut EncoderOptimizer, s: &[Vec<TokenId>]| {
            let out = e.encode_batch(s);
            let grad = Matrix::from_vec(out.rows, out.cols, out.data.clone());
            e.backward(&grad);
            opt.step(e);
        };
        for s in &seqs {
            run(&mut e_a, &mut opt_a, s);
        }

        // Clone the encoder via raw params and restore the optimizer state.
        let (emb, pos, aw, ab, av, h1w, h1b, h2w, h2b) = e_a.raw_params();
        let params = [
            emb.to_vec(),
            pos.to_vec(),
            aw.to_vec(),
            ab.to_vec(),
            av.to_vec(),
            h1w.to_vec(),
            h1b.to_vec(),
            h2w.to_vec(),
            h2b.to_vec(),
        ];
        let mut e_b = ColumnEncoder::from_raw_params(e_a.config, params);
        let state = opt_a.export_state();
        assert_eq!(state.t, 3);
        let mut opt_b =
            EncoderOptimizer::restore_state(&mut e_b, cfg, state).expect("shapes match");

        for s in seqs.iter().cycle().take(5) {
            run(&mut e_a, &mut opt_a, s);
            run(&mut e_b, &mut opt_b, s);
        }
        assert_eq!(e_a.embedding.data, e_b.embedding.data);
        let (a, b) = (e_a.raw_params(), e_b.raw_params());
        assert_eq!(a.5, b.5);
        assert_eq!(a.7, b.7);
        assert_eq!(opt_a.export_state(), opt_b.export_state());
    }

    #[test]
    fn restore_state_rejects_mismatched_buffers() {
        let cfg = AdamConfig::default();
        let e = tiny(Pooling::Mean, false);
        let opt = EncoderOptimizer::new(&e, cfg);
        let mut bad = opt.export_state();
        bad.emb_m.pop();
        let mut e2 = tiny(Pooling::Mean, false);
        assert!(EncoderOptimizer::restore_state(&mut e2, cfg, bad).is_err());
        let mut bad_t = opt.export_state();
        bad_t.emb_t.push(0);
        assert!(EncoderOptimizer::restore_state(&mut e2, cfg, bad_t).is_err());
    }

    #[test]
    fn pretrained_embeddings_are_loaded() {
        let mut e = tiny(Pooling::Mean, false);
        let table = vec![0.5f32; 20 * 8];
        e.load_pretrained_embeddings(&table);
        assert_eq!(e.embedding.data[0], 0.5);
    }
}
