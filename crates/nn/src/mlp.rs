//! The MLP baseline (paper §5.1, "Methods"): a 3-layer perceptron trained
//! as a *regression* on joinability, taking the fastText embeddings of two
//! columns as input; the last hidden layer is then used as a column
//! embedding for retrieval.
//!
//! We realize it as a siamese tower `f` (Linear → ReLU → Linear): the score
//! of a pair is `cos(f(q), f(x))` regressed with MSE against the labeled
//! joinability, and `f(column-embedding)` is the retrieval embedding.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::adam::{Adam, AdamConfig};
use crate::layers::{Linear, Module, Relu, Sequential};
use crate::matrix::Matrix;

/// Hyperparameters for the MLP baseline.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Input (static column embedding) dimensionality.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Output embedding dimensionality.
    pub out_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
    /// Optimizer settings.
    pub adam: AdamConfig,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            in_dim: 64,
            hidden: 64,
            out_dim: 64,
            epochs: 5,
            batch_size: 64,
            seed: 0x3117,
            adam: AdamConfig {
                lr: 1e-3,
                warmup_steps: 0,
                ..AdamConfig::default()
            },
        }
    }
}

/// The trained regressor / embedder.
pub struct MlpRegressor {
    tower: Sequential,
    config: MlpConfig,
}

impl MlpRegressor {
    /// Untrained model.
    pub fn new(config: MlpConfig) -> Self {
        let tower = Sequential::new()
            .push(Linear::new(config.in_dim, config.hidden, config.seed ^ 1))
            .push(Relu::new())
            .push(Linear::new(config.hidden, config.out_dim, config.seed ^ 2));
        Self { tower, config }
    }

    /// Train on `(q_embedding, x_embedding, joinability)` triples with MSE on
    /// `cos(f(q), f(x))`. Returns the mean loss of the final epoch.
    pub fn train(&mut self, examples: &[(Vec<f32>, Vec<f32>, f32)]) -> f32 {
        assert!(!examples.is_empty(), "no training examples");
        let mut opt = Adam::new(self.config.adam);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut last_epoch_loss = 0f32;

        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let n = chunk.len();
                let d = self.config.in_dim;
                let mut q = Matrix::zeros(n, d);
                let mut x = Matrix::zeros(n, d);
                let mut target = Vec::with_capacity(n);
                for (r, &idx) in chunk.iter().enumerate() {
                    let (qe, xe, jn) = &examples[idx];
                    q.row_mut(r).copy_from_slice(qe);
                    x.row_mut(r).copy_from_slice(xe);
                    target.push(*jn);
                }
                // Two tower passes. The Sequential caches per call, so run
                // q forward+backward before x forward. Gradients accumulate
                // across both (shared weights), which is exactly siamese
                // training.
                self.tower.zero_grad();

                // Pass 1: q
                let fq = self.tower.forward(&q);
                // Pass 2 needs its own cache; compute fx first as inference
                // copy by cloning the tower? Instead: forward x, cache holds
                // x; we must backward x's grads first, then re-forward q.
                let fx = self.tower.forward(&x);

                // Loss: mean (cos(fq_i, fx_i) − t_i)²; grads wrt fq, fx.
                let (loss, dfq, dfx) = cosine_mse(&fq, &fx, &target);
                epoch_loss += loss;
                batches += 1;

                // Backward through the x pass (cache currently holds x).
                let _ = self.tower.backward(&dfx);
                // Re-forward q to restore its cache, then backward.
                let _ = self.tower.forward(&q);
                let _ = self.tower.backward(&dfq);

                opt.step(&mut self.tower);
            }
            last_epoch_loss = epoch_loss / batches.max(1) as f32;
        }
        last_epoch_loss
    }

    /// Embed a column's static embedding through the tower (the "last hidden
    /// layer" used for retrieval).
    pub fn embed(&mut self, column_embedding: &[f32]) -> Vec<f32> {
        let x = Matrix::from_vec(1, self.config.in_dim, column_embedding.to_vec());
        let y = self.tower.forward(&x);
        y.data
    }

    /// Predicted joinability of a pair.
    pub fn predict(&mut self, q: &[f32], x: &[f32]) -> f32 {
        let fq = self.embed(q);
        let fx = self.embed(x);
        cosine(&fq, &fx)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = a.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
    let nb = b.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    dot / (na * nb)
}

/// MSE over per-row cosine similarities; returns (loss, d/dA, d/dB).
fn cosine_mse(a: &Matrix, b: &Matrix, target: &[f32]) -> (f32, Matrix, Matrix) {
    let n = a.rows;
    let d = a.cols;
    let mut da = Matrix::zeros(n, d);
    let mut db = Matrix::zeros(n, d);
    let mut loss = 0f32;
    for i in 0..n {
        let ar = a.row(i);
        let br = b.row(i);
        let na = ar.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
        let nb = br.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-8);
        let dot: f32 = ar.iter().zip(br).map(|(x, y)| x * y).sum();
        let c = dot / (na * nb);
        let err = c - target[i];
        loss += err * err;
        // d(cos)/da = b/(na·nb) − cos·a/na²  (and symmetrically for b)
        let g = 2.0 * err / n as f32;
        let dar = da.row_mut(i);
        for k in 0..d {
            dar[k] = g * (br[k] / (na * nb) - c * ar[k] / (na * na));
        }
        let dbr = db.row_mut(i);
        for k in 0..d {
            dbr[k] = g * (ar[k] / (na * nb) - c * br[k] / (nb * nb));
        }
    }
    (loss / n as f32, da, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Synthetic task: pairs from the same cluster have jn 1, across
    /// clusters 0. The MLP should learn to separate them.
    #[test]
    fn learns_cluster_structure() {
        let mut rng = StdRng::seed_from_u64(5);
        let dim = 8;
        let mut examples = Vec::new();
        let center = |c: usize| -> Vec<f32> {
            (0..dim)
                .map(|i| if i % 2 == c % 2 { 1.0 } else { -1.0 })
                .collect()
        };
        let jitter = |v: &[f32], rng: &mut StdRng| -> Vec<f32> {
            v.iter().map(|x| x + rng.gen_range(-0.2..0.2)).collect()
        };
        for _ in 0..200 {
            let c = rng.gen_range(0..2usize);
            let q = jitter(&center(c), &mut rng);
            let pos = jitter(&center(c), &mut rng);
            let neg = jitter(&center(1 - c), &mut rng);
            examples.push((q.clone(), pos, 1.0));
            examples.push((q, neg, 0.0));
        }
        let mut mlp = MlpRegressor::new(MlpConfig {
            in_dim: dim,
            hidden: 16,
            out_dim: 8,
            epochs: 8,
            ..MlpConfig::default()
        });
        let final_loss = mlp.train(&examples);
        assert!(final_loss < 0.1, "final loss {final_loss}");

        let q = center(0);
        let same = center(0);
        let other = center(1);
        let p_same = mlp.predict(&q, &same);
        let p_other = mlp.predict(&q, &other);
        assert!(
            p_same > p_other + 0.3,
            "same {p_same} vs other {p_other}"
        );
    }

    #[test]
    fn embed_has_out_dim() {
        let mut mlp = MlpRegressor::new(MlpConfig {
            in_dim: 4,
            hidden: 6,
            out_dim: 3,
            ..MlpConfig::default()
        });
        assert_eq!(mlp.embed(&[0.1, 0.2, 0.3, 0.4]).len(), 3);
    }

    #[test]
    fn cosine_mse_gradcheck() {
        let a = Matrix::xavier(2, 3, 1);
        let b = Matrix::xavier(2, 3, 2);
        let t = vec![0.5, -0.2];
        let (_, da, db) = cosine_mse(&a, &b, &t);
        let eps = 1e-3f32;
        for idx in 0..a.data.len() {
            let mut ap = a.clone();
            ap.data[idx] += eps;
            let (lp, _, _) = cosine_mse(&ap, &b, &t);
            let mut am = a.clone();
            am.data[idx] -= eps;
            let (lm, _, _) = cosine_mse(&am, &b, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(da.data[idx].abs()).max(1e-3);
            assert!((numeric - da.data[idx]).abs() / denom < 2e-2);
        }
        for idx in 0..b.data.len() {
            let mut bp = b.clone();
            bp.data[idx] += eps;
            let (lp, _, _) = cosine_mse(&a, &bp, &t);
            let mut bm = b.clone();
            bm.data[idx] -= eps;
            let (lm, _, _) = cosine_mse(&a, &bm, &t);
            let numeric = (lp - lm) / (2.0 * eps);
            let denom = numeric.abs().max(db.data[idx].abs()).max(1e-3);
            assert!((numeric - db.data[idx]).abs() / denom < 2e-2);
        }
    }
}
