//! Trainable layers with hand-written forward/backward passes.
//!
//! The [`Module`] trait is deliberately tiny: forward caches whatever the
//! backward pass needs (training here is strictly sequential), and
//! `visit_params` exposes `(param, grad)` slices to the optimizer in a stable
//! order. Every backward implementation is validated against central finite
//! differences in the crate's gradient-check tests.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A differentiable module mapping a batch matrix to a batch matrix.
pub trait Module {
    /// Compute outputs for `x` (rows = batch items), caching intermediates.
    fn forward(&mut self, x: &Matrix) -> Matrix;

    /// Given `dL/d(output)`, accumulate parameter gradients and return
    /// `dL/d(input)`. Must be called after a matching `forward`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visit `(parameters, gradients)` pairs in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Reset all accumulated gradients to zero.
    fn zero_grad(&mut self);
}

/// Fully connected layer `y = x·W + b` with `W: in×out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias, `out_dim`.
    pub b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    #[serde(skip)]
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialized layer.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            cache_x: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward called before forward");
        // dW += xᵀ · dY; db += column sums of dY; dX = dY · Wᵀ.
        self.gw.add_assign(&x.t_matmul(grad_out));
        for r in 0..grad_out.rows {
            for (g, d) in self.gb.iter_mut().zip(grad_out.row(r)) {
                *g += d;
            }
        }
        grad_out.matmul_t(&self.w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w.data, &mut self.gw.data);
        f(&mut self.b, &mut self.gb);
    }

    fn zero_grad(&mut self) {
        self.gw.zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Element-wise `tanh`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tanh {
    #[serde(skip)]
    cache_y: Option<Matrix>,
}

impl Tanh {
    /// New activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Tanh {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.clone();
        for v in &mut y.data {
            *v = v.tanh();
        }
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let y = self
            .cache_y
            .as_ref()
            .expect("backward called before forward");
        let mut gx = grad_out.clone();
        for (g, &yv) in gx.data.iter_mut().zip(&y.data) {
            *g *= 1.0 - yv * yv;
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grad(&mut self) {}
}

/// Element-wise ReLU.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    cache_x: Option<Matrix>,
}

impl Relu {
    /// New activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        let mut y = x.clone();
        for v in &mut y.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward called before forward");
        let mut gx = grad_out.clone();
        for (g, &xv) in gx.data.iter_mut().zip(&x.data) {
            if xv <= 0.0 {
                *g = 0.0;
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grad(&mut self) {}
}

/// A sequential chain of modules.
#[derive(Default)]
pub struct Sequential {
    /// The chained modules, applied in order.
    pub layers: Vec<Box<dyn Module + Send>>,
}

impl Sequential {
    /// Empty chain.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Append a module.
    pub fn push<M: Module + Send + 'static>(mut self, m: M) -> Self {
        self.layers.push(Box::new(m));
        self
    }
}

impl Module for Sequential {
    fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_module_input_grad;

    #[test]
    fn linear_forward_known() {
        let mut l = Linear::new(2, 2, 1);
        l.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        l.b = vec![10., 20.];
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = l.forward(&x);
        assert_eq!(y.data, vec![14., 26.]);
    }

    #[test]
    fn linear_grads_check() {
        let l = Linear::new(3, 2, 7);
        check_module_input_grad(l, 2, 3, 0x11);
    }

    #[test]
    fn tanh_grads_check() {
        check_module_input_grad(Tanh::new(), 2, 4, 0x12);
    }

    #[test]
    fn relu_grads_check() {
        check_module_input_grad(Relu::new(), 2, 4, 0x13);
    }

    #[test]
    fn sequential_grads_check() {
        let seq = Sequential::new()
            .push(Linear::new(3, 5, 1))
            .push(Tanh::new())
            .push(Linear::new(5, 2, 2));
        check_module_input_grad(seq, 3, 3, 0x14);
    }

    #[test]
    fn zero_grad_clears() {
        let mut l = Linear::new(2, 2, 3);
        let x = Matrix::from_vec(1, 2, vec![1., 2.]);
        let _ = l.forward(&x);
        let _ = l.backward(&Matrix::from_vec(1, 2, vec![1., 1.]));
        let mut any_nonzero = false;
        l.visit_params(&mut |_, g| any_nonzero |= g.iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
        l.zero_grad();
        l.visit_params(&mut |_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }
}
