//! Finite-difference gradient checking used by the crate's tests.
//!
//! Every hand-written backward pass in this crate is verified against
//! central differences: `dL/dx ≈ (L(x+ε) − L(x−ε)) / 2ε` with the scalar
//! loss `L = Σ cᵢⱼ·yᵢⱼ` for a fixed random coefficient matrix `c` (so the
//! upstream gradient in backward is exactly `c`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::layers::Module;
use crate::matrix::Matrix;

/// Relative tolerance for gradient agreement.
pub const GRAD_TOL: f32 = 2e-2;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

fn loss(module: &mut dyn Module, x: &Matrix, coeff: &Matrix) -> f64 {
    let y = module.forward(x);
    assert_eq!(y.data.len(), coeff.data.len(), "coeff shape must match output");
    y.data
        .iter()
        .zip(&coeff.data)
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum()
}

/// Check the *input* gradient of `module` at a random input of shape
/// `batch x in_dim`. Panics with a diagnostic on mismatch.
pub fn check_module_input_grad<M: Module>(mut module: M, batch: usize, in_dim: usize, seed: u64) {
    let x = random_matrix(batch, in_dim, seed);
    // Discover the output shape first.
    let y = module.forward(&x);
    let coeff = random_matrix(y.rows, y.cols, seed ^ 0xC0FF);

    // Analytic gradient.
    module.zero_grad();
    let _ = module.forward(&x);
    let gx = module.backward(&coeff);

    // Numeric gradient.
    let eps = 1e-3f32;
    for i in 0..x.data.len() {
        let mut xp = x.clone();
        xp.data[i] += eps;
        let lp = loss(&mut module, &xp, &coeff);
        let mut xm = x.clone();
        xm.data[i] -= eps;
        let lm = loss(&mut module, &xm, &coeff);
        let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
        let analytic = gx.data[i];
        let denom = numeric.abs().max(analytic.abs()).max(1e-3);
        assert!(
            (numeric - analytic).abs() / denom < GRAD_TOL,
            "input grad mismatch at {i}: numeric={numeric} analytic={analytic}"
        );
    }
}

/// Check the *parameter* gradients of `module` at a random input. Panics
/// with a diagnostic on mismatch.
pub fn check_module_param_grads<M: Module>(mut module: M, batch: usize, in_dim: usize, seed: u64) {
    let x = random_matrix(batch, in_dim, seed);
    let y = module.forward(&x);
    let coeff = random_matrix(y.rows, y.cols, seed ^ 0xC0FF);

    module.zero_grad();
    let _ = module.forward(&x);
    let _ = module.backward(&coeff);

    // Snapshot analytic gradients.
    let mut analytic: Vec<Vec<f32>> = Vec::new();
    module.visit_params(&mut |_, g| analytic.push(g.to_vec()));

    let eps = 1e-3f32;
    // For each parameter tensor and element, perturb and re-evaluate.
    let num_tensors = analytic.len();
    for t in 0..num_tensors {
        for i in 0..analytic[t].len() {
            let mut idx = 0usize;
            module.visit_params(&mut |p, _| {
                if idx == t {
                    p[i] += eps;
                }
                idx += 1;
            });
            let lp = loss(&mut module, &x, &coeff);
            let mut idx = 0usize;
            module.visit_params(&mut |p, _| {
                if idx == t {
                    p[i] -= 2.0 * eps;
                }
                idx += 1;
            });
            let lm = loss(&mut module, &x, &coeff);
            let mut idx = 0usize;
            module.visit_params(&mut |p, _| {
                if idx == t {
                    p[i] += eps;
                }
                idx += 1;
            });
            let numeric = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let a = analytic[t][i];
            let denom = numeric.abs().max(a.abs()).max(1e-3);
            assert!(
                (numeric - a).abs() / denom < GRAD_TOL,
                "param grad mismatch tensor {t} elem {i}: numeric={numeric} analytic={a}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Sequential, Tanh};

    #[test]
    fn linear_param_grads() {
        check_module_param_grads(Linear::new(3, 2, 5), 2, 3, 0x21);
    }

    #[test]
    fn mlp_param_grads() {
        let seq = Sequential::new()
            .push(Linear::new(2, 4, 1))
            .push(Tanh::new())
            .push(Linear::new(4, 2, 2));
        check_module_param_grads(seq, 2, 2, 0x22);
    }
}
