//! Multiple-negatives-ranking loss (paper §4.2) with in-batch negatives.
//!
//! Given a batch of positive pairs `{(Xᵢ, Yᵢ)}` embedded to rows of `X` and
//! `Y`, every `(Xᵢ, Yⱼ), j ≠ i` is treated as a negative (§4.1). With the
//! cosine scoring `S(x, y) = scale · cos(x, y)` (sentence-transformers uses
//! `scale = 20`), the loss is the mean cross-entropy of softmax-normalized
//! rows against the diagonal:
//!
//! `L = −(1/N) Σᵢ log softmax(Sᵢ,·)ᵢ`
//!
//! `forward` returns the loss and the gradients w.r.t. both embedding
//! matrices, which callers feed into the two encoder backward passes.

use crate::matrix::Matrix;

/// The loss with its similarity scale.
#[derive(Debug, Clone, Copy)]
pub struct MnrLoss {
    /// Multiplier on cosine similarity before the softmax.
    pub scale: f32,
}

impl Default for MnrLoss {
    fn default() -> Self {
        Self { scale: 20.0 }
    }
}

impl MnrLoss {
    /// Create with an explicit scale.
    pub fn new(scale: f32) -> Self {
        Self { scale }
    }

    /// Compute the loss and gradients. `x` and `y` are `N x d` with matching
    /// shapes; row `i` of `x` pairs positively with row `i` of `y`.
    ///
    /// Returns `(loss, dL/dX, dL/dY)`.
    pub fn forward(&self, x: &Matrix, y: &Matrix) -> (f32, Matrix, Matrix) {
        assert_eq!(x.rows, y.rows, "batch sizes must match");
        assert_eq!(x.cols, y.cols, "dims must match");
        let n = x.rows;
        let d = x.cols;
        assert!(n > 0, "empty batch");

        // Norms (clamped away from zero for stability).
        let xn: Vec<f32> = (0..n).map(|i| norm(x.row(i)).max(1e-8)) .collect();
        let yn: Vec<f32> = (0..n).map(|j| norm(y.row(j)).max(1e-8)).collect();

        // Cosine and scaled score matrices.
        let mut cos = x.matmul_t(y); // n x n of dot products
        for i in 0..n {
            for j in 0..n {
                cos.data[i * n + j] /= xn[i] * yn[j];
            }
        }

        // Row-wise softmax of scale*cos with max-subtraction.
        let mut p = Matrix::zeros(n, n);
        let mut loss = 0f32;
        for i in 0..n {
            let row = cos.row(i);
            let max = row
                .iter()
                .map(|c| c * self.scale)
                .fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0f32;
            for j in 0..n {
                let e = (row[j] * self.scale - max).exp();
                p.data[i * n + j] = e;
                z += e;
            }
            for j in 0..n {
                p.data[i * n + j] /= z;
            }
            loss -= p.data[i * n + i].max(1e-12).ln();
        }
        loss /= n as f32;

        // dL/dcos_ij = scale/N * (p_ij − δ_ij)
        let mut dcos = p;
        for i in 0..n {
            dcos.data[i * n + i] -= 1.0;
        }
        dcos.scale(self.scale / n as f32);

        // cos = (xᵢ·yⱼ)/(|xᵢ||yⱼ|)
        // ∂cos/∂xᵢ = yⱼ/(|xᵢ||yⱼ|) − cos · xᵢ/|xᵢ|²
        let mut dx = Matrix::zeros(n, d);
        let mut dy = Matrix::zeros(n, d);
        for i in 0..n {
            for j in 0..n {
                let g = dcos.data[i * n + j];
                if g == 0.0 {
                    continue;
                }
                let c = cos.data[i * n + j];
                let inv = 1.0 / (xn[i] * yn[j]);
                let xi = x.row(i);
                let yj = y.row(j);
                {
                    let dxr = dx.row_mut(i);
                    let sx = c / (xn[i] * xn[i]);
                    for k in 0..d {
                        dxr[k] += g * (yj[k] * inv - sx * xi[k]);
                    }
                }
                {
                    let dyr = dy.row_mut(j);
                    let sy = c / (yn[j] * yn[j]);
                    for k in 0..d {
                        dyr[k] += g * (xi[k] * inv - sy * yj[k]);
                    }
                }
            }
        }
        (loss, dx, dy)
    }

    /// [`Self::forward`] with degenerate-batch and numerical guards, the
    /// entry point for training loops that must never see a NaN:
    ///
    /// * batches with fewer than 2 rows carry no in-batch negatives — the
    ///   loss is identically ~0 and the gradients vacuous — so they are
    ///   *skipped* (`None`) rather than averaged into epoch statistics;
    /// * a non-finite loss (e.g. from an all-zero embedding collapsing the
    ///   norms) also yields `None`;
    /// * any non-finite gradient component is scrubbed to zero so a single
    ///   poisoned pair cannot propagate NaN into the optimizer moments.
    pub fn forward_guarded(&self, x: &Matrix, y: &Matrix) -> Option<(f32, Matrix, Matrix)> {
        if x.rows < 2 || y.rows != x.rows || y.cols != x.cols {
            return None;
        }
        let (loss, mut dx, mut dy) = self.forward(x, y);
        if !loss.is_finite() {
            return None;
        }
        for g in dx.data.iter_mut().chain(dy.data.iter_mut()) {
            if !g.is_finite() {
                *g = 0.0;
            }
        }
        Some((loss, dx, dy))
    }
}

#[inline]
fn norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_vec(n, d, (0..n * d).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn loss_is_low_for_aligned_pairs() {
        // x_i == y_i, rows mutually orthogonal → near-perfect ranking.
        let x = Matrix::from_vec(3, 3, vec![1., 0., 0., 0., 1., 0., 0., 0., 1.]);
        let loss = MnrLoss::default();
        let (l_aligned, _, _) = loss.forward(&x, &x);
        // Mismatched pairing: shift y by one row.
        let y = Matrix::from_vec(3, 3, vec![0., 1., 0., 0., 0., 1., 1., 0., 0.]);
        let (l_shifted, _, _) = loss.forward(&x, &y);
        assert!(l_aligned < 0.01, "aligned loss {l_aligned}");
        assert!(l_shifted > l_aligned + 1.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let loss = MnrLoss::new(5.0);
        let x = random(3, 4, 1);
        let y = random(3, 4, 2);
        let (_, dx, dy) = loss.forward(&x, &y);
        let eps = 1e-3f32;

        for (which, grad) in [(0usize, &dx), (1usize, &dy)] {
            for idx in 0..x.data.len() {
                let mut xp = x.clone();
                let mut yp = y.clone();
                let mut xm = x.clone();
                let mut ym = y.clone();
                if which == 0 {
                    xp.data[idx] += eps;
                    xm.data[idx] -= eps;
                } else {
                    yp.data[idx] += eps;
                    ym.data[idx] -= eps;
                }
                let (lp, _, _) = loss.forward(&xp, &yp);
                let (lm, _, _) = loss.forward(&xm, &ym);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad.data[idx];
                let denom = numeric.abs().max(analytic.abs()).max(1e-3);
                assert!(
                    (numeric - analytic).abs() / denom < 3e-2,
                    "tensor {which} elem {idx}: numeric={numeric} analytic={analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_descent_on_embeddings_reduces_loss() {
        let loss = MnrLoss::default();
        let mut x = random(4, 6, 3);
        let mut y = random(4, 6, 4);
        let (initial, _, _) = loss.forward(&x, &y);
        for _ in 0..200 {
            let (_, dx, dy) = loss.forward(&x, &y);
            for (v, g) in x.data.iter_mut().zip(&dx.data) {
                *v -= 0.1 * g;
            }
            for (v, g) in y.data.iter_mut().zip(&dy.data) {
                *v -= 0.1 * g;
            }
        }
        let (fin, _, _) = loss.forward(&x, &y);
        assert!(fin < initial * 0.5, "loss should fall: {initial} -> {fin}");
    }

    #[test]
    #[should_panic]
    fn mismatched_batches_panic() {
        let loss = MnrLoss::default();
        let _ = loss.forward(&Matrix::zeros(2, 3), &Matrix::zeros(3, 3));
    }

    #[test]
    fn guarded_forward_skips_degenerate_batches() {
        let loss = MnrLoss::default();
        // Batch of one: no in-batch negatives, must be skipped, not NaN.
        assert!(loss.forward_guarded(&random(1, 4, 9), &random(1, 4, 10)).is_none());
        // Empty batch.
        assert!(loss.forward_guarded(&Matrix::zeros(0, 4), &Matrix::zeros(0, 4)).is_none());
        // Mismatched shapes return None instead of panicking.
        assert!(loss.forward_guarded(&Matrix::zeros(2, 3), &Matrix::zeros(3, 3)).is_none());
        // A healthy batch passes through with finite loss and gradients.
        let (l, dx, dy) = loss
            .forward_guarded(&random(3, 4, 11), &random(3, 4, 12))
            .expect("healthy batch");
        assert!(l.is_finite());
        assert!(dx.data.iter().chain(&dy.data).all(|g| g.is_finite()));
    }

    /// All-zero embeddings (e.g. columns with empty token lists) exercise the
    /// norm clamp; the guarded path must still return finite values.
    #[test]
    fn guarded_forward_survives_zero_embeddings() {
        let loss = MnrLoss::default();
        let x = Matrix::zeros(3, 4);
        let y = Matrix::zeros(3, 4);
        if let Some((l, dx, dy)) = loss.forward_guarded(&x, &y) {
            assert!(l.is_finite());
            assert!(dx.data.iter().chain(&dy.data).all(|g| g.is_finite()));
        }
    }
}
