//! AdamW optimizer with linear warmup, mirroring the paper's fine-tuning
//! setup (§5.1: Adam, warmup steps, weight decay 0.01).

use serde::{Deserialize, Serialize};

use crate::layers::Module;

/// Optimizer hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Peak learning rate (reached after warmup).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient (AdamW).
    pub weight_decay: f32,
    /// Linear warmup steps (0 disables warmup).
    pub warmup_steps: usize,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            warmup_steps: 200,
        }
    }
}

/// AdamW state. Moment buffers are allocated lazily on the first step and
/// keyed by the (stable) parameter visit order of the module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    t: usize,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Fresh optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// Effective learning rate at the current step (after warmup scaling).
    pub fn current_lr(&self) -> f32 {
        if self.config.warmup_steps == 0 {
            return self.config.lr;
        }
        let warm = (self.t as f32 / self.config.warmup_steps as f32).min(1.0);
        self.config.lr * warm
    }

    /// Apply one update to every parameter of `module` from its accumulated
    /// gradients, then leave gradients untouched (callers `zero_grad`).
    pub fn step(&mut self, module: &mut dyn Module) {
        self.t += 1;
        let lr = self.current_lr();
        let AdamConfig {
            beta1,
            beta2,
            eps,
            weight_decay,
            ..
        } = self.config;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        let mut idx = 0usize;
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        module.visit_params(&mut |p, g| {
            if idx == m_all.len() {
                m_all.push(vec![0.0; p.len()]);
                v_all.push(vec![0.0; p.len()]);
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            assert_eq!(m.len(), p.len(), "parameter shape changed between steps");
            for i in 0..p.len() {
                m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
                v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                // Decoupled weight decay (AdamW).
                p[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * p[i]);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use crate::matrix::Matrix;

    /// Minimize ||W x - y||² for a fixed (x, y) and check loss decreases.
    #[test]
    fn adam_reduces_quadratic_loss() {
        let mut lin = Linear::new(2, 1, 3);
        let x = Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 0.5, -0.5]);
        let target = [2.0f32, -1.0, 1.0, 1.5];
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            warmup_steps: 0,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });

        let loss_of = |lin: &mut Linear| {
            let y = lin.forward(&x);
            y.data
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };

        let initial = loss_of(&mut lin);
        for _ in 0..300 {
            lin.zero_grad();
            let y = lin.forward(&x);
            let grad = Matrix::from_vec(
                4,
                1,
                y.data
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| 2.0 * (a - b))
                    .collect(),
            );
            let _ = lin.backward(&grad);
            opt.step(&mut lin);
        }
        let fin = loss_of(&mut lin);
        assert!(fin < initial * 0.01, "loss should collapse: {initial} -> {fin}");
    }

    #[test]
    fn warmup_scales_lr() {
        let mut opt = Adam::new(AdamConfig {
            lr: 1.0,
            warmup_steps: 10,
            ..AdamConfig::default()
        });
        assert_eq!(opt.current_lr(), 0.0);
        let mut lin = Linear::new(1, 1, 0);
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let _ = lin.forward(&x);
        let _ = lin.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        for expected_step in 1..=10usize {
            opt.step(&mut lin);
            assert_eq!(opt.steps(), expected_step);
            let lr = opt.current_lr();
            assert!((lr - expected_step as f32 / 10.0).abs() < 1e-6);
        }
        opt.step(&mut lin);
        assert_eq!(opt.current_lr(), 1.0);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradients() {
        let mut lin = Linear::new(1, 1, 1);
        lin.w.data[0] = 1.0;
        lin.zero_grad(); // zero gradient => pure decay
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            warmup_steps: 0,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        opt.step(&mut lin);
        assert!(lin.w.data[0] < 1.0);
    }
}
