//! AdamW optimizer with linear warmup, mirroring the paper's fine-tuning
//! setup (§5.1: Adam, warmup steps, weight decay 0.01).
//!
//! Two robustness layers sit inside [`Adam::step`] so *every* optimizer
//! consumer gets them:
//!
//! * **non-finite scrubbing** — NaN/Inf gradient components are treated as
//!   zero, so one poisoned activation cannot write NaN into the moment
//!   buffers (which would stick: `0.9 * NaN + … = NaN` forever);
//! * **global-norm clipping** — when [`AdamConfig::clip_norm`] is positive,
//!   gradients are rescaled so their global L2 norm is at most that bound,
//!   taming loss spikes without changing the update *direction*.
//!
//! The moment buffers and step counter are exportable/restorable
//! ([`Adam::export_state`] / [`Adam::restore`]) so a training run can be
//! checkpointed and resumed bit-identically.

use serde::{Deserialize, Serialize};

use crate::layers::Module;

/// Optimizer hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Peak learning rate (reached after warmup).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient (AdamW).
    pub weight_decay: f32,
    /// Linear warmup steps (0 disables warmup).
    pub warmup_steps: usize,
    /// Global-norm gradient-clipping bound; `<= 0` disables clipping.
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 3e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            warmup_steps: 200,
            clip_norm: 0.0,
        }
    }
}

/// A snapshot of Adam's mutable state (moment buffers + step counter),
/// sufficient to resume optimization bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Steps taken.
    pub t: u64,
    /// First-moment buffers, one per visited parameter tensor.
    pub m: Vec<Vec<f32>>,
    /// Second-moment buffers, one per visited parameter tensor.
    pub v: Vec<Vec<f32>>,
}

/// AdamW state. Moment buffers are allocated lazily on the first step and
/// keyed by the (stable) parameter visit order of the module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    t: usize,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Fresh optimizer.
    pub fn new(config: AdamConfig) -> Self {
        Self {
            config,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.t
    }

    /// The configuration this optimizer runs with.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Snapshot the mutable state (moments + step counter) for persistence.
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t as u64,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Rebuild an optimizer from a state snapshot. The moment buffers are
    /// validated lazily: [`Adam::step`] still asserts each buffer's length
    /// against the parameter it is applied to, so callers restoring
    /// untrusted state should pre-validate shapes (see
    /// `EncoderOptimizer::restore_state`).
    pub fn restore(config: AdamConfig, state: AdamState) -> Self {
        Self {
            config,
            t: state.t as usize,
            m: state.m,
            v: state.v,
        }
    }

    /// Global L2 norm of every gradient visited by `module`, with
    /// non-finite components counted as zero (matching how
    /// [`Adam::step`] scrubs them).
    pub fn grad_norm(module: &mut dyn Module) -> f32 {
        let mut sq = 0f64;
        module.visit_params(&mut |_p, g| {
            for &x in g.iter() {
                if x.is_finite() {
                    sq += (x as f64) * (x as f64);
                }
            }
        });
        sq.sqrt() as f32
    }

    /// Effective learning rate at the current step (after warmup scaling).
    pub fn current_lr(&self) -> f32 {
        if self.config.warmup_steps == 0 {
            return self.config.lr;
        }
        let warm = (self.t as f32 / self.config.warmup_steps as f32).min(1.0);
        self.config.lr * warm
    }

    /// Apply one update to every parameter of `module` from its accumulated
    /// gradients, then leave gradients untouched (callers `zero_grad`).
    ///
    /// Non-finite gradient components are scrubbed to zero, and when
    /// `clip_norm > 0` the (scrubbed) gradients are globally rescaled so
    /// their L2 norm does not exceed it.
    pub fn step(&mut self, module: &mut dyn Module) {
        // Clipping needs the global norm before any update, so it costs one
        // extra visit pass — only taken when clipping is enabled.
        let scale = if self.config.clip_norm > 0.0 {
            let norm = Self::grad_norm(module);
            if norm > self.config.clip_norm {
                self.config.clip_norm / norm
            } else {
                1.0
            }
        } else {
            1.0
        };

        self.t += 1;
        let lr = self.current_lr();
        let AdamConfig {
            beta1,
            beta2,
            eps,
            weight_decay,
            ..
        } = self.config;
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        let mut idx = 0usize;
        let (m_all, v_all) = (&mut self.m, &mut self.v);
        module.visit_params(&mut |p, g| {
            if idx == m_all.len() {
                m_all.push(vec![0.0; p.len()]);
                v_all.push(vec![0.0; p.len()]);
            }
            let m = &mut m_all[idx];
            let v = &mut v_all[idx];
            assert_eq!(m.len(), p.len(), "parameter shape changed between steps");
            for i in 0..p.len() {
                let gi = if g[i].is_finite() { g[i] * scale } else { 0.0 };
                m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
                v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                // Decoupled weight decay (AdamW).
                p[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * p[i]);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Module};
    use crate::matrix::Matrix;

    /// Minimize ||W x - y||² for a fixed (x, y) and check loss decreases.
    #[test]
    fn adam_reduces_quadratic_loss() {
        let mut lin = Linear::new(2, 1, 3);
        let x = Matrix::from_vec(4, 2, vec![1., 0., 0., 1., 1., 1., 0.5, -0.5]);
        let target = [2.0f32, -1.0, 1.0, 1.5];
        let mut opt = Adam::new(AdamConfig {
            lr: 0.05,
            warmup_steps: 0,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });

        let loss_of = |lin: &mut Linear| {
            let y = lin.forward(&x);
            y.data
                .iter()
                .zip(&target)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };

        let initial = loss_of(&mut lin);
        for _ in 0..300 {
            lin.zero_grad();
            let y = lin.forward(&x);
            let grad = Matrix::from_vec(
                4,
                1,
                y.data
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| 2.0 * (a - b))
                    .collect(),
            );
            let _ = lin.backward(&grad);
            opt.step(&mut lin);
        }
        let fin = loss_of(&mut lin);
        assert!(fin < initial * 0.01, "loss should collapse: {initial} -> {fin}");
    }

    #[test]
    fn warmup_scales_lr() {
        let mut opt = Adam::new(AdamConfig {
            lr: 1.0,
            warmup_steps: 10,
            ..AdamConfig::default()
        });
        assert_eq!(opt.current_lr(), 0.0);
        let mut lin = Linear::new(1, 1, 0);
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let _ = lin.forward(&x);
        let _ = lin.backward(&Matrix::from_vec(1, 1, vec![1.0]));
        for expected_step in 1..=10usize {
            opt.step(&mut lin);
            assert_eq!(opt.steps(), expected_step);
            let lr = opt.current_lr();
            assert!((lr - expected_step as f32 / 10.0).abs() < 1e-6);
        }
        opt.step(&mut lin);
        assert_eq!(opt.current_lr(), 1.0);
    }

    /// Export state mid-run, restore into a fresh optimizer, and check the
    /// two trajectories stay bit-identical.
    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        let mut lin_a = Linear::new(3, 2, 7);
        let mut lin_b = lin_a.clone();
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.5, 0.25, -0.75]);
        let cfg = AdamConfig {
            lr: 0.01,
            warmup_steps: 3,
            ..AdamConfig::default()
        };
        let mut opt_a = Adam::new(cfg);

        let run_step = |lin: &mut Linear, opt: &mut Adam| {
            lin.zero_grad();
            let y = lin.forward(&x);
            let _ = lin.backward(&y); // grad = output, arbitrary but deterministic
            opt.step(lin);
        };

        for _ in 0..5 {
            run_step(&mut lin_a, &mut opt_a);
        }
        let snap = opt_a.export_state();
        assert_eq!(snap.t, 5);
        let mut opt_b = Adam::restore(cfg, snap);
        // Catch lin_b up with the same 5 steps using a third optimizer so the
        // restored one only sees the continuation.
        let mut opt_warm = Adam::new(cfg);
        for _ in 0..5 {
            run_step(&mut lin_b, &mut opt_warm);
        }

        for _ in 0..7 {
            run_step(&mut lin_a, &mut opt_a);
            run_step(&mut lin_b, &mut opt_b);
        }
        assert_eq!(lin_a.w.data, lin_b.w.data);
        assert_eq!(lin_a.b, lin_b.b);
        assert_eq!(opt_a.export_state(), opt_b.export_state());
    }

    /// Overwrite a Linear's gradients (visit order: w then b).
    fn set_grads(lin: &mut Linear, wg: &[f32], bg: &[f32]) {
        let mut idx = 0usize;
        lin.visit_params(&mut |_p, g| {
            g.copy_from_slice(if idx == 0 { wg } else { bg });
            idx += 1;
        });
    }

    /// With clipping on, a huge gradient must produce the same update as the
    /// same gradient direction at the clip bound.
    #[test]
    fn clipping_bounds_the_effective_gradient() {
        let cfg = AdamConfig {
            lr: 0.1,
            warmup_steps: 0,
            weight_decay: 0.0,
            clip_norm: 1.0,
            ..AdamConfig::default()
        };
        let mut big = Linear::new(1, 1, 0);
        let mut unit = Linear::new(1, 1, 0);
        big.w.data[0] = 1.0;
        unit.w.data[0] = 1.0;
        set_grads(&mut big, &[1e6], &[0.0]);
        set_grads(&mut unit, &[1.0], &[0.0]); // already at the clip bound
        let mut opt_big = Adam::new(cfg);
        let mut opt_unit = Adam::new(cfg);
        opt_big.step(&mut big);
        opt_unit.step(&mut unit);
        assert!((big.w.data[0] - unit.w.data[0]).abs() < 1e-6);
    }

    /// NaN/Inf gradient components are ignored; finite ones still apply.
    #[test]
    fn non_finite_gradients_are_scrubbed() {
        let mut lin = Linear::new(2, 1, 0);
        lin.w.data[0] = 1.0;
        lin.w.data[1] = 1.0;
        set_grads(&mut lin, &[f32::NAN, 1.0], &[f32::INFINITY]);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            warmup_steps: 0,
            weight_decay: 0.0,
            ..AdamConfig::default()
        });
        opt.step(&mut lin);
        assert!(lin.w.data.iter().all(|p| p.is_finite()));
        assert!(lin.b[0].is_finite());
        // The NaN component saw a zero gradient => no movement.
        assert_eq!(lin.w.data[0], 1.0);
        assert_eq!(lin.b[0], 0.0);
        // The finite component moved.
        assert!(lin.w.data[1] < 1.0);
        let st = opt.export_state();
        assert!(st.m.iter().flatten().all(|x| x.is_finite()));
        assert!(st.v.iter().flatten().all(|x| x.is_finite()));
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradients() {
        let mut lin = Linear::new(1, 1, 1);
        lin.w.data[0] = 1.0;
        lin.zero_grad(); // zero gradient => pure decay
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            warmup_steps: 0,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        opt.step(&mut lin);
        assert!(lin.w.data[0] < 1.0);
    }
}
