//! # deepjoin-nn
//!
//! A minimal neural-network substrate with hand-written backprop — the
//! ML-framework stand-in that lets this reproduction fine-tune a column
//! encoder in pure Rust (DESIGN.md §1):
//!
//! * [`matrix`] — row-major `f32` matrices and the few kernels we need;
//! * [`layers`] — `Linear`/`Tanh`/`Relu`/`Sequential` with the [`layers::Module`] trait;
//! * [`adam`] — AdamW with linear warmup (the paper's optimizer setup);
//! * [`encoder`] — the trainable column encoder in two variants mirroring
//!   DistilBERT (`DistilLite`, mean pooling) and MPNet (`MPLite`, positional
//!   + attention pooling);
//! * [`mnr`] — the multiple-negatives-ranking loss of §4.2;
//! * [`mlp`] — the 3-layer-perceptron regression baseline;
//! * [`gradcheck`] — finite-difference validation used across the tests.

#![warn(missing_docs)]

pub mod adam;
pub mod encoder;
pub mod gradcheck;
pub mod layers;
pub mod matrix;
pub mod mlp;
pub mod mnr;

pub use adam::{Adam, AdamConfig, AdamState};
pub use encoder::{ColumnEncoder, EncoderConfig, EncoderOptimizer, OptimizerState, Pooling};
pub use layers::{Linear, Module, Relu, Sequential, Tanh};
pub use matrix::Matrix;
pub use mlp::{MlpConfig, MlpRegressor};
pub use mnr::MnrLoss;
