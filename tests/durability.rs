//! End-to-end durability tests: a real trained-model snapshot driven
//! through the fault-injection harness (`deepjoin_store::faults`).
//!
//! The invariant under test, for every fault class: the loader either
//! recovers (possibly degraded, with a warning) or rejects the artifact
//! with a structured [`deepjoin_ann::io::DecodeError`] — it never panics
//! and never serves silently wrong data.

use std::path::PathBuf;
use std::sync::OnceLock;

use deepjoin::model::{DeepJoin, DeepJoinConfig, IndexHealth, Variant};
use deepjoin::persist::{load_model, save_model};
use deepjoin::train::{FineTuneConfig, JoinType, TrainDataConfig};
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_store::{ArtifactIo, Fault, FaultyIo, MemIo, StdIo};

/// One small trained + indexed model, shared across tests (training
/// dominates the cost; the fault sweeps are cheap).
fn snapshot() -> &'static [u8] {
    static SNAPSHOT: OnceLock<Vec<u8>> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 60, 5));
        let (repo, _) = corpus.to_repository();
        let cfg = DeepJoinConfig {
            variant: Variant::MpLite,
            dim: 8,
            oov_buckets: 16,
            sgns: deepjoin_embed::SgnsConfig {
                dim: 8,
                epochs: 1,
                ..Default::default()
            },
            fine_tune: FineTuneConfig {
                epochs: 1,
                ..Default::default()
            },
            data: TrainDataConfig {
                max_pairs: 200,
                ..Default::default()
            },
            ..DeepJoinConfig::default()
        };
        let (mut model, _) = DeepJoin::train(&repo, JoinType::Equi, cfg);
        model.index_repository(&repo);
        save_model(&model, true)
    })
}

fn mem_path() -> PathBuf {
    PathBuf::from("mem://model.dj")
}

#[test]
fn fault_free_roundtrip_through_the_io_layer() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    io.write_atomic(&mem_path(), bytes).unwrap();
    let loaded = load_model(&io.read(&mem_path()).unwrap()).unwrap();
    assert!(loaded.warnings.is_empty());
    assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
    assert!(loaded.model.indexed_len() > 0);
}

#[test]
fn torn_write_at_every_byte_boundary_is_rejected() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    for keep in 0..bytes.len() {
        io.inject(Fault::TornWrite { keep });
        io.write_atomic(&mem_path(), bytes).unwrap();
        let torn = io.read(&mem_path()).unwrap();
        assert_eq!(torn.len(), keep);
        assert!(
            load_model(&torn).is_err(),
            "torn prefix of {keep} bytes must be rejected"
        );
    }
}

#[test]
fn truncated_read_at_every_byte_boundary_is_rejected() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    io.write_atomic(&mem_path(), bytes).unwrap();
    for at in 0..bytes.len() {
        io.inject(Fault::TruncateRead { at });
        let cut = io.read(&mem_path()).unwrap();
        assert!(
            load_model(&cut).is_err(),
            "truncated read of {at} bytes must be rejected"
        );
    }
}

#[test]
fn bit_flips_degrade_or_reject_but_never_panic() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    io.write_atomic(&mem_path(), bytes).unwrap();
    let q = [0.1f32; 8];
    // Stride by a prime so every region of the file (header, MODL, VECS,
    // HNSW) gets hit across differing byte/bit positions.
    for offset in (0..bytes.len()).step_by(23) {
        io.inject(Fault::BitFlip {
            offset,
            bit: (offset % 8) as u8,
        });
        let damaged = io.read(&mem_path()).unwrap();
        match load_model(&damaged) {
            Err(_) => {} // structured rejection is fine
            Ok(loaded) => match loaded.model.index_health() {
                IndexHealth::Hnsw => {
                    // Flip landed in dead space (e.g. a tolerated header
                    // bit); the model must still serve.
                    let _ = loaded.model.search_embedded(&q, 3);
                }
                IndexHealth::DegradedFlat { .. } => {
                    assert!(
                        !loaded.warnings.is_empty(),
                        "degradation at offset {offset} must be reported"
                    );
                    let hits = loaded.model.search_embedded(&q, 3);
                    assert_eq!(hits.len(), 3.min(loaded.model.indexed_len()));
                }
                IndexHealth::Missing => {
                    assert!(
                        !loaded.warnings.is_empty(),
                        "index loss at offset {offset} must be reported"
                    );
                }
            },
        }
    }
}

#[test]
fn enospc_fails_the_write_and_preserves_the_previous_snapshot() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    io.write_atomic(&mem_path(), bytes).unwrap();
    io.inject(Fault::Enospc);
    let err = io.write_atomic(&mem_path(), b"replacement").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
    // The old snapshot is still there and still loads cleanly.
    let stored = io.read(&mem_path()).unwrap();
    assert_eq!(stored.as_slice(), bytes);
    assert!(load_model(&stored).is_ok());
}

#[test]
fn read_errors_surface_as_io_errors() {
    let bytes = snapshot();
    let io = FaultyIo::new(MemIo::new());
    io.write_atomic(&mem_path(), bytes).unwrap();
    io.inject(Fault::ReadError);
    assert!(io.read(&mem_path()).is_err());
    // Queue drained: the next read succeeds.
    assert!(io.read(&mem_path()).is_ok());
}

#[test]
fn atomic_filesystem_write_roundtrips_a_real_snapshot() {
    let bytes = snapshot();
    let dir = std::env::temp_dir().join(format!("dj-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dj");
    StdIo.write_atomic(&path, bytes).unwrap();
    let loaded = load_model(&StdIo.read(&path).unwrap()).unwrap();
    assert!(loaded.warnings.is_empty());
    assert_eq!(loaded.model.index_health(), IndexHealth::Hnsw);
    std::fs::remove_dir_all(&dir).unwrap();
}
