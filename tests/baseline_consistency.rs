//! Cross-crate consistency tests: every search system agrees with its
//! brute-force reference on the same generated lake.

use deepjoin_embed::cell_space::{CellSpace, EmbeddedRepository};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_josie::JosieIndex;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::joinability::brute_force_topk;
use deepjoin_lshensemble::{LshEnsembleConfig, LshEnsembleIndex};
use deepjoin_pexeso::{PexesoConfig, PexesoIndex};

fn lake() -> (Corpus, deepjoin_lake::Repository) {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 500, 99));
    let (repo, _) = corpus.to_repository();
    (corpus, repo)
}

#[test]
fn josie_is_exact_on_generated_lakes() {
    let (corpus, repo) = lake();
    let idx = JosieIndex::build(&repo);
    for (q, _) in corpus.sample_queries(10, 1) {
        for k in [1, 10, 25] {
            let got: Vec<f64> = idx.search(&q, k).iter().map(|s| s.score).collect();
            let want: Vec<f64> = brute_force_topk(&repo, &q, k).iter().map(|s| s.score).collect();
            assert_eq!(got, want, "k={k}");
        }
    }
}

#[test]
fn pexeso_is_exact_on_generated_lakes() {
    let (corpus, repo) = lake();
    let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
        dim: 32,
        ..NgramConfig::default()
    }));
    let er = EmbeddedRepository::build(&space, &repo);
    let idx = PexesoIndex::build(&er.columns, PexesoConfig::default());
    for (q, _) in corpus.sample_queries(5, 2) {
        let qv = space.embed_column(&q);
        for tau in [0.5, 0.9] {
            let got = idx.search(&qv, tau, 15);
            let want: Vec<_> = er
                .brute_force_topk(&qv, tau, 15)
                .into_iter()
                .filter(|s| s.score > 0.0)
                .collect();
            assert_eq!(got.len(), want.len(), "tau={tau}");
            for (g, w) in got.iter().zip(&want) {
                assert!((g.score - w.score).abs() < 1e-9, "tau={tau}");
            }
        }
    }
}

#[test]
fn lsh_ensemble_recall_of_top_targets() {
    // Approximate, but the single best (highest-containment) target should
    // almost always be retrieved in the top-10.
    let (corpus, repo) = lake();
    let idx = LshEnsembleIndex::build(&repo, LshEnsembleConfig::default());
    let mut hits = 0usize;
    let mut total = 0usize;
    for (q, _) in corpus.sample_queries(20, 3) {
        let exact = brute_force_topk(&repo, &q, 1);
        let best = exact[0];
        if best.score < 0.5 {
            continue; // no strongly joinable target for this query
        }
        total += 1;
        let got = idx.search(&q, 10);
        if got.iter().any(|s| s.id == best.id) {
            hits += 1;
        }
    }
    assert!(total >= 5, "need some strong queries, got {total}");
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.6, "best-target recall {recall}");
}

#[test]
fn hnsw_matches_flat_on_column_embeddings() {
    use deepjoin_ann::{FlatIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
    let (corpus, repo) = lake();
    let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
        dim: 32,
        ..NgramConfig::default()
    }));
    // One embedding per column (mean of its cell vectors).
    let embs: Vec<Vec<f32>> = repo
        .columns()
        .iter()
        .map(|c| {
            let cv = space.embed_column(c);
            let mut acc = vec![0f32; 32];
            for v in cv.iter() {
                deepjoin_embed::vector::add_assign(&mut acc, v);
            }
            deepjoin_embed::vector::normalize(&mut acc);
            acc
        })
        .collect();
    let mut flat = FlatIndex::new(32, Metric::L2);
    let mut hnsw = HnswIndex::new(32, HnswConfig::default());
    for e in &embs {
        flat.add(e);
        hnsw.add(e);
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for (q, _) in corpus.sample_queries(10, 4) {
        let cv = space.embed_column(&q);
        let mut acc = vec![0f32; 32];
        for v in cv.iter() {
            deepjoin_embed::vector::add_assign(&mut acc, v);
        }
        deepjoin_embed::vector::normalize(&mut acc);
        let truth: std::collections::HashSet<u32> =
            flat.search(&acc, 10).into_iter().map(|n| n.id).collect();
        for n in hnsw.search(&acc, 10) {
            total += 1;
            if truth.contains(&n.id) {
                agree += 1;
            }
        }
    }
    let recall = agree as f64 / total as f64;
    assert!(recall > 0.9, "HNSW recall on real embeddings {recall}");
}
