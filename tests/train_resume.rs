//! Resume-determinism and self-healing properties of the stepwise trainer
//! (DESIGN.md §10).
//!
//! The contract under test: kill fine-tuning at *any* step boundary,
//! resume from the latest checkpoint, and the final model is bit-identical
//! to an uninterrupted run — including when the newest checkpoint slot is
//! torn or truncated (CRC detects it, the trainer falls back to the
//! previous good slot and replays the difference).

use deepjoin::checkpoint::{decode_checkpoint, CheckpointStore};
use deepjoin::train::{fine_tune, FineTuneConfig};
use deepjoin::trainer::{fine_tune_checkpointed, TrainerConfig};
use deepjoin_lake::tokenizer::TokenId;
use deepjoin_nn::adam::AdamConfig;
use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig, Pooling};
use deepjoin_store::{ArtifactIo, Fault, FaultyIo, MemIo};

fn pairs() -> Vec<(Vec<TokenId>, Vec<TokenId>)> {
    // Two token clusters; positives pair within a cluster.
    (0..12u32)
        .map(|i| {
            let base = if i % 2 == 0 { 1 } else { 9 };
            let x: Vec<TokenId> = (0..5).map(|j| base + (i + j) % 4).collect();
            let y: Vec<TokenId> = (0..5).map(|j| base + (i + j + 1) % 4).collect();
            (x, y)
        })
        .collect()
}

fn fresh_encoder() -> ColumnEncoder {
    ColumnEncoder::new(EncoderConfig {
        vocab_size: 16,
        dim: 8,
        out_dim: 8,
        attn_hidden: 4,
        max_len: 8,
        pooling: Pooling::Attention,
        use_positions: true,
        residual: false,
        seed: 11,
    })
}

fn tune_config() -> FineTuneConfig {
    FineTuneConfig {
        epochs: 2,
        batch_size: 4,
        adam: AdamConfig {
            lr: 5e-3,
            warmup_steps: 3,
            clip_norm: 5.0,
            ..AdamConfig::default()
        },
        ..FineTuneConfig::default()
    }
}

fn trainer_config() -> TrainerConfig {
    TrainerConfig {
        checkpoint_every: 2,
        ..TrainerConfig::default()
    }
}

fn params_of(e: &ColumnEncoder) -> Vec<Vec<f32>> {
    let (a, b, c, d, f, g, h, i, j) = e.raw_params();
    [a, b, c, d, f, g, h, i, j].iter().map(|t| t.to_vec()).collect()
}

/// Kill at every possible step boundary; every resumed run must finish
/// bit-identical to the uninterrupted oracle.
#[test]
fn resume_from_any_step_boundary_is_bit_identical() {
    let pairs = pairs();
    let cfg = tune_config();
    let tcfg = trainer_config();

    // Oracle: uninterrupted, no store — the store must not affect results.
    let mut oracle = fresh_encoder();
    let oracle_out = fine_tune_checkpointed(&mut oracle, &pairs, &cfg, &tcfg, None);
    assert!(oracle_out.completed);
    assert_eq!(oracle_out.rollbacks, 0);
    let total = oracle_out.global_steps;
    assert!(total >= 4, "test needs several boundaries, got {total}");

    for kill_at in 1..=total {
        let io = MemIo::new();
        let mut store = CheckpointStore::new(&io, "mem://ck");

        // Phase 1: train until the simulated kill.
        let mut enc = fresh_encoder();
        let killed = fine_tune_checkpointed(
            &mut enc,
            &pairs,
            &cfg,
            &TrainerConfig {
                max_steps: Some(kill_at),
                ..tcfg
            },
            Some(&mut store),
        );
        assert!(!killed.completed, "kill_at={kill_at} must stop early");

        // Phase 2: resume in a fresh process (fresh encoder, fresh store
        // handle over the surviving files).
        let mut store = CheckpointStore::new(&io, "mem://ck");
        let mut enc = fresh_encoder();
        let resumed = fine_tune_checkpointed(&mut enc, &pairs, &cfg, &tcfg, Some(&mut store));
        assert!(resumed.completed, "kill_at={kill_at}");
        assert!(
            resumed.resumed_from.is_some(),
            "kill_at={kill_at}: a step-0 checkpoint always exists"
        );
        assert_eq!(resumed.global_steps, total, "kill_at={kill_at}");
        assert_eq!(
            resumed.epoch_losses, oracle_out.epoch_losses,
            "kill_at={kill_at}: loss history must replay exactly"
        );
        assert_eq!(
            params_of(&enc),
            params_of(&oracle),
            "kill_at={kill_at}: resumed model must be bit-identical"
        );
    }
}

/// Tearing the newest checkpoint slot (simulated crash mid-write on a
/// non-atomic store) must fall back to the previous good slot — and still
/// converge to the oracle bit-for-bit.
#[test]
fn torn_newest_checkpoint_falls_back_and_still_matches_oracle() {
    let pairs = pairs();
    let cfg = tune_config();
    let tcfg = trainer_config();

    let mut oracle = fresh_encoder();
    let oracle_out = fine_tune_checkpointed(&mut oracle, &pairs, &cfg, &tcfg, None);

    let io = MemIo::new();
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    let killed = fine_tune_checkpointed(
        &mut enc,
        &pairs,
        &cfg,
        &TrainerConfig {
            max_steps: Some(4),
            ..tcfg
        },
        Some(&mut store),
    );
    assert!(!killed.completed);

    // Find the slot holding the newest checkpoint and tear it in half.
    let (slot0, slot1) = (store.slot_path(0), store.slot_path(1));
    let newest = [&slot0, &slot1]
        .into_iter()
        .filter(|p| io.exists(p))
        .max_by_key(|p| {
            decode_checkpoint(&io.read(p).unwrap())
                .map(|ck| ck.meta.global_step)
                .unwrap_or(0)
        })
        .expect("checkpoints were written");
    let bytes = io.read(newest).unwrap();
    let newest_step = decode_checkpoint(&bytes).unwrap().meta.global_step;
    io.write_atomic(newest, &bytes[..bytes.len() / 2]).unwrap();

    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    let resumed = fine_tune_checkpointed(&mut enc, &pairs, &cfg, &tcfg, Some(&mut store));
    assert!(resumed.completed);
    assert!(
        resumed.warnings.iter().any(|w| w.contains("failed verification")),
        "torn slot must be reported: {:?}",
        resumed.warnings
    );
    let from = resumed.resumed_from.expect("fallback slot resumes");
    assert!(
        from < newest_step,
        "must resume from an older checkpoint ({from} < {newest_step})"
    );
    assert_eq!(params_of(&enc), params_of(&oracle));
    assert_eq!(resumed.epoch_losses, oracle_out.epoch_losses);
}

/// A truncated read of one slot at resume time (partial copy) must skip to
/// the surviving slot and still match the oracle.
#[test]
fn truncated_read_on_resume_falls_back_and_still_matches_oracle() {
    let pairs = pairs();
    let cfg = tune_config();
    let tcfg = trainer_config();

    let mut oracle = fresh_encoder();
    fine_tune_checkpointed(&mut oracle, &pairs, &cfg, &tcfg, None);

    let io = FaultyIo::new(MemIo::new());
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    fine_tune_checkpointed(
        &mut enc,
        &pairs,
        &cfg,
        &TrainerConfig {
            max_steps: Some(5),
            ..tcfg
        },
        Some(&mut store),
    );

    // The first slot read during resume comes back truncated.
    io.inject(Fault::TruncateRead { at: 32 });
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    let resumed = fine_tune_checkpointed(&mut enc, &pairs, &cfg, &tcfg, Some(&mut store));
    assert!(resumed.completed);
    assert!(!resumed.warnings.is_empty(), "truncation must be reported");
    assert_eq!(params_of(&enc), params_of(&oracle));
}

/// Checkpoint write failures (disk full) must not abort training — the run
/// degrades to in-memory snapshots, finishes, and reports the failures.
#[test]
fn checkpoint_write_failures_degrade_gracefully() {
    let pairs = pairs();
    let cfg = tune_config();
    let tcfg = trainer_config();

    let mut oracle = fresh_encoder();
    fine_tune_checkpointed(&mut oracle, &pairs, &cfg, &tcfg, None);

    let io = FaultyIo::new(MemIo::new());
    for _ in 0..32 {
        io.inject(Fault::Enospc);
    }
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    let out = fine_tune_checkpointed(&mut enc, &pairs, &cfg, &tcfg, Some(&mut store));
    assert!(out.completed, "ENOSPC on checkpoints must not abort training");
    assert!(out.warnings.iter().any(|w| w.contains("checkpoint write failed")));
    assert_eq!(params_of(&enc), params_of(&oracle));
}

/// An over-sensitive spike detector exercises the rollback path: the
/// trainer rolls back, re-shuffles on a new stream, and once the budget is
/// exhausted stops early *holding the last good state* instead of
/// diverging or panicking.
#[test]
fn loss_spike_rollback_restores_last_good_state_and_respects_budget() {
    let pairs = pairs();
    let cfg = tune_config();
    // Arms after a single batch and treats any non-halving loss as a
    // spike, so every post-warmup batch rolls back until the budget runs
    // out — the detector's worst case.
    let tcfg = TrainerConfig {
        checkpoint_every: 2,
        spike_warmup: 1,
        spike_factor: 0.5,
        max_rollbacks: 2,
        max_steps: None,
    };

    let io = MemIo::new();
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    let out = fine_tune_checkpointed(&mut enc, &pairs, &cfg, &tcfg, Some(&mut store));

    assert!(!out.completed, "budget exhaustion stops the run early");
    assert_eq!(out.rollbacks, 2, "exactly max_rollbacks rollbacks");
    assert!(out
        .warnings
        .iter()
        .any(|w| w.contains("rollback budget exhausted")));
    assert!(out.warnings.iter().any(|w| w.contains("loss spike")));

    // The in-memory model equals the newest persisted checkpoint: the
    // trainer handed back the last good state, not a half-updated one.
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let (latest, warnings) = store.load_latest();
    assert!(warnings.is_empty());
    let latest = latest.expect("post-rollback checkpoint persisted");
    assert_eq!(latest.meta.rollbacks, 2);
    let persisted: Vec<Vec<f32>> = latest.encoder_params.to_vec();
    assert_eq!(params_of(&enc), persisted);
    // All parameters are still finite.
    assert!(params_of(&enc).iter().flatten().all(|x| x.is_finite()));
}

/// A checkpoint written for different data or hyperparameters must be
/// ignored (fingerprint mismatch), not silently applied.
#[test]
fn fingerprint_mismatch_starts_fresh() {
    let pairs_a = pairs();
    let mut pairs_b = pairs_a.clone();
    pairs_b[0].0[0] += 1;
    let cfg = tune_config();
    let tcfg = trainer_config();

    let io = MemIo::new();
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc = fresh_encoder();
    fine_tune_checkpointed(&mut enc, &pairs_a, &cfg, &tcfg, Some(&mut store));

    // Same directory, different data: must warn and train from scratch.
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut enc_b = fresh_encoder();
    let out = fine_tune_checkpointed(&mut enc_b, &pairs_b, &cfg, &tcfg, Some(&mut store));
    assert!(out.completed);
    assert_eq!(out.resumed_from, None);
    assert!(out.warnings.iter().any(|w| w.contains("fingerprint")));

    let mut fresh = fresh_encoder();
    let fresh_out = fine_tune_checkpointed(&mut fresh, &pairs_b, &cfg, &tcfg, None);
    assert_eq!(params_of(&enc_b), params_of(&fresh));
    assert_eq!(out.epoch_losses, fresh_out.epoch_losses);
}

/// The legacy `fine_tune` entry point and the checkpointed trainer with a
/// store attached must produce the same model: persistence machinery must
/// never perturb the optimization trajectory.
#[test]
fn store_presence_does_not_perturb_training() {
    let pairs = pairs();
    let cfg = tune_config();

    let mut plain = fresh_encoder();
    let losses = fine_tune(&mut plain, &pairs, &cfg);

    let io = MemIo::new();
    let mut store = CheckpointStore::new(&io, "mem://ck");
    let mut stored = fresh_encoder();
    let out = fine_tune_checkpointed(
        &mut stored,
        &pairs,
        &cfg,
        &TrainerConfig::default(),
        Some(&mut store),
    );
    assert_eq!(losses, out.epoch_losses);
    assert_eq!(params_of(&plain), params_of(&stored));
}
