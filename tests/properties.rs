//! Cross-crate randomized property tests on the core invariants.
//!
//! Deterministic `StdRng`-driven sampling (fixed seeds, fixed case counts)
//! stands in for a property-testing framework: every run explores the same
//! cases, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use deepjoin::text::{Textizer, TransformOption};
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_lake::joinability::{brute_force_topk, equi_joinability};
use deepjoin_lake::repository::Repository;

const CASES: usize = 64;

/// A column of 5–30 cells over a small value alphabet (so overlap actually
/// occurs).
fn random_column(rng: &mut StdRng) -> Column {
    let len = rng.gen_range(5..30);
    Column::from_cells((0..len).map(|_| format!("v{}", rng.gen_range(0u32..40))))
}

#[test]
fn joinability_is_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0xA0);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let x = random_column(&mut rng);
        let jn = equi_joinability(&q, &x);
        assert!((0.0..=1.0).contains(&jn), "jn {jn} out of unit interval");
    }
}

#[test]
fn joinability_of_self_is_one() {
    let mut rng = StdRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        assert_eq!(equi_joinability(&q, &q), 1.0);
    }
}

#[test]
fn joinability_is_order_insensitive() {
    let mut rng = StdRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let x = random_column(&mut rng);
        let mut shuffled_cells = x.cells.clone();
        shuffled_cells.reverse();
        let x2 = Column::from_cells(shuffled_cells);
        assert_eq!(equi_joinability(&q, &x), equi_joinability(&q, &x2));
    }
}

#[test]
fn joinability_monotone_under_target_extension() {
    let mut rng = StdRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let x = random_column(&mut rng);
        // Adding cells to the target can only help (or not change) jn.
        let extra = rng.gen_range(0..10);
        let mut bigger = x.cells.clone();
        bigger.extend((0..extra).map(|_| format!("v{}", rng.gen_range(0u32..40))));
        let xb = Column::from_cells(bigger);
        assert!(equi_joinability(&q, &xb) >= equi_joinability(&q, &x) - 1e-12);
    }
}

#[test]
fn josie_equals_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let n = rng.gen_range(3..15);
        let cols: Vec<Column> = (0..n).map(|_| random_column(&mut rng)).collect();
        let q = random_column(&mut rng);
        let repo = Repository::from_columns(cols);
        let idx = deepjoin_josie::JosieIndex::build(&repo);
        for k in [1usize, 3, 8] {
            let got: Vec<f64> = idx.search(&q, k).iter().map(|s| s.score).collect();
            let want: Vec<f64> = brute_force_topk(&repo, &q, k)
                .iter()
                .map(|s| s.score)
                .collect();
            assert_eq!(got, want);
        }
    }
}

#[test]
fn minhash_jaccard_close_to_truth() {
    use std::collections::HashSet;
    let mut rng = StdRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let sample_set = |rng: &mut StdRng| -> HashSet<u32> {
            let n = rng.gen_range(5..40);
            (0..n).map(|_| rng.gen_range(0u32..60)).collect()
        };
        let a = sample_set(&mut rng);
        let b = sample_set(&mut rng);
        let mh = deepjoin_lshensemble::MinHasher::new(256, 7);
        let astr: Vec<String> = a.iter().map(|v| format!("i{v}")).collect();
        let bstr: Vec<String> = b.iter().map(|v| format!("i{v}")).collect();
        let sa = mh.sketch(astr.iter().map(String::as_str));
        let sb = mh.sketch(bstr.iter().map(String::as_str));
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        let truth = inter / union;
        let est = sa.jaccard(&sb);
        // 256 permutations: σ ≈ sqrt(J(1−J)/256) ≤ 0.032; allow 5σ.
        assert!((est - truth).abs() < 0.17, "est {est} truth {truth}");
    }
}

#[test]
fn transforms_include_all_distinct_cells_when_unbudgeted() {
    let mut rng = StdRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let opt = TransformOption::ALL[rng.gen_range(0..TransformOption::ALL.len())];
        let t = Textizer::new(opt, usize::MAX);
        let text = t.transform(&q);
        for cell in q.distinct() {
            assert!(text.contains(cell.as_str()), "missing cell {cell}");
        }
    }
}

#[test]
fn transform_budget_is_respected() {
    let mut rng = StdRng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let budget = rng.gen_range(1usize..10);
        let t = Textizer::new(TransformOption::Col, budget);
        let text = t.transform(&q);
        let n = text.split(", ").count();
        assert!(n <= budget, "{n} cells > budget {budget}");
    }
}

#[test]
fn shuffle_augmentation_preserves_multiset() {
    let mut rng = StdRng::seed_from_u64(0xA8);
    for _ in 0..CASES {
        let q = random_column(&mut rng);
        let mut perm: Vec<usize> = (0..q.len()).collect();
        perm.shuffle(&mut rng);
        let p = q.permuted(&perm);
        let mut a = q.cells.clone();
        let mut b = p.cells.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(equi_joinability(&q, &p), 1.0);
    }
}

#[test]
fn hnsw_always_returns_k_when_enough_points() {
    use deepjoin_ann::{HnswConfig, HnswIndex, VectorIndex};
    let mut rng = StdRng::seed_from_u64(0xA9);
    for _ in 0..CASES {
        let n = rng.gen_range(20..80);
        let points: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let k = rng.gen_range(1usize..10);
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        for p in &points {
            idx.add(p);
        }
        let hits = idx.search(&points[0], k);
        assert_eq!(hits.len(), k.min(points.len()));
        // Distances sorted ascending.
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-6);
        }
        // Query point itself is its own nearest neighbor (distance 0).
        assert!(hits[0].distance < 1e-5);
    }
}

#[test]
fn encoder_embedding_is_finite() {
    use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig};
    let mut rng = StdRng::seed_from_u64(0xAA);
    let enc = ColumnEncoder::new(EncoderConfig::mp_lite(60, 16, 1));
    for _ in 0..CASES {
        let len = rng.gen_range(0..40);
        let tokens: Vec<u32> = (0..len).map(|_| rng.gen_range(0u32..50)).collect();
        let v = enc.encode(&tokens);
        assert_eq!(v.len(), 16);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn column_meta_roundtrips_through_textizer() {
    // Non-randomized sanity: metadata fields actually surface in the text.
    let c = Column::new(
        vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        ColumnMeta {
            table_title: "My Title".into(),
            column_name: "mycol".into(),
            table_context: "some context".into(),
            table_id: None,
        },
    );
    let t = Textizer::new(TransformOption::TitleColnameColContext, usize::MAX);
    let s = t.transform(&c);
    assert!(s.contains("My Title") && s.contains("mycol") && s.contains("some context"));
}
