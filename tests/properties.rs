//! Cross-crate property-based tests (proptest) on the core invariants.

use proptest::prelude::*;

use deepjoin::text::{Textizer, TransformOption};
use deepjoin_lake::column::{Column, ColumnMeta};
use deepjoin_lake::joinability::{brute_force_topk, equi_joinability};
use deepjoin_lake::repository::Repository;

/// Strategy: a column of 5-30 cells over a small value alphabet (so overlap
/// actually occurs).
fn column_strategy() -> impl Strategy<Value = Column> {
    prop::collection::vec(0u32..40, 5..30)
        .prop_map(|vals| Column::from_cells(vals.into_iter().map(|v| format!("v{v}"))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn joinability_is_in_unit_interval(q in column_strategy(), x in column_strategy()) {
        let jn = equi_joinability(&q, &x);
        prop_assert!((0.0..=1.0).contains(&jn));
    }

    #[test]
    fn joinability_of_self_is_one(q in column_strategy()) {
        prop_assert_eq!(equi_joinability(&q, &q), 1.0);
    }

    #[test]
    fn joinability_is_order_insensitive(q in column_strategy(), x in column_strategy()) {
        let mut shuffled_cells = x.cells.clone();
        shuffled_cells.reverse();
        let x2 = Column::from_cells(shuffled_cells);
        prop_assert_eq!(equi_joinability(&q, &x), equi_joinability(&q, &x2));
    }

    #[test]
    fn joinability_monotone_under_target_extension(
        q in column_strategy(),
        x in column_strategy(),
        extra in prop::collection::vec(0u32..40, 0..10),
    ) {
        // Adding cells to the target can only help (or not change) jn.
        let mut bigger = x.cells.clone();
        bigger.extend(extra.into_iter().map(|v| format!("v{v}")));
        let xb = Column::from_cells(bigger);
        prop_assert!(equi_joinability(&q, &xb) >= equi_joinability(&q, &x) - 1e-12);
    }

    #[test]
    fn josie_equals_brute_force(
        cols in prop::collection::vec(column_strategy(), 3..15),
        q in column_strategy(),
    ) {
        let repo = Repository::from_columns(cols);
        let idx = deepjoin_josie::JosieIndex::build(&repo);
        for k in [1usize, 3, 8] {
            let got: Vec<f64> = idx.search(&q, k).iter().map(|s| s.score).collect();
            let want: Vec<f64> = brute_force_topk(&repo, &q, k)
                .iter().map(|s| s.score).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn minhash_jaccard_close_to_truth(
        a in prop::collection::hash_set(0u32..60, 5..40),
        b in prop::collection::hash_set(0u32..60, 5..40),
    ) {
        let mh = deepjoin_lshensemble::MinHasher::new(256, 7);
        let astr: Vec<String> = a.iter().map(|v| format!("i{v}")).collect();
        let bstr: Vec<String> = b.iter().map(|v| format!("i{v}")).collect();
        let sa = mh.sketch(astr.iter().map(String::as_str));
        let sb = mh.sketch(bstr.iter().map(String::as_str));
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        let truth = inter / union;
        let est = sa.jaccard(&sb);
        // 256 permutations: σ ≈ sqrt(J(1−J)/256) ≤ 0.032; allow 5σ.
        prop_assert!((est - truth).abs() < 0.17, "est {est} truth {truth}");
    }

    #[test]
    fn transforms_include_all_distinct_cells_when_unbudgeted(
        q in column_strategy(),
        opt_idx in 0usize..7,
    ) {
        let opt = TransformOption::ALL[opt_idx];
        let t = Textizer::new(opt, usize::MAX);
        let text = t.transform(&q);
        for cell in q.distinct() {
            prop_assert!(text.contains(cell.as_str()), "missing cell {cell}");
        }
    }

    #[test]
    fn transform_budget_is_respected(q in column_strategy(), budget in 1usize..10) {
        let t = Textizer::new(TransformOption::Col, budget);
        let text = t.transform(&q);
        let n = text.split(", ").count();
        prop_assert!(n <= budget, "{n} cells > budget {budget}");
    }

    #[test]
    fn shuffle_augmentation_preserves_multiset(q in column_strategy()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut perm: Vec<usize> = (0..q.len()).collect();
        perm.shuffle(&mut rng);
        let p = q.permuted(&perm);
        let mut a = q.cells.clone();
        let mut b = p.cells.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(equi_joinability(&q, &p), 1.0);
    }

    #[test]
    fn hnsw_always_returns_k_when_enough_points(
        points in prop::collection::vec(prop::collection::vec(-1.0f32..1.0, 4), 20..80),
        k in 1usize..10,
    ) {
        use deepjoin_ann::{HnswConfig, HnswIndex, VectorIndex};
        let mut idx = HnswIndex::new(4, HnswConfig::default());
        for p in &points {
            idx.add(p);
        }
        let hits = idx.search(&points[0], k);
        prop_assert_eq!(hits.len(), k.min(points.len()));
        // Distances sorted ascending.
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance + 1e-6);
        }
        // Query point itself is its own nearest neighbor (distance 0).
        prop_assert!(hits[0].distance < 1e-5);
    }

    #[test]
    fn encoder_embedding_is_finite(
        tokens in prop::collection::vec(0u32..50, 0..40),
    ) {
        use deepjoin_nn::encoder::{ColumnEncoder, EncoderConfig};
        let enc = ColumnEncoder::new(EncoderConfig::mp_lite(60, 16, 1));
        let v = enc.encode(&tokens);
        prop_assert_eq!(v.len(), 16);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }
}

#[test]
fn column_meta_roundtrips_through_textizer() {
    // Non-proptest sanity: metadata fields actually surface in the text.
    let c = Column::new(
        vec!["a".into(), "b".into(), "c".into(), "d".into(), "e".into()],
        ColumnMeta {
            table_title: "My Title".into(),
            column_name: "mycol".into(),
            table_context: "some context".into(),
            table_id: None,
        },
    );
    let t = Textizer::new(TransformOption::TitleColnameColContext, usize::MAX);
    let s = t.transform(&c);
    assert!(s.contains("My Title") && s.contains("mycol") && s.contains("some context"));
}
