//! Cross-crate determinism guarantees of the parallel substrates: on a
//! fixed-seed corpus, the parallel HNSW batch build and the batched flat
//! scan must return identical top-k results for every pool size.

use deepjoin_ann::distance::Metric;
use deepjoin_ann::flat::FlatIndex;
use deepjoin_ann::hnsw::{HnswConfig, HnswIndex};
use deepjoin_ann::index::{Neighbor, VectorIndex};
use deepjoin_par::Pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 24;
const N: usize = 1_500;
const NQ: usize = 25;
const K: usize = 10;

fn unit_vectors(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![0f32; n * DIM];
    for row in out.chunks_exact_mut(DIM) {
        for x in row.iter_mut() {
            *x = rng.gen_range(-1.0f32..1.0);
        }
        let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        for x in row.iter_mut() {
            *x /= norm;
        }
    }
    out
}

fn ids(hits: &[Neighbor]) -> Vec<u32> {
    hits.iter().map(|h| h.id).collect()
}

#[test]
fn parallel_hnsw_build_and_flat_scan_are_pool_size_invariant() {
    let data = unit_vectors(N, 0xD1CE);
    let queries = unit_vectors(NQ, 0xFEED);

    // Reference: everything on a single-thread pool.
    let serial = Pool::serial();
    let mut hnsw_ref = HnswIndex::new(DIM, HnswConfig::default());
    hnsw_ref.add_batch_parallel(&data, &serial);
    let mut flat_ref = FlatIndex::new(DIM, Metric::L2);
    flat_ref.add_batch(&data);

    let hnsw_expected: Vec<Vec<u32>> = queries
        .chunks_exact(DIM)
        .map(|q| ids(&hnsw_ref.search(q, K)))
        .collect();
    let flat_expected: Vec<Vec<u32>> = queries
        .chunks_exact(DIM)
        .map(|q| ids(&flat_ref.search(q, K)))
        .collect();

    for threads in [2, 5, 16] {
        let pool = Pool::new(threads);

        let mut hnsw = HnswIndex::new(DIM, HnswConfig::default());
        hnsw.add_batch_parallel(&data, &pool);
        let hnsw_got: Vec<Vec<u32>> = hnsw
            .search_batch(&queries, K, &pool)
            .iter()
            .map(|h| ids(h))
            .collect();
        assert_eq!(hnsw_got, hnsw_expected, "hnsw differs at {threads} threads");

        let flat_got: Vec<Vec<u32>> = flat_ref
            .search_batch(&queries, K, &pool)
            .iter()
            .map(|h| ids(h))
            .collect();
        assert_eq!(flat_got, flat_expected, "flat differs at {threads} threads");
    }
}

#[test]
fn parallel_hnsw_matches_flat_oracle_closely() {
    // The deterministic parallel build must not cost recall: against the
    // exact oracle it has to stay near-perfect on an easy corpus.
    let data = unit_vectors(N, 0x0DD5);
    let queries = unit_vectors(NQ, 0x5EED);

    let mut hnsw = HnswIndex::new(DIM, HnswConfig::default());
    hnsw.add_batch_parallel(&data, &Pool::new(4));
    let mut flat = FlatIndex::new(DIM, Metric::L2);
    flat.add_batch(&data);

    let mut hit = 0usize;
    for q in queries.chunks_exact(DIM) {
        let truth = ids(&flat.search(q, K));
        hit += ids(&hnsw.search(q, K))
            .iter()
            .filter(|id| truth.contains(id))
            .count();
    }
    let recall = hit as f64 / (NQ * K) as f64;
    assert!(recall >= 0.95, "parallel-built HNSW recall {recall}");
}
