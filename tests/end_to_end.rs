//! End-to-end integration tests spanning all crates: generate a lake,
//! train DeepJoin for both join types, index, search, and sanity-check
//! accuracy against the exact searchers.

use deepjoin::model::{DeepJoin, DeepJoinConfig, Variant};
use deepjoin::train::{FineTuneConfig, JoinType, TrainDataConfig};
use deepjoin_embed::cell_space::{CellSpace, EmbeddedRepository};
use deepjoin_embed::ngram::{NgramConfig, NgramEmbedder};
use deepjoin_embed::SgnsConfig;
use deepjoin_lake::corpus::{Corpus, CorpusConfig, CorpusProfile};
use deepjoin_lake::joinability::brute_force_topk;
use deepjoin_lake::repository::Repository;
use deepjoin_metrics::{mean, precision_at_k};
use deepjoin_nn::AdamConfig;

fn quick_config(variant: Variant, epochs: usize) -> DeepJoinConfig {
    DeepJoinConfig {
        variant,
        dim: 32,
        sgns: SgnsConfig {
            dim: 32,
            epochs: 1,
            ..SgnsConfig::default()
        },
        fine_tune: FineTuneConfig {
            epochs,
            adam: AdamConfig {
                lr: 5e-3,
                warmup_steps: 20,
                ..AdamConfig::default()
            },
            ..FineTuneConfig::default()
        },
        data: TrainDataConfig {
            max_pairs: 6_000,
            ..TrainDataConfig::default()
        },
        ..DeepJoinConfig::default()
    }
}

#[test]
fn equi_pipeline_beats_random_clearly() {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 1_000, 11));
    let (repo, _) = corpus.to_repository();
    let (model, report) = DeepJoin::train(&repo, JoinType::Equi, quick_config(Variant::MpLite, 6));
    assert!(report.num_positives > 100, "positives {}", report.num_positives);
    let mut model = model;
    model.index_repository(&repo);

    let k = 10;
    let queries = corpus.sample_queries(8, 21);
    let mut precs = Vec::new();
    for (q, _) in &queries {
        let exact: Vec<u32> = brute_force_topk(&repo, q, k).iter().map(|s| s.id.0).collect();
        let got: Vec<u32> = model.search(q, k).iter().map(|s| s.id.0).collect();
        assert_eq!(got.len(), k);
        precs.push(precision_at_k(&got, &exact, k));
    }
    let m = mean(&precs);
    // Random retrieval over ~950 columns ≈ 0.01; the trained model must be
    // far above that.
    assert!(m > 0.15, "mean precision {m}");
}

#[test]
fn semantic_pipeline_finds_noisy_twins() {
    let tau = 0.9;
    let mut cfg = CorpusConfig::new(CorpusProfile::Webtable, 700, 13);
    cfg.noise_rate = 0.2;
    let corpus = Corpus::generate(cfg);
    let (repo, _) = corpus.to_repository();
    let (mut model, report) = DeepJoin::train(
        &repo,
        JoinType::Semantic { tau },
        quick_config(Variant::DistilLite, 4),
    );
    assert!(report.num_positives > 50);
    model.index_repository(&repo);

    // Compare against the exact semantic answer on a few queries.
    let space = CellSpace::new(NgramEmbedder::new(NgramConfig {
        dim: 32,
        ..NgramConfig::default()
    }));
    let er = EmbeddedRepository::build(&space, &repo);
    let queries = corpus.sample_queries(5, 3);
    let mut precs = Vec::new();
    for (q, _) in &queries {
        let qv = space.embed_column(q);
        let exact: Vec<u32> = er
            .brute_force_topk(&qv, tau, 10)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let got: Vec<u32> = model.search(q, 10).iter().map(|s| s.id.0).collect();
        precs.push(precision_at_k(&got, &exact, 10));
    }
    assert!(mean(&precs) > 0.1, "semantic precision {}", mean(&precs));
}

#[test]
fn training_is_deterministic_end_to_end() {
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Wikitable, 400, 5));
    let (repo, _) = corpus.to_repository();
    let build = || {
        let (mut m, _) = DeepJoin::train(&repo, JoinType::Equi, quick_config(Variant::MpLite, 2));
        m.index_repository(&repo);
        let q = repo.columns()[0].clone();
        m.search(&q, 5)
            .into_iter()
            .map(|s| s.id.0)
            .collect::<Vec<_>>()
    };
    assert_eq!(build(), build());
}

#[test]
fn model_generalizes_to_unseen_repository() {
    // Train on one lake sample, search a *different* (larger) repository —
    // the generalization claim of §5.1.
    let corpus = Corpus::generate(CorpusConfig::new(CorpusProfile::Webtable, 1_200, 17));
    let (test_repo, _) = corpus.to_repository();
    let train_cols = corpus.sample_queries(400, 77);
    let train_repo = Repository::from_columns(train_cols.into_iter().map(|(c, _)| c));

    let (mut model, _) = DeepJoin::train(&train_repo, JoinType::Equi, quick_config(Variant::MpLite, 6));
    model.index_repository(&test_repo);

    let queries = corpus.sample_queries(6, 99);
    let mut precs = Vec::new();
    for (q, _) in &queries {
        let exact: Vec<u32> = brute_force_topk(&test_repo, q, 10)
            .iter()
            .map(|s| s.id.0)
            .collect();
        let got: Vec<u32> = model.search(q, 10).iter().map(|s| s.id.0).collect();
        precs.push(precision_at_k(&got, &exact, 10));
    }
    assert!(mean(&precs) > 0.1, "generalization precision {}", mean(&precs));
}
